"""``repro serve`` -- the JSON-Lines-over-TCP solver daemon.

Stdlib only: a :class:`socketserver.ThreadingTCPServer` gives every
connection its own thread, each speaking the line protocol of
:mod:`repro.service.protocol` against one shared
:class:`~repro.service.service.SolverService` -- so concurrency,
coalescing, admission control and metrics all come from the service,
and the daemon is pure transport.

Requests on one connection are answered in order; concurrency comes
from concurrent connections (exactly how the socket tests and the serve
benchmark drive it).  The ``shutdown`` verb -- or ``Ctrl-C``/``SIGTERM``
on the foreground CLI -- answers, stops accepting, lets every
connection finish the line it is mid-way through, and drains the
service gracefully so buffered store segments are published.
Connections that read further lines after a stop began are answered
with a clean ``ok: false`` shutting-down refusal instead of having
their sockets torn down mid-response.

The transport lifecycle (graceful stop, busy-line tracking, background
serving) lives in :class:`GracefulLineServer` so the shard router of
:mod:`repro.cluster` -- a daemon that proxies lines instead of solving
them -- reuses it unchanged.
"""

from __future__ import annotations

import collections
import socket
import socketserver
import threading
import time
from typing import Any, Optional

from ..errors import ReproError, ServiceUnavailableError
from .frames import (
    FORMAT_BINARY,
    FORMAT_JSON,
    FORMATS,
    HELLO_OP,
    FrameError,
    Raw,
    encode_frame,
    encode_payload,
    read_frame,
)
from .protocol import (
    SHUTDOWN_OP,
    decode_request,
    encode_response,
    error_response,
    handle_line,
    handle_request,
    normalize_request,
)
from .service import SolverService

__all__ = [
    "GracefulLineServer",
    "ReproServer",
    "TransportMetrics",
    "hot_solve_key",
    "request_lines",
]


class TransportMetrics:
    """Per-wire-format transport counters of one server.

    A connection is counted under every format it actually spoke (an
    upgraded connection starts as ``json`` for its hello and continues
    as ``binary``); requests and bytes are counted under the format
    that carried them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._formats = {
            fmt: {"connections": 0, "requests": 0, "bytes_in": 0, "bytes_out": 0}
            for fmt in FORMATS
        }

    def record_connection(self, fmt: str) -> None:
        with self._lock:
            self._formats[fmt]["connections"] += 1

    def record_request(self, fmt: str, bytes_in: int, bytes_out: int) -> None:
        with self._lock:
            counters = self._formats[fmt]
            counters["requests"] += 1
            counters["bytes_in"] += bytes_in
            counters["bytes_out"] += bytes_out

    def record_stream(self, fmt: str, bytes_out: int) -> None:
        """Count bytes of one streamed record (not an individual request).

        A subscription is one request (counted at its ack) followed by
        many pushed records; counting each record as a request would make
        the transport totals lie about the wire's request/response ratio.
        """
        with self._lock:
            self._formats[fmt]["bytes_out"] += bytes_out

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {fmt: dict(counters) for fmt, counters in self._formats.items()}


def hot_solve_key(data: Any) -> Optional[tuple[Optional[str], str]]:
    """The hot-response-cache key of a solve request (None: not cacheable).

    Shared by the threaded daemon and the asyncio server so a request
    shape that replays from one server's hot cache replays from the
    other's too.
    """
    if not isinstance(data, dict):
        return None
    op = data.get("op")
    spec = data.get("spec")
    if op is None and "kind" in data:
        op = "solve"
        spec = {key: value for key, value in data.items() if key != "id"}
    if op != "solve" or not isinstance(spec, dict):
        return None
    backend = data.get("backend")
    if backend is not None and not isinstance(backend, str):
        return None
    return backend, repr(sorted(spec.items(), key=lambda item: str(item[0])))


def _refusal(op: Any, request_id: Any) -> dict[str, Any]:
    """The clean refusal a request read after a stop began is answered with."""
    return error_response(
        str(op if op is not None else "?"),
        ServiceUnavailableError("server is shutting down, request refused"),
        request_id,
    )


def _shutting_down_response(line: str) -> dict[str, Any]:
    """The clean refusal a connection gets for lines read after stop began."""
    data, _ = decode_request(line)
    if data is not None:
        op, _, request_id = normalize_request(data)
    else:
        op, request_id = None, None
    return _refusal(op, request_id)


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines.

    A connection starts in JSON-Lines; a confirmed ``hello`` upgrade
    hands it to :meth:`_serve_binary`, which speaks length-prefixed
    frames in both directions for the rest of its lifetime.
    """

    server: "GracefulLineServer"

    def _write_line(self, response: dict[str, Any], bytes_in: int) -> bool:
        """Write one JSON response line; False when the client vanished."""
        encoded = (encode_response(response) + "\n").encode("utf-8")
        # Count before the write: a client that has *received* a response
        # must observe it in a metrics snapshot taken on another
        # connection.  (A vanished client over-counts one undelivered
        # response -- the request really was processed.)
        self.server.transport.record_request(FORMAT_JSON, bytes_in, len(encoded))
        try:
            self.wfile.write(encoded)
            self.wfile.flush()
        except (ConnectionError, OSError):  # pragma: no cover - client vanished
            return False
        return True

    def handle(self) -> None:
        self.server.transport.record_connection(FORMAT_JSON)
        while True:
            try:
                raw = self.rfile.readline()
            except (ConnectionError, OSError):  # pragma: no cover - client vanished
                return
            if not raw:  # EOF: client closed its sending side
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            # Atomically either claim a busy slot or learn the server is
            # stopping -- checking ``stopping`` separately would leave a
            # window where stop() observes zero busy lines and drains
            # while this thread is about to answer one.
            if not self.server.begin_line():
                # A stop (shutdown verb on another connection, a signal,
                # context exit) began while this connection was between
                # lines: answer cleanly instead of racing the drain and
                # having the socket torn down mid-response.
                if not self._write_line(_shutting_down_response(line), len(raw)):
                    return
                continue
            # The busy window covers answering *and* writing: stop()
            # waits for it, so an in-flight line always finishes its
            # response before the drain proceeds.
            try:
                response = self.server.answer_line(line)
                if not self._write_line(response, len(raw)):
                    return
            finally:
                self.server.end_line()
            if response.get("op") == SHUTDOWN_OP and response.get("ok"):
                self.server.stop_async()
                return
            if (
                response.get("op") == HELLO_OP
                and response.get("ok")
                and response.get("format") == FORMAT_BINARY
            ):
                self._serve_binary()
                return

    # -- binary mode -----------------------------------------------------------
    def _write_frame(self, response: Any, bytes_in: int) -> bool:
        """Write one response frame; False when the client vanished."""
        try:
            frame = encode_frame(response)
        except FrameError as error:  # pragma: no cover - responses are JSON-safe
            frame = encode_frame(error_response("?", error))
        # Same ordering as _write_line: count before the write so the
        # snapshot on another connection never trails a delivered response.
        self.server.transport.record_request(FORMAT_BINARY, bytes_in, len(frame))
        try:
            self.wfile.write(frame)
            self.wfile.flush()
        except (ConnectionError, OSError):  # pragma: no cover - client vanished
            return False
        return True

    def _serve_binary(self) -> None:
        self.server.transport.record_connection(FORMAT_BINARY)
        while True:
            try:
                payload = read_frame(self.rfile)
            except FrameError as error:
                # A corrupted header is unsyncable: answer once, close.
                self._write_frame(error_response("?", error), 0)
                return
            except (ConnectionError, OSError):  # pragma: no cover - client vanished
                return
            if payload is None:  # EOF at a frame boundary
                return
            bytes_in = 6 + len(payload)
            try:
                data = self.server.decode_frame_payload(payload)
            except FrameError as error:
                # Well-framed but malformed payload: the stream is still
                # in sync, so answer cleanly and keep the connection.
                if not self._write_frame(error_response("?", error), bytes_in):
                    return
                continue
            if not self.server.begin_line():
                op = data.get("op") if isinstance(data, dict) else None
                request_id = data.get("id") if isinstance(data, dict) else None
                if not self._write_frame(_refusal(op, request_id), bytes_in):
                    return
                continue
            try:
                response = self.server.answer_frame(data)
                if not self._write_frame(response, bytes_in):
                    return
            finally:
                self.server.end_line()
            if response.get("op") == SHUTDOWN_OP and response.get("ok"):
                self.server.stop_async()
                return


class GracefulLineServer(socketserver.ThreadingTCPServer):
    """A threading JSON-Lines TCP server with a graceful, idempotent stop.

    Subclasses implement :meth:`answer_line` (how one request line
    becomes one response object) and :meth:`_drain` (what must finish
    before the stop completes -- draining a service, stopping a worker
    fleet).  Everything transport-shaped lives here: one thread per
    connection, per-line busy tracking so no response is torn down
    mid-write, the shutting-down refusal for lines read after a stop
    began, and the blocking/idempotent :meth:`stop`.
    """

    daemon_threads = True
    allow_reuse_address = True
    # The socketserver default backlog (5) resets bursts of concurrent
    # connects -- exactly the serving workload; match the admission
    # queue instead and let the service refuse excess load explicitly.
    request_queue_size = 256

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), _RequestHandler)
        self._serving = threading.Event()
        self._stopped = threading.Event()
        self._stop_done = threading.Event()
        self._stop_lock = threading.Lock()
        self._loop_started = False
        self._busy = 0
        self._busy_cond = threading.Condition()
        self.transport = TransportMetrics()

    # -- to be provided by subclasses ------------------------------------------
    def answer_line(self, line: str) -> dict[str, Any]:
        """Answer one request line; must never raise."""
        raise NotImplementedError

    def answer_frame(self, data: Any) -> dict[str, Any]:
        """Answer one decoded binary request; must never raise."""
        raise NotImplementedError

    def decode_frame_payload(self, payload: bytes) -> Any:
        """Decode one binary payload (subclasses may keep spans raw)."""
        from .frames import decode_payload

        return decode_payload(payload)

    def _drain(self, timeout: Optional[float]) -> None:
        """Finish outstanding work once the socket stopped accepting."""
        raise NotImplementedError

    # -- addressing ------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------------
    def serve_forever(self, poll_interval: float = 0.5) -> None:
        with self._stop_lock:
            if self._stopped.is_set():
                return  # stopped before the loop ever started (early signal)
            self._loop_started = True
        super().serve_forever(poll_interval)

    def serve_background(self) -> threading.Thread:
        """Serve from a daemon thread; returns once the socket is accepting."""
        thread = threading.Thread(
            target=self.serve_forever, name=f"repro-serve-{self.port}", daemon=True
        )
        thread.start()
        self._serving.wait(timeout=5.0)
        return thread

    def service_actions(self) -> None:  # called from the serve_forever loop
        self._serving.set()
        super().service_actions()

    @property
    def stopping(self) -> bool:
        """True once a stop has been initiated (connections must refuse)."""
        return self._stopped.is_set()

    def begin_line(self) -> bool:
        """Claim one busy-line slot; False when the server is stopping.

        The claim and the stopping check share the busy lock (stop()
        sets the flag under the same lock), so every line is either
        counted busy -- and stop() waits for its response -- or refused.
        """
        with self._busy_cond:
            if self._stopped.is_set():
                return False
            self._busy += 1
            return True

    def end_line(self) -> None:
        """Release a slot claimed by :meth:`begin_line`."""
        with self._busy_cond:
            self._busy -= 1
            self._busy_cond.notify_all()

    def _wait_idle(self, timeout: Optional[float]) -> bool:
        """Wait for every mid-line connection to finish its response."""
        with self._busy_cond:
            return self._busy_cond.wait_for(lambda: self._busy == 0, timeout=timeout)

    def stop_async(self) -> None:
        """Initiate shutdown from a handler thread without deadlocking."""
        threading.Thread(target=self.stop, daemon=True).start()

    def stop(self, drain_timeout: Optional[float] = 30.0) -> None:
        """Stop accepting, finish in-flight lines, drain outstanding work.

        Idempotent *and* blocking: a second caller waits for the first
        stop to finish draining.  The shutdown verb stops the server
        from a daemon thread while the CLI's foreground thread is
        leaving ``serve_forever`` -- if the foreground call returned
        immediately the process would exit with the drain (and the
        store flush) still in progress.
        """
        with self._stop_lock:
            first = not self._stopped.is_set()
            # Under the busy lock: after this, every line is either
            # already counted busy (we wait for it below) or refused.
            with self._busy_cond:
                self._stopped.set()
        if not first:
            self._stop_done.wait(timeout=drain_timeout)
            return
        try:
            if self._loop_started:
                # shutdown() blocks until the serve_forever loop exits;
                # with no loop ever started it would wait forever.
                self.shutdown()
            self.server_close()
            # Every connection mid-line finishes writing its current
            # response before the drain; connections that read further
            # lines answer them ok:false shutting-down (the ``stopping``
            # flag is already set).
            self._wait_idle(timeout=drain_timeout)
            self._drain(drain_timeout)
        finally:
            self._stop_done.set()

    def __enter__(self) -> "GracefulLineServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class ReproServer(GracefulLineServer):
    """The serving daemon: a threading TCP server bound to one service.

    Args:
        service: the shared :class:`SolverService` (built from
            ``service_kwargs`` when omitted).
        host: bind address (default loopback).
        port: bind port; ``0`` picks an ephemeral one -- read
            :attr:`port` for the actual binding (what the tests and the
            smoke script do).
        service_kwargs: forwarded to :class:`SolverService` when no
            service instance is given (``backend=``, ``store=``,
            ``max_inflight=``, ...).
    """

    #: Hot-cache capacity: encoded result payloads for the most recent
    #: unique binary solve requests.
    HOT_CACHE_CAP = 256

    def __init__(
        self,
        service: Optional[SolverService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_kwargs: Any,
    ) -> None:
        self.service = service if service is not None else SolverService(**service_kwargs)
        # request shape -> (encoded result payload, effective backend):
        # a repeat binary solve replays the pre-encoded result without
        # touching the service or the codec (the sub-millisecond warm
        # path the binary framing exists for).
        self._hot_lock = threading.Lock()
        self._hot_cache: "collections.OrderedDict[Any, tuple[bytes, str]]" = (
            collections.OrderedDict()
        )
        super().__init__(host=host, port=port)

    def answer_line(self, line: str) -> dict[str, Any]:
        return self._enrich(handle_line(self.service, line))

    def _enrich(self, response: dict[str, Any]) -> dict[str, Any]:
        """Fold transport and kernel-cache stats into a metrics response."""
        if response.get("op") == "metrics" and response.get("ok"):
            metrics = response.get("metrics")
            if isinstance(metrics, dict):
                from ..simulation.kernel import kernel_cache_stats

                metrics["transport"] = self.transport.snapshot()
                metrics["kernel_cache"] = kernel_cache_stats()
        return response

    def _hot_key(self, data: Any) -> Optional[tuple[Optional[str], str]]:
        """The hot-cache key of a solve request, or None when not cacheable."""
        return hot_solve_key(data)

    def answer_frame(self, data: Any) -> dict[str, Any]:
        started = time.perf_counter()
        key = self._hot_key(data)
        if key is not None:
            with self._hot_lock:
                entry = self._hot_cache.get(key)
                if entry is not None:
                    self._hot_cache.move_to_end(key)
            if entry is not None and not self.service.draining:
                raw_result, effective = entry
                latency = time.perf_counter() - started
                self.service.metrics.record(effective, "cache", latency)
                response: dict[str, Any] = {
                    "ok": True,
                    "op": "solve",
                    "result": Raw(raw_result),
                    "served_by": "cache",
                    "latency_ms": round(latency * 1e3, 3),
                }
                request_id = data.get("id")
                if request_id is not None:
                    response["id"] = request_id
                return response
        response = handle_request(self.service, data)
        if key is not None and response.get("ok") and response.get("op") == "solve":
            try:
                raw_result = encode_payload(response["result"])
            except FrameError:  # pragma: no cover - results are JSON-safe
                return response
            effective = data.get("backend") or self.service.backend
            with self._hot_lock:
                self._hot_cache[key] = (raw_result, effective)
                self._hot_cache.move_to_end(key)
                while len(self._hot_cache) > self.HOT_CACHE_CAP:
                    self._hot_cache.popitem(last=False)
            # The response is about to be encoded anyway: splice the
            # bytes just produced instead of encoding the result twice.
            response["result"] = Raw(raw_result)
        return self._enrich(response)

    def _drain(self, timeout: Optional[float]) -> None:
        self.service.drain(timeout=timeout)


def request_lines(host: str, port: int, lines: list[str], timeout: float = 60.0) -> list[str]:
    """Tiny client: send request lines on one connection, return responses.

    Used by the tests, the serve smoke and the benchmark -- and a
    reasonable template for real clients: newline-delimited requests in,
    exactly one response line back per request, in order.
    """
    with socket.create_connection((host, port), timeout=timeout) as connection:
        with connection.makefile("rwb") as stream:
            for line in lines:
                stream.write((line.strip() + "\n").encode("utf-8"))
            stream.flush()
            connection.shutdown(socket.SHUT_WR)
            return [
                raw.decode("utf-8").rstrip("\n")
                for raw in stream
                if raw.strip()
            ]
