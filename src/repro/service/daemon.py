"""``repro serve`` -- the JSON-Lines-over-TCP solver daemon.

Stdlib only: a :class:`socketserver.ThreadingTCPServer` gives every
connection its own thread, each speaking the line protocol of
:mod:`repro.service.protocol` against one shared
:class:`~repro.service.service.SolverService` -- so concurrency,
coalescing, admission control and metrics all come from the service,
and the daemon is pure transport.

Requests on one connection are answered in order; concurrency comes
from concurrent connections (exactly how the socket tests and the serve
benchmark drive it).  The ``shutdown`` verb -- or ``Ctrl-C``/``SIGTERM``
on the foreground CLI -- answers, stops accepting, lets every
connection finish the line it is mid-way through, and drains the
service gracefully so buffered store segments are published.
Connections that read further lines after a stop began are answered
with a clean ``ok: false`` shutting-down refusal instead of having
their sockets torn down mid-response.

The transport lifecycle (graceful stop, busy-line tracking, background
serving) lives in :class:`GracefulLineServer` so the shard router of
:mod:`repro.cluster` -- a daemon that proxies lines instead of solving
them -- reuses it unchanged.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Any, Optional

from ..errors import ServiceUnavailableError
from .protocol import (
    SHUTDOWN_OP,
    decode_request,
    encode_response,
    error_response,
    handle_line,
    normalize_request,
)
from .service import SolverService

__all__ = ["GracefulLineServer", "ReproServer", "request_lines"]


def _shutting_down_response(line: str) -> dict[str, Any]:
    """The clean refusal a connection gets for lines read after stop began."""
    data, _ = decode_request(line)
    if data is not None:
        op, _, request_id = normalize_request(data)
    else:
        op, request_id = None, None
    return error_response(
        str(op if op is not None else "?"),
        ServiceUnavailableError("server is shutting down, request refused"),
        request_id,
    )


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    server: "GracefulLineServer"

    def handle(self) -> None:
        while True:
            try:
                raw = self.rfile.readline()
            except (ConnectionError, OSError):  # pragma: no cover - client vanished
                return
            if not raw:  # EOF: client closed its sending side
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            # Atomically either claim a busy slot or learn the server is
            # stopping -- checking ``stopping`` separately would leave a
            # window where stop() observes zero busy lines and drains
            # while this thread is about to answer one.
            if not self.server.begin_line():
                # A stop (shutdown verb on another connection, a signal,
                # context exit) began while this connection was between
                # lines: answer cleanly instead of racing the drain and
                # having the socket torn down mid-response.
                try:
                    self.wfile.write(
                        (encode_response(_shutting_down_response(line)) + "\n").encode("utf-8")
                    )
                    self.wfile.flush()
                except (ConnectionError, OSError):  # pragma: no cover - client vanished
                    return
                continue
            # The busy window covers answering *and* writing: stop()
            # waits for it, so an in-flight line always finishes its
            # response before the drain proceeds.
            try:
                response = self.server.answer_line(line)
                try:
                    self.wfile.write((encode_response(response) + "\n").encode("utf-8"))
                    self.wfile.flush()
                except (ConnectionError, OSError):  # pragma: no cover - client vanished
                    return
            finally:
                self.server.end_line()
            if response.get("op") == SHUTDOWN_OP and response.get("ok"):
                self.server.stop_async()
                return


class GracefulLineServer(socketserver.ThreadingTCPServer):
    """A threading JSON-Lines TCP server with a graceful, idempotent stop.

    Subclasses implement :meth:`answer_line` (how one request line
    becomes one response object) and :meth:`_drain` (what must finish
    before the stop completes -- draining a service, stopping a worker
    fleet).  Everything transport-shaped lives here: one thread per
    connection, per-line busy tracking so no response is torn down
    mid-write, the shutting-down refusal for lines read after a stop
    began, and the blocking/idempotent :meth:`stop`.
    """

    daemon_threads = True
    allow_reuse_address = True
    # The socketserver default backlog (5) resets bursts of concurrent
    # connects -- exactly the serving workload; match the admission
    # queue instead and let the service refuse excess load explicitly.
    request_queue_size = 256

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), _RequestHandler)
        self._serving = threading.Event()
        self._stopped = threading.Event()
        self._stop_done = threading.Event()
        self._stop_lock = threading.Lock()
        self._loop_started = False
        self._busy = 0
        self._busy_cond = threading.Condition()

    # -- to be provided by subclasses ------------------------------------------
    def answer_line(self, line: str) -> dict[str, Any]:
        """Answer one request line; must never raise."""
        raise NotImplementedError

    def _drain(self, timeout: Optional[float]) -> None:
        """Finish outstanding work once the socket stopped accepting."""
        raise NotImplementedError

    # -- addressing ------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------------
    def serve_forever(self, poll_interval: float = 0.5) -> None:
        with self._stop_lock:
            if self._stopped.is_set():
                return  # stopped before the loop ever started (early signal)
            self._loop_started = True
        super().serve_forever(poll_interval)

    def serve_background(self) -> threading.Thread:
        """Serve from a daemon thread; returns once the socket is accepting."""
        thread = threading.Thread(
            target=self.serve_forever, name=f"repro-serve-{self.port}", daemon=True
        )
        thread.start()
        self._serving.wait(timeout=5.0)
        return thread

    def service_actions(self) -> None:  # called from the serve_forever loop
        self._serving.set()
        super().service_actions()

    @property
    def stopping(self) -> bool:
        """True once a stop has been initiated (connections must refuse)."""
        return self._stopped.is_set()

    def begin_line(self) -> bool:
        """Claim one busy-line slot; False when the server is stopping.

        The claim and the stopping check share the busy lock (stop()
        sets the flag under the same lock), so every line is either
        counted busy -- and stop() waits for its response -- or refused.
        """
        with self._busy_cond:
            if self._stopped.is_set():
                return False
            self._busy += 1
            return True

    def end_line(self) -> None:
        """Release a slot claimed by :meth:`begin_line`."""
        with self._busy_cond:
            self._busy -= 1
            self._busy_cond.notify_all()

    def _wait_idle(self, timeout: Optional[float]) -> bool:
        """Wait for every mid-line connection to finish its response."""
        with self._busy_cond:
            return self._busy_cond.wait_for(lambda: self._busy == 0, timeout=timeout)

    def stop_async(self) -> None:
        """Initiate shutdown from a handler thread without deadlocking."""
        threading.Thread(target=self.stop, daemon=True).start()

    def stop(self, drain_timeout: Optional[float] = 30.0) -> None:
        """Stop accepting, finish in-flight lines, drain outstanding work.

        Idempotent *and* blocking: a second caller waits for the first
        stop to finish draining.  The shutdown verb stops the server
        from a daemon thread while the CLI's foreground thread is
        leaving ``serve_forever`` -- if the foreground call returned
        immediately the process would exit with the drain (and the
        store flush) still in progress.
        """
        with self._stop_lock:
            first = not self._stopped.is_set()
            # Under the busy lock: after this, every line is either
            # already counted busy (we wait for it below) or refused.
            with self._busy_cond:
                self._stopped.set()
        if not first:
            self._stop_done.wait(timeout=drain_timeout)
            return
        try:
            if self._loop_started:
                # shutdown() blocks until the serve_forever loop exits;
                # with no loop ever started it would wait forever.
                self.shutdown()
            self.server_close()
            # Every connection mid-line finishes writing its current
            # response before the drain; connections that read further
            # lines answer them ok:false shutting-down (the ``stopping``
            # flag is already set).
            self._wait_idle(timeout=drain_timeout)
            self._drain(drain_timeout)
        finally:
            self._stop_done.set()

    def __enter__(self) -> "GracefulLineServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class ReproServer(GracefulLineServer):
    """The serving daemon: a threading TCP server bound to one service.

    Args:
        service: the shared :class:`SolverService` (built from
            ``service_kwargs`` when omitted).
        host: bind address (default loopback).
        port: bind port; ``0`` picks an ephemeral one -- read
            :attr:`port` for the actual binding (what the tests and the
            smoke script do).
        service_kwargs: forwarded to :class:`SolverService` when no
            service instance is given (``backend=``, ``store=``,
            ``max_inflight=``, ...).
    """

    def __init__(
        self,
        service: Optional[SolverService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_kwargs: Any,
    ) -> None:
        self.service = service if service is not None else SolverService(**service_kwargs)
        super().__init__(host=host, port=port)

    def answer_line(self, line: str) -> dict[str, Any]:
        return handle_line(self.service, line)

    def _drain(self, timeout: Optional[float]) -> None:
        self.service.drain(timeout=timeout)


def request_lines(host: str, port: int, lines: list[str], timeout: float = 60.0) -> list[str]:
    """Tiny client: send request lines on one connection, return responses.

    Used by the tests, the serve smoke and the benchmark -- and a
    reasonable template for real clients: newline-delimited requests in,
    exactly one response line back per request, in order.
    """
    with socket.create_connection((host, port), timeout=timeout) as connection:
        with connection.makefile("rwb") as stream:
            for line in lines:
                stream.write((line.strip() + "\n").encode("utf-8"))
            stream.flush()
            connection.shutdown(socket.SHUT_WR)
            return [
                raw.decode("utf-8").rstrip("\n")
                for raw in stream
                if raw.strip()
            ]
