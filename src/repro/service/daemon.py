"""``repro serve`` -- the JSON-Lines-over-TCP solver daemon.

Stdlib only: a :class:`socketserver.ThreadingTCPServer` gives every
connection its own thread, each speaking the line protocol of
:mod:`repro.service.protocol` against one shared
:class:`~repro.service.service.SolverService` -- so concurrency,
coalescing, admission control and metrics all come from the service,
and the daemon is pure transport.

Requests on one connection are answered in order; concurrency comes
from concurrent connections (exactly how the socket tests and the serve
benchmark drive it).  The ``shutdown`` verb -- or ``Ctrl-C`` on the
foreground CLI -- answers, stops accepting, and drains the service
gracefully so buffered store segments are published.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Any, Optional

from .protocol import SHUTDOWN_OP, encode_response, handle_line
from .service import SolverService

__all__ = ["ReproServer"]


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    server: "ReproServer"

    def handle(self) -> None:
        while True:
            try:
                raw = self.rfile.readline()
            except (ConnectionError, OSError):  # pragma: no cover - client vanished
                return
            if not raw:  # EOF: client closed its sending side
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            response = handle_line(self.server.service, line)
            try:
                self.wfile.write((encode_response(response) + "\n").encode("utf-8"))
                self.wfile.flush()
            except (ConnectionError, OSError):  # pragma: no cover - client vanished
                return
            if response.get("op") == SHUTDOWN_OP and response.get("ok"):
                self.server.stop_async()
                return


class ReproServer(socketserver.ThreadingTCPServer):
    """The serving daemon: a threading TCP server bound to one service.

    Args:
        service: the shared :class:`SolverService` (built from
            ``service_kwargs`` when omitted).
        host: bind address (default loopback).
        port: bind port; ``0`` picks an ephemeral one -- read
            :attr:`port` for the actual binding (what the tests and the
            smoke script do).
        service_kwargs: forwarded to :class:`SolverService` when no
            service instance is given (``backend=``, ``store=``,
            ``max_inflight=``, ...).
    """

    daemon_threads = True
    allow_reuse_address = True
    # The socketserver default backlog (5) resets bursts of concurrent
    # connects -- exactly the serving workload; match the admission
    # queue instead and let the service refuse excess load explicitly.
    request_queue_size = 256

    def __init__(
        self,
        service: Optional[SolverService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_kwargs: Any,
    ) -> None:
        self.service = service if service is not None else SolverService(**service_kwargs)
        super().__init__((host, port), _RequestHandler)
        self._serving = threading.Event()
        self._stopped = threading.Event()
        self._stop_done = threading.Event()
        self._stop_lock = threading.Lock()
        self._loop_started = False

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------------
    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._loop_started = True
        super().serve_forever(poll_interval)

    def serve_background(self) -> threading.Thread:
        """Serve from a daemon thread; returns once the socket is accepting."""
        thread = threading.Thread(
            target=self.serve_forever, name=f"repro-serve-{self.port}", daemon=True
        )
        thread.start()
        self._serving.wait(timeout=5.0)
        return thread

    def service_actions(self) -> None:  # called from the serve_forever loop
        self._serving.set()
        super().service_actions()

    def stop_async(self) -> None:
        """Initiate shutdown from a handler thread without deadlocking."""
        threading.Thread(target=self.stop, daemon=True).start()

    def stop(self, drain_timeout: Optional[float] = 30.0) -> None:
        """Stop accepting, drain in-flight solves, flush the store.

        Idempotent *and* blocking: a second caller waits for the first
        stop to finish draining.  The shutdown verb stops the server
        from a daemon thread while the CLI's foreground thread is
        leaving ``serve_forever`` -- if the foreground call returned
        immediately the process would exit with the drain (and the
        store flush) still in progress.
        """
        with self._stop_lock:
            first = not self._stopped.is_set()
            self._stopped.set()
        if not first:
            self._stop_done.wait(timeout=drain_timeout)
            return
        try:
            if self._loop_started:
                # shutdown() blocks until the serve_forever loop exits;
                # with no loop ever started it would wait forever.
                self.shutdown()
            self.server_close()
            self.service.drain(timeout=drain_timeout)
        finally:
            self._stop_done.set()

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def request_lines(host: str, port: int, lines: list[str], timeout: float = 60.0) -> list[str]:
    """Tiny client: send request lines on one connection, return responses.

    Used by the tests, the serve smoke and the benchmark -- and a
    reasonable template for real clients: newline-delimited requests in,
    exactly one response line back per request, in order.
    """
    with socket.create_connection((host, port), timeout=timeout) as connection:
        with connection.makefile("rwb") as stream:
            for line in lines:
                stream.write((line.strip() + "\n").encode("utf-8"))
            stream.flush()
            connection.shutdown(socket.SHUT_WR)
            return [
                raw.decode("utf-8").rstrip("\n")
                for raw in stream
                if raw.strip()
            ]
