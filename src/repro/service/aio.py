"""``repro serve --async`` -- the asyncio serving transport.

One event loop per process handles every connection; solver work still
runs on threads (the backends are blocking, CPU-bound code), but a
connection no longer *costs* a thread -- idle connections are just
loop-registered sockets, which is what lifts the concurrent-connection
ceiling of the thread-per-connection daemon by an order of magnitude.

:class:`AsyncLineServer` is the transport skeleton (the asyncio
counterpart of :class:`~repro.service.daemon.GracefulLineServer`):

* both wire formats of the serving tier -- the JSON-Lines verbs
  byte-for-byte compatible with the threaded daemon, and the binary
  frames behind the same ``hello`` negotiation;
* per-connection requests answered strictly in order (identical to the
  threaded daemon; concurrency comes from concurrent connections),
  dispatched to a bounded thread pool so the loop never blocks;
* backpressure-aware writes: every response goes through
  ``writer.drain()``, so a slow reader throttles only its own
  connection's stream, never the loop and never the solver;
* a graceful, idempotent, thread-safe :meth:`stop` mirroring the
  threaded server's: stop accepting, finish in-flight requests, wind
  down subscriptions, drain the service, audit for leaked tasks.

On top of it, the ``subscribe`` verb streams a whole sweep over one
connection: the spec suite is planned once, executed through the
runner's completion-order stream (:meth:`~repro.api.batch.BatchRunner.
execute_iter`) on a dedicated producer thread, and every completion is
bridged into the event loop via ``loop.call_soon_threadsafe`` feeding a
per-subscription :class:`asyncio.Queue`.  The bridge is **bounded** by a
credit semaphore: when a subscriber stops reading, at most
``subscription_queue_max`` records buffer server-side and the producer
blocks -- throttling only that subscription's own solve stream.  A
subscriber that disconnects mid-stream flips the bridge to discard
mode: the producer keeps draining the executor (so the LRU and the
persistent store still receive every fresh result) and throws the
records away.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from ..errors import ReproError, ServiceUnavailableError
from .daemon import (
    TransportMetrics,
    _refusal,
    _shutting_down_response,
    hot_solve_key,
)
from .frames import (
    FORMAT_BINARY,
    FORMAT_JSON,
    HEADER_SIZE,
    HELLO_OP,
    MAX_FRAME_BYTES,
    FrameError,
    Raw,
    decode_header,
    decode_payload,
    encode_frame,
    encode_payload,
    materialize_raw,
)
from .protocol import (
    SHUTDOWN_OP,
    SUBSCRIBE_OP,
    SWEEP_OP,
    completion_record,
    decode_request,
    encode_response,
    error_response,
    handle_request,
    normalize_request,
    parse_subscribe,
    parse_sweep,
    subscribe_ack,
    subscribe_summary,
    sweep_ack,
    sweep_partial,
    sweep_summary,
)
from .service import SolverService

__all__ = ["AsyncLineServer", "AsyncReproServer"]

#: Queue sentinel: the producer thread finished (summary already queued,
#: or the pump died after queueing its error record).
_DONE = object()


class _SubscriptionBridge:
    """Thread-to-loop conduit with a hard bound on buffered records.

    The producer thread acquires one credit per record before handing it
    to the loop (``call_soon_threadsafe`` -> ``Queue.put_nowait``); the
    loop-side consumer releases the credit after dequeueing.  The queue
    therefore never holds more than ``maxsize`` records (plus the
    terminating sentinel), no matter how far the solver runs ahead of a
    slow subscriber -- the memory bound the backpressure tests pin down.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, maxsize: int) -> None:
        self.maxsize = maxsize
        self._loop = loop
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._credits = threading.Semaphore(maxsize)
        self._cancelled = threading.Event()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    @property
    def depth(self) -> int:
        """Records currently buffered loop-side (<= maxsize + sentinel)."""
        return self._queue.qsize()

    def put(self, record: Any) -> bool:
        """Deliver one record from the producer thread (blocking on credits).

        Returns False when the consumer is gone -- the record is
        discarded, and the caller is expected to keep iterating so the
        execution stream (and with it the store) still drains fully.
        """
        while not self._credits.acquire(timeout=0.1):
            if self._cancelled.is_set():
                return False
        if self._cancelled.is_set():
            return False
        try:
            self._loop.call_soon_threadsafe(self._queue.put_nowait, record)
        except RuntimeError:  # loop closed mid-stream (server teardown)
            self._cancelled.set()
            return False
        return True

    def finish(self) -> None:
        """Queue the terminating sentinel (bypasses the credit bound)."""
        try:
            self._loop.call_soon_threadsafe(self._queue.put_nowait, _DONE)
        except RuntimeError:  # pragma: no cover - loop closed at teardown
            pass

    async def get(self) -> Any:
        record = await self._queue.get()
        if record is not _DONE:
            self._credits.release()
        return record

    def cancel(self) -> None:
        """Consumer gone: discard future records, unblock the producer."""
        self._cancelled.set()


class _Subscription:
    """One active subscription: its bridge, identity and lifecycle."""

    __slots__ = ("bridge", "request_id", "thread", "done")

    def __init__(self, bridge: _SubscriptionBridge, request_id: Any) -> None:
        self.bridge = bridge
        self.request_id = request_id
        self.thread: Optional[threading.Thread] = None
        self.done = threading.Event()


class AsyncLineServer:
    """Asyncio transport skeleton: JSON lines, binary frames, subscriptions.

    Subclasses implement :meth:`answer_request` (blocking, runs on the
    request thread pool), optionally :meth:`answer_fast` (non-blocking
    in-loop fast path), :meth:`subscribe_open` / :meth:`subscribe_pump`
    (the streamed-sweep verb) and :meth:`_drain` (what must finish
    before a stop completes).

    The listening socket is bound in the constructor -- :attr:`address`
    is valid immediately, exactly like the threaded server -- and handed
    to the event loop when serving starts.
    """

    #: Listen backlog: sized for connection-storm benchmarks, like the
    #: threaded server's ``request_queue_size``.
    BACKLOG = 512

    #: Hard bound on records buffered per subscription (see
    #: :class:`_SubscriptionBridge`).
    SUBSCRIPTION_QUEUE_MAX = 64

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_workers: Optional[int] = None,
        subscription_queue_max: Optional[int] = None,
        connection_sndbuf: Optional[int] = None,
    ) -> None:
        self.subscription_queue_max = (
            subscription_queue_max
            if subscription_queue_max is not None
            else self.SUBSCRIPTION_QUEUE_MAX
        )
        #: Per-connection SO_SNDBUF override (and write high-water mark);
        #: mostly an ops/test knob to make backpressure bite early.
        self.connection_sndbuf = connection_sndbuf
        self.transport = TransportMetrics()
        workers = (
            executor_workers
            if executor_workers is not None
            else min(32, max(8, (os.cpu_count() or 1) * 4))
        )
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-aio"
        )
        self._sock = socket.create_server((host, port), backlog=self.BACKLOG)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._stop_requested = False
        self._stop_lock = threading.Lock()
        self._stop_done = threading.Event()
        self._drain_timeout: Optional[float] = 30.0
        self._busy = 0  # loop-confined: in-flight request count
        self._conn_tasks: set[asyncio.Task] = set()
        self._subs: set[_Subscription] = set()
        self._subs_lock = threading.Lock()
        self._sub_counts = {"opened": 0, "completed": 0, "cancelled": 0}
        #: Tasks still pending when the loop wound down -- the
        #: zero-leaked-tasks gate of the async smoke reads this.
        self.leaked_tasks: list[asyncio.Task] = []

    # -- to be provided by subclasses ------------------------------------------
    def answer_request(self, data: Any) -> dict[str, Any]:
        """Answer one decoded request (thread pool; must never raise)."""
        raise NotImplementedError

    def answer_fast(self, data: Any, fmt: str) -> Optional[dict[str, Any]]:
        """Optional in-loop fast path (hot caches); None falls through."""
        return None

    def after_answer(self, data: Any, response: dict[str, Any], fmt: str) -> None:
        """In-loop hook after a pooled answer (hot-cache population)."""

    def subscribe_open(self, data: dict[str, Any], request_id: Any) -> tuple[Any, dict]:
        """Validate + plan one subscription (thread pool): ``(job, ack)``.

        Raising refuses the subscription with a single ``ok: false``
        response; no stream starts.
        """
        raise ReproError(
            "subscribe streams results over one connection and needs the "
            "asyncio transport; start the daemon with `repro serve --async`"
        )

    def subscribe_pump(self, job: Any, bridge: _SubscriptionBridge) -> None:
        """Execute one subscription on its producer thread.

        Must push every record (and the summary) through ``bridge.put``
        and never raise -- the wrapper converts stray exceptions into a
        terminal error record.
        """
        raise NotImplementedError  # pragma: no cover - paired with subscribe_open

    def _drain(self, timeout: Optional[float]) -> None:
        """Finish outstanding work once the socket stopped accepting."""
        raise NotImplementedError

    # -- addressing ------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._sock.getsockname()[0]

    @property
    def port(self) -> int:
        return self._sock.getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------------
    @property
    def stopping(self) -> bool:
        return self._stop_requested

    def serve_forever(self) -> None:
        """Run the event loop in the calling thread until :meth:`stop`."""
        with self._stop_lock:
            if self._stop_requested:
                return  # stopped before the loop ever started (early signal)
        try:
            asyncio.run(self._main())
        finally:
            self._ready.set()
            self._stop_done.set()

    def serve_background(self) -> threading.Thread:
        """Serve from a daemon thread; returns once the loop is accepting."""
        thread = threading.Thread(
            target=self.serve_forever, name=f"repro-aio-{self.port}", daemon=True
        )
        thread.start()
        self._ready.wait(timeout=10.0)
        return thread

    def stop_async(self) -> None:
        """Initiate shutdown without blocking (signal handlers, verbs)."""
        threading.Thread(target=self.stop, daemon=True).start()

    def stop(self, drain_timeout: Optional[float] = 30.0) -> None:
        """Stop accepting, finish in-flight work, drain; idempotent + blocking.

        Must not be called from inside the event loop thread (use
        :meth:`stop_async` there, exactly like the threaded server).
        """
        with self._stop_lock:
            first = not self._stop_requested
            self._stop_requested = True
            self._drain_timeout = drain_timeout
        wait = None if drain_timeout is None else drain_timeout + 30.0
        if not first:
            self._stop_done.wait(timeout=wait)
            return
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._signal_stop)
            except RuntimeError:  # loop closed between the check and the call
                pass
            else:
                self._stop_done.wait(timeout=wait)
                return
        # The loop never ran (or already finished): drain directly.
        try:
            self._finish_drain()
        finally:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._stop_done.set()

    def _signal_stop(self) -> None:  # loop thread
        if self._stop_event is not None:
            self._stop_event.set()

    def __enter__(self) -> "AsyncLineServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- the event loop --------------------------------------------------------
    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self._stop_requested:
            self._stop_event.set()
        server = await asyncio.start_server(
            self._on_connection, sock=self._sock, limit=MAX_FRAME_BYTES
        )
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self._shutdown_gracefully()

    async def _shutdown_gracefully(self) -> None:
        timeout = self._drain_timeout if self._drain_timeout is not None else 30.0
        deadline = self._loop.time() + timeout
        # 1. In-flight requests finish and write their responses
        #    (connections reading further lines are answered with the
        #    shutting-down refusal -- the ``stopping`` flag is set).
        while self._busy > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.005)
        # 2. Active subscriptions wind down: their producers observe the
        #    stop flag at the next completion and terminate their streams.
        while self._subs and self._loop.time() < deadline:
            await asyncio.sleep(0.02)
        # 3. Idle connections (blocked in a read) are cancelled.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        # 4. Join producer threads, shut the request pool down, drain the
        #    service -- blocking work, run off-loop on the default executor
        #    (our own executor is one of the things being shut down).
        await self._loop.run_in_executor(None, self._finish_drain)
        # 5. Leaked-task audit: anything still pending besides this task
        #    is a bug the async smoke gates on.
        current = asyncio.current_task()
        self.leaked_tasks = [
            task
            for task in asyncio.all_tasks(self._loop)
            if task is not current and not task.done()
        ]

    def _finish_drain(self) -> None:
        with self._subs_lock:
            subs = list(self._subs)
        for sub in subs:
            sub.bridge.cancel()
        for sub in subs:
            sub.done.wait(timeout=10.0)
        self._executor.shutdown(wait=True)
        self._drain(self._drain_timeout)

    # -- connections -----------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        if self.connection_sndbuf is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                with contextlib.suppress(OSError):
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_SNDBUF, self.connection_sndbuf
                    )
            writer.transport.set_write_buffer_limits(high=self.connection_sndbuf)
        try:
            await self._serve_json(reader, writer)
        except asyncio.CancelledError:  # server stopping: close quietly
            pass
        except Exception:  # noqa: BLE001 - a connection must never kill the loop
            pass
        finally:
            self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    def _begin(self) -> bool:  # loop thread
        if self._stop_requested:
            return False
        self._busy += 1
        return True

    def _end(self) -> None:  # loop thread
        self._busy -= 1

    async def _answer(self, data: Any, fmt: str) -> dict[str, Any]:
        fast = self.answer_fast(data, fmt)
        if fast is not None:
            return fast
        try:
            response = await self._loop.run_in_executor(
                self._executor, self.answer_request, data
            )
        except RuntimeError as error:  # pool shut down: a stop won the race
            op = data.get("op") if isinstance(data, dict) else None
            request_id = data.get("id") if isinstance(data, dict) else None
            return error_response(
                str(op if op is not None else "?"),
                ServiceUnavailableError(f"server is shutting down: {error}"),
                request_id,
            )
        self.after_answer(data, response, fmt)
        return response

    # -- JSON lines ------------------------------------------------------------
    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        response: dict[str, Any],
        bytes_in: int,
        stream: bool = False,
    ) -> bool:
        encoded = (encode_response(materialize_raw(response)) + "\n").encode("utf-8")
        # Count before the write: a client that has received a response
        # must observe it in a metrics snapshot on another connection.
        if stream:
            self.transport.record_stream(FORMAT_JSON, len(encoded))
        else:
            self.transport.record_request(FORMAT_JSON, bytes_in, len(encoded))
        try:
            writer.write(encoded)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    async def _serve_json(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.transport.record_connection(FORMAT_JSON)
        while True:
            try:
                raw = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                return  # line exceeded the transport limit: unsyncable
            except (ConnectionError, OSError):
                return
            if not raw:  # EOF: client closed its sending side
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            if self._stop_requested:
                if not await self._send_json(
                    writer, _shutting_down_response(line), len(raw)
                ):
                    return
                continue
            data, decode_error = decode_request(line)
            if decode_error is not None:
                if not await self._send_json(writer, decode_error, len(raw)):
                    return
                continue
            op, _, request_id = normalize_request(data)
            if op in (SUBSCRIBE_OP, SWEEP_OP):
                if not await self._serve_subscription(
                    writer, FORMAT_JSON, data, request_id, len(raw)
                ):
                    return
                continue
            if not self._begin():
                if not await self._send_json(writer, _refusal(op, request_id), len(raw)):
                    return
                continue
            try:
                response = await self._answer(data, FORMAT_JSON)
                sent = await self._send_json(writer, response, len(raw))
            finally:
                self._end()
            if not sent:
                return
            if response.get("op") == SHUTDOWN_OP and response.get("ok"):
                self.stop_async()
                return
            if (
                response.get("op") == HELLO_OP
                and response.get("ok")
                and response.get("format") == FORMAT_BINARY
            ):
                await self._serve_binary(reader, writer)
                return

    # -- binary frames ---------------------------------------------------------
    async def _read_frame(self, reader: asyncio.StreamReader) -> Optional[bytes]:
        try:
            header = await reader.readexactly(HEADER_SIZE)
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None  # clean EOF at a frame boundary
            raise FrameError("connection closed mid-frame-header") from error
        length = decode_header(header)
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise FrameError("connection closed mid-frame") from error

    async def _send_frame(
        self,
        writer: asyncio.StreamWriter,
        response: Any,
        bytes_in: int,
        stream: bool = False,
    ) -> bool:
        try:
            frame = encode_frame(response)
        except FrameError as error:  # pragma: no cover - responses are JSON-safe
            frame = encode_frame(error_response("?", error))
        # Same ordering as _send_json: count before the write.
        if stream:
            self.transport.record_stream(FORMAT_BINARY, len(frame))
        else:
            self.transport.record_request(FORMAT_BINARY, bytes_in, len(frame))
        try:
            writer.write(frame)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    def decode_frame_payload(self, payload: bytes) -> Any:
        """Decode one binary request payload (subclasses may keep spans raw)."""
        return decode_payload(payload)

    async def _serve_binary(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.transport.record_connection(FORMAT_BINARY)
        while True:
            try:
                payload = await self._read_frame(reader)
            except FrameError as error:
                # A corrupted header is unsyncable: answer once, close.
                await self._send_frame(writer, error_response("?", error), 0)
                return
            except (ConnectionError, OSError):
                return
            if payload is None:
                return
            bytes_in = HEADER_SIZE + len(payload)
            try:
                data = self.decode_frame_payload(payload)
            except FrameError as error:
                # Well-framed but malformed payload: still in sync.
                if not await self._send_frame(writer, error_response("?", error), bytes_in):
                    return
                continue
            op = data.get("op") if isinstance(data, dict) else None
            request_id = data.get("id") if isinstance(data, dict) else None
            if isinstance(data, dict) and op is None and "kind" in data:
                op = "solve"
            if self._stop_requested:
                if not await self._send_frame(writer, _refusal(op, request_id), bytes_in):
                    return
                continue
            if op in (SUBSCRIBE_OP, SWEEP_OP) and isinstance(data, dict):
                if not await self._serve_subscription(
                    writer, FORMAT_BINARY, data, data.get("id"), bytes_in
                ):
                    return
                continue
            if not self._begin():
                if not await self._send_frame(writer, _refusal(op, request_id), bytes_in):
                    return
                continue
            try:
                response = await self._answer(data, FORMAT_BINARY)
                sent = await self._send_frame(writer, response, bytes_in)
            finally:
                self._end()
            if not sent:
                return
            if response.get("op") == SHUTDOWN_OP and response.get("ok"):
                self.stop_async()
                return

    # -- subscriptions ---------------------------------------------------------
    async def _send(
        self,
        writer: asyncio.StreamWriter,
        fmt: str,
        response: dict[str, Any],
        bytes_in: int,
        stream: bool = False,
    ) -> bool:
        if fmt == FORMAT_BINARY:
            return await self._send_frame(writer, response, bytes_in, stream=stream)
        return await self._send_json(writer, response, bytes_in, stream=stream)

    async def _serve_subscription(
        self,
        writer: asyncio.StreamWriter,
        fmt: str,
        data: dict[str, Any],
        request_id: Any,
        bytes_in: int,
    ) -> bool:
        """Serve one subscribe/sweep request; False when the connection died."""
        op = data.get("op") if data.get("op") in (SUBSCRIBE_OP, SWEEP_OP) else SUBSCRIBE_OP
        if not self._begin():
            return await self._send(writer, fmt, _refusal(op, request_id), bytes_in)
        try:
            try:
                job, ack = await self._loop.run_in_executor(
                    self._executor, self.subscribe_open, data, request_id
                )
            except Exception as error:  # noqa: BLE001 - refuse, keep the connection
                return await self._send(
                    writer, fmt, error_response(op, error, request_id), bytes_in
                )
            if not await self._send(writer, fmt, ack, bytes_in):
                return False  # client vanished before the ack: nothing started
            bridge = _SubscriptionBridge(self._loop, self.subscription_queue_max)
            sub = _Subscription(bridge, request_id)
            with self._subs_lock:
                self._subs.add(sub)
                self._sub_counts["opened"] += 1
            sub.thread = threading.Thread(
                target=self._pump_wrapper,
                args=(job, sub),
                name="repro-subscribe",
                daemon=True,
            )
            sub.thread.start()
        finally:
            # The busy window covers validation, planning and the ack;
            # the stream itself is tracked through ``self._subs``.
            self._end()
        alive = True
        try:
            while True:
                record = await bridge.get()
                if record is _DONE:
                    break
                if alive and not await self._send(writer, fmt, record, 0, stream=True):
                    alive = False
                    bridge.cancel()
                    with self._subs_lock:
                        self._sub_counts["cancelled"] += 1
                # Keep consuming until the sentinel either way, so the
                # producer thread can never deadlock on a full queue.
        finally:
            if not bridge.cancelled and not sub.done.is_set():
                # The consumer task is going away mid-stream (connection
                # cancelled during a stop): flip the bridge so the
                # producer drains without blocking.
                bridge.cancel()
        return alive

    def _pump_wrapper(self, job: Any, sub: _Subscription) -> None:
        try:
            self.subscribe_pump(job, sub.bridge)
        except BaseException as error:  # noqa: BLE001 - terminal error record
            sub.bridge.put(error_response(SUBSCRIBE_OP, error, sub.request_id))
        finally:
            sub.bridge.finish()
            sub.done.set()
            with self._subs_lock:
                self._subs.discard(sub)
                self._sub_counts["completed"] += 1

    def subscription_stats(self) -> dict[str, int]:
        """JSON-safe counters for the metrics document and the tests."""
        with self._subs_lock:
            stats = dict(self._sub_counts)
            stats["active"] = len(self._subs)
        stats["queue_max"] = self.subscription_queue_max
        return stats


class AsyncReproServer(AsyncLineServer):
    """The asyncio solver daemon: one event loop, one shared service.

    Answers every JSON-Lines verb of the threaded
    :class:`~repro.service.daemon.ReproServer` byte-for-byte (the golden
    transcript test pins this), speaks the same negotiated binary
    frames, and adds the ``subscribe`` streamed-sweep verb.

    Args:
        service: the shared :class:`SolverService` (built from
            ``service_kwargs`` when omitted).
        host / port: bind address (``port=0`` picks an ephemeral one;
            :attr:`address` is valid immediately).
        executor_workers: request thread-pool size.
        subscription_queue_max: per-subscription record buffer bound.
        service_kwargs: forwarded to :class:`SolverService` when no
            service instance is given.
    """

    #: Hot-cache capacity, mirroring the threaded daemon's.
    HOT_CACHE_CAP = 256

    def __init__(
        self,
        service: Optional[SolverService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_workers: Optional[int] = None,
        subscription_queue_max: Optional[int] = None,
        connection_sndbuf: Optional[int] = None,
        **service_kwargs: Any,
    ) -> None:
        self.service = service if service is not None else SolverService(**service_kwargs)
        # request shape -> [result dict, encoded payload or None, backend]:
        # loop-confined (answer_fast/after_answer both run on the loop),
        # so no lock.  The raw payload is encoded lazily, on the first
        # binary hit.
        self._hot: "collections.OrderedDict[Any, list]" = collections.OrderedDict()
        super().__init__(
            host=host,
            port=port,
            executor_workers=executor_workers,
            subscription_queue_max=subscription_queue_max,
            connection_sndbuf=connection_sndbuf,
        )

    # -- request path ----------------------------------------------------------
    def answer_request(self, data: Any) -> dict[str, Any]:
        return self._enrich(handle_request(self.service, data))

    def _enrich(self, response: dict[str, Any]) -> dict[str, Any]:
        """Fold transport/kernel/subscription stats into a metrics response."""
        if response.get("op") == "metrics" and response.get("ok"):
            metrics = response.get("metrics")
            if isinstance(metrics, dict):
                from ..simulation.kernel import kernel_cache_stats

                metrics["transport"] = self.transport.snapshot()
                metrics["kernel_cache"] = kernel_cache_stats()
                metrics["subscriptions"] = self.subscription_stats()
        return response

    def answer_fast(self, data: Any, fmt: str) -> Optional[dict[str, Any]]:
        """Hot response cache, in-loop: repeat solves skip the thread hop.

        The threaded daemon replays repeats from its hot cache on the
        binary path and from the runner LRU on the JSON path; both are
        ``served_by: "cache"`` on the wire, so answering JSON repeats
        from the hot cache here changes latency, not semantics.
        """
        if self._stop_requested or self.service.draining:
            return None
        key = hot_solve_key(data)
        if key is None:
            return None
        entry = self._hot.get(key)
        if entry is None:
            return None
        started = time.perf_counter()
        self._hot.move_to_end(key)
        result_dict, raw, effective = entry
        if fmt == FORMAT_BINARY:
            if raw is None:
                try:
                    raw = entry[1] = encode_payload(result_dict)
                except FrameError:  # pragma: no cover - results are JSON-safe
                    return None
            result: Any = Raw(raw)
        else:
            result = result_dict
        latency = time.perf_counter() - started
        self.service.metrics.record(effective, "cache", latency)
        response: dict[str, Any] = {
            "ok": True,
            "op": "solve",
            "result": result,
            "served_by": "cache",
            "latency_ms": round(latency * 1e3, 3),
        }
        request_id = data.get("id")
        if request_id is not None:
            response["id"] = request_id
        return response

    def after_answer(self, data: Any, response: dict[str, Any], fmt: str) -> None:
        if not (response.get("ok") and response.get("op") == "solve"):
            return
        key = hot_solve_key(data)
        if key is None:
            return
        result = response.get("result")
        if not isinstance(result, dict):
            return
        effective = (
            data.get("backend") if isinstance(data, dict) else None
        ) or self.service.backend
        self._hot[key] = [result, None, effective]
        self._hot.move_to_end(key)
        while len(self._hot) > self.HOT_CACHE_CAP:
            self._hot.popitem(last=False)

    # -- the subscribe + sweep verbs -------------------------------------------
    def subscribe_open(self, data: dict[str, Any], request_id: Any) -> tuple[Any, dict]:
        from ..api.backends import create_backend

        op = data.get("op")
        if op == SWEEP_OP:
            specs, backend, mode = parse_sweep(data)
        else:
            specs, backend = parse_subscribe(data)
            mode = None
        effective = backend if backend is not None else self.service.backend
        if self.service.draining:
            raise ServiceUnavailableError("service is draining, request refused")
        backend_obj = create_backend(effective)
        runner = self.service.runner
        plan = runner.plan(specs, backend=effective, backend_obj=backend_obj)
        if mode is None:
            ack = subscribe_ack(request_id, plan.total, plan.unique, effective, fanout=1)
        else:
            # A single daemon is its own one-partition fleet: the whole
            # deduplicated suite runs as one local batch plan.
            ack = sweep_ack(request_id, plan.total, plan.unique, effective, mode, fanout=1)
        return (runner, plan, backend_obj, effective, request_id, mode), ack

    def subscribe_pump(self, job: Any, bridge: _SubscriptionBridge) -> None:
        """Drive one planned sweep, streaming completions through the bridge.

        Runs on a dedicated producer thread.  The execution stream is
        **always drained fully** -- a cancelled bridge only discards the
        records, so the LRU and the store still receive every fresh
        result (the abrupt-disconnect invariant).  Only a server stop
        aborts the stream early (closing the generator, which flushes).

        ``mode`` distinguishes the three reply shapes: None (subscribe:
        per-spec records + subscribe summary), ``stream`` (same records,
        sweep summary with tier counts), ``fold`` (no per-spec records;
        one ``partial`` aggregate record, then a sweep summary carrying
        the ``fold_digest``).
        """
        from ..experiments.manifest import (
            digest_blob_hashes,
            fingerprint_blob_hash,
            fingerprint_digest,
        )

        runner, plan, backend_obj, effective, request_id, mode = job
        started = time.perf_counter()
        seq = 0
        errors = 0
        sources: dict[str, int] = {}
        results: list[Any] = []
        aborted = False
        fold = None
        blob_hashes: list[str] = []
        failures: list[dict[str, Any]] = []
        if mode == "fold":
            from ..analysis.streaming import EnvelopeAggregate

            fold = EnvelopeAggregate()
        abort_op = SWEEP_OP if mode is not None else SUBSCRIBE_OP
        stream = runner.execute_iter(plan, backend_obj=backend_obj)
        try:
            for completion in stream:
                if self._stop_requested:
                    aborted = True
                    bridge.put(
                        error_response(
                            abort_op,
                            ServiceUnavailableError(
                                "server is shutting down, subscription aborted"
                            ),
                            request_id,
                        )
                    )
                    break
                seq += 1
                sources[completion.source] = sources.get(completion.source, 0) + 1
                if completion.result is not None:
                    self.service.metrics.record(
                        effective, completion.source, completion.latency
                    )
                else:
                    errors += 1
                    self.service.metrics.record_error(effective, completion.latency)
                if fold is not None:
                    # Fold mode never ships per-spec records: results
                    # collapse into the aggregate plus one blob hash each.
                    if completion.result is not None:
                        fold.push(completion.result.to_dict())
                        blob_hashes.append(fingerprint_blob_hash(completion.result))
                    else:
                        failures.append(
                            {
                                "spec_hash": completion.key[1],
                                "error": completion.failure.message,
                                "error_type": completion.failure.error_type,
                            }
                        )
                    continue
                if completion.result is not None:
                    results.append(completion.result)
                bridge.put(completion_record(completion, request_id, seq - 1))
        finally:
            stream.close()
        if aborted:
            return
        wall_time_ms = (time.perf_counter() - started) * 1e3
        if mode is None:
            bridge.put(
                subscribe_summary(
                    request_id,
                    records=seq,
                    errors=errors,
                    total=plan.total,
                    unique=plan.unique,
                    fingerprint_digest=fingerprint_digest(results),
                    sources=sources,
                    wall_time_ms=wall_time_ms,
                )
            )
        elif mode == "stream":
            bridge.put(
                sweep_summary(
                    request_id,
                    records=seq,
                    errors=errors,
                    total=plan.total,
                    unique=plan.unique,
                    mode=mode,
                    tiers=sources,
                    wall_time_ms=wall_time_ms,
                    fingerprint_digest=fingerprint_digest(results),
                )
            )
        else:
            bridge.put(
                sweep_partial(
                    request_id,
                    fold=fold.to_wire(),
                    blob_hashes=blob_hashes,
                    sources=sources,
                    records=seq,
                    errors=errors,
                    failures=failures,
                )
            )
            bridge.put(
                sweep_summary(
                    request_id,
                    records=seq,
                    errors=errors,
                    total=plan.total,
                    unique=plan.unique,
                    mode=mode,
                    tiers=sources,
                    wall_time_ms=wall_time_ms,
                    fold_digest=digest_blob_hashes(blob_hashes),
                )
            )

    # -- lifecycle -------------------------------------------------------------
    def _drain(self, timeout: Optional[float]) -> None:
        self.service.drain(timeout=timeout)
