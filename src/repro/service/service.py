"""The long-lived solver service: one shared runner, coalesced requests.

A :class:`SolverService` is the in-process serving tier between any
number of concurrent request threads and one thread-safe
:class:`~repro.api.batch.BatchRunner` (locked LRU + persistent store
tier).  On top of the runner's caching it adds what a cache cannot do:

* **request coalescing** -- concurrent identical requests (same
  ``(backend, spec hash)``) trigger exactly one solve; the first
  arrival leads, every overlapping duplicate waits on the leader's
  completion event and shares its result.  N clients asking for the
  same cold spec cost one backend call, not N.
* **admission control** -- at most ``max_inflight`` leader solves run
  concurrently; up to ``queue_limit`` more may wait for a slot, and
  anything beyond that is refused immediately with
  :class:`~repro.errors.ServiceUnavailableError` instead of piling up.
* **metrics** -- per-backend request counts, hit rates, coalescing and
  latency percentiles (:class:`~repro.service.metrics.ServiceMetrics`).
* **graceful drain** -- :meth:`drain` stops admitting, waits for every
  in-flight solve, and flushes the persistent store once (the service
  runner buffers store writes instead of publishing one segment per
  request).

The service is transport-agnostic: the TCP JSON-Lines daemon
(:mod:`repro.service.daemon`) and the CLI's ``solve --stdin-jsonl``
both speak to exactly this object.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, NamedTuple, Optional, Union

from ..api.batch import BatchRunner
from ..api.spec import ProblemSpec
from ..api.result import SolveResult
from ..api.store import ResultStore
from ..errors import InvalidParameterError, ServiceUnavailableError
from .metrics import ServiceMetrics

__all__ = ["ServedResult", "SolverService"]


class ServedResult(NamedTuple):
    """One answered request: the envelope plus how it was served."""

    result: SolveResult
    #: ``"solve"`` (fresh), ``"cache"`` (LRU), ``"store"`` (persistent
    #: tier) or ``"coalesced"`` (shared an overlapping leader's solve).
    source: str
    #: Seconds from request arrival to answer.
    latency: float


class _InFlight:
    """Rendezvous point between one leader solve and its followers."""

    __slots__ = ("event", "result", "source", "error", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[SolveResult] = None
        self.source: str = "solve"
        self.error: Optional[BaseException] = None
        #: Followers currently coalesced onto this solve (under the
        #: service lock); lets tests and introspection observe joins
        #: *before* the leader finishes.
        self.waiters = 0


class SolverService:
    """Thread-safe serving facade over one shared :class:`BatchRunner`.

    Args:
        runner: the runner to serve from; built from ``backend`` /
            ``store`` when omitted.  A service-built runner buffers
            store writes (``flush_store=False``) and flushes on drain.
        backend: default backend for requests that don't name one.
        store: persistent result store (instance or directory path) for
            a service-built runner.
        max_inflight: maximum concurrent leader solves.
        queue_limit: maximum leaders allowed to *wait* for a solve slot
            on top of ``max_inflight``; beyond it requests are refused.
        admission_timeout: seconds a queued leader waits for a slot
            before being refused.
        metrics_window: per-backend latency window for p50/p99.
    """

    def __init__(
        self,
        runner: Optional[BatchRunner] = None,
        backend: str = "auto",
        store: Union[ResultStore, str, Path, None] = None,
        max_inflight: int = 8,
        queue_limit: int = 128,
        admission_timeout: float = 60.0,
        metrics_window: int = 2048,
    ) -> None:
        if max_inflight < 1:
            raise InvalidParameterError(f"max_inflight must be >= 1, got {max_inflight!r}")
        if queue_limit < 0:
            raise InvalidParameterError(f"queue_limit must be >= 0, got {queue_limit!r}")
        if admission_timeout <= 0:
            raise InvalidParameterError(
                f"admission_timeout must be > 0, got {admission_timeout!r}"
            )
        if runner is None:
            runner = BatchRunner(backend=backend, store=store, flush_store=False)
        self.runner = runner
        self.backend = backend
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.admission_timeout = admission_timeout
        self.metrics = ServiceMetrics(window=metrics_window)
        self._slots = threading.BoundedSemaphore(max_inflight)
        self._lock = threading.Lock()
        self._inflight: dict[tuple[str, str], _InFlight] = {}
        self._idle = threading.Condition(self._lock)
        self._draining = False
        self._started = time.time()

    # -- lifecycle -------------------------------------------------------------
    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.drain()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        """Number of leader solves currently queued or running."""
        with self._lock:
            return len(self._inflight)

    def waiting_for(self, spec: ProblemSpec, backend: Optional[str] = None) -> int:
        """Followers currently coalesced onto a spec's in-flight solve."""
        effective = backend if backend is not None else self.backend
        with self._lock:
            entry = self._inflight.get((effective, spec.canonical_hash()))
            return entry.waiters if entry is not None else 0

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, wait for in-flight solves, flush the store.

        Returns True when everything finished within ``timeout``
        (False leaves the service draining with work still in flight;
        the store is flushed either way).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        finished = True
        with self._idle:
            self._draining = True
            while self._inflight:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    finished = False
                    break
                if not self._idle.wait(timeout=remaining):
                    finished = False
                    break
        if self.runner.store is not None:
            self.runner.store.flush()
        return finished

    # -- serving ---------------------------------------------------------------
    def solve(self, spec: ProblemSpec, backend: Optional[str] = None) -> SolveResult:
        """Answer one request (blocking); see :meth:`request` for the meta."""
        return self.request(spec, backend=backend).result

    def request(self, spec: ProblemSpec, backend: Optional[str] = None) -> ServedResult:
        """Answer one request, coalescing with any identical in-flight one.

        Raises:
            ServiceUnavailableError: refused by admission control
                (draining, queue full, or slot wait timed out).
            ReproError: whatever the backend raised; an error is shared
                with every coalesced follower of the same solve.
        """
        effective = backend if backend is not None else self.backend
        started = time.perf_counter()
        key = (effective, spec.canonical_hash())

        with self._lock:
            if self._draining:
                self.metrics.record_rejected(effective)
                raise ServiceUnavailableError("service is draining, request refused")
            entry = self._inflight.get(key)
            if entry is not None:
                entry.waiters += 1
                leader = False
            else:
                if len(self._inflight) >= self.max_inflight + self.queue_limit:
                    self.metrics.record_rejected(effective)
                    raise ServiceUnavailableError(
                        f"service at capacity ({self.max_inflight} in flight "
                        f"+ {self.queue_limit} queued), request refused"
                    )
                entry = _InFlight()
                self._inflight[key] = entry
                leader = True

        if not leader:
            entry.event.wait()
            latency = time.perf_counter() - started
            if entry.error is not None:
                # Mirror the leader's accounting: an admission refusal is
                # a rejection, not a backend error, for followers too.
                if isinstance(entry.error, ServiceUnavailableError):
                    self.metrics.record_rejected(effective)
                else:
                    self.metrics.record_error(effective, latency)
                raise entry.error
            self.metrics.record(effective, "coalesced", latency)
            return ServedResult(entry.result, "coalesced", latency)

        try:
            if not self._slots.acquire(timeout=self.admission_timeout):
                self.metrics.record_rejected(effective)
                raise ServiceUnavailableError(
                    f"no solve slot freed within {self.admission_timeout}s, "
                    "request refused"
                )
            try:
                results, stats = self.runner.run([spec], backend=effective)
            finally:
                self._slots.release()
            entry.result = results[0]
            if stats.cache_hits:
                entry.source = "cache"
            elif stats.solved_from_store:
                entry.source = "store"
            else:
                entry.source = "solve"
        except BaseException as error:
            entry.error = error
            latency = time.perf_counter() - started
            if not isinstance(error, ServiceUnavailableError):
                self.metrics.record_error(effective, latency)
            raise
        finally:
            with self._idle:
                self._inflight.pop(key, None)
                if not self._inflight:
                    self._idle.notify_all()
            entry.event.set()

        latency = time.perf_counter() - started
        self.metrics.record(effective, entry.source, latency)
        return ServedResult(entry.result, entry.source, latency)

    # -- introspection ---------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """JSON-safe liveness document (the daemon's ``health`` verb)."""
        with self._lock:
            inflight = len(self._inflight)
            status = "draining" if self._draining else "serving"
        return {
            "status": status,
            "inflight": inflight,
            "max_inflight": self.max_inflight,
            "queue_limit": self.queue_limit,
            "backend": self.backend,
            "store": str(self.runner.store.path) if self.runner.store is not None else None,
            "cache_len": self.runner.cache_len,
            "uptime_s": round(time.time() - self._started, 3),
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """JSON-safe metrics document (the daemon's ``metrics`` verb)."""
        return self.metrics.snapshot()
