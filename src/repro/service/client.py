"""A small persistent client for the serving wire, JSON or binary.

:func:`~repro.service.daemon.request_lines` stays the one-shot,
JSON-only helper; :class:`ServiceClient` is the persistent-connection
counterpart the CLI, the benchmarks and the smoke scripts use when they
want the negotiated binary framing:

    with ServiceClient(host, port, binary=True) as client:
        response = client.request({"op": "solve", "spec": {...}})

``binary=True`` sends the ``hello`` upgrade first and falls back to
JSON transparently when the server declines (an old daemon answers
``hello`` with an unknown-op error -- the client notices and keeps
speaking JSON, so new clients work against old servers too).

Any wire-level failure -- a read timeout, an EOF mid-response, a frame
that does not decode -- raises :class:`~repro.errors.ServiceProtocolError`
**after closing the connection**: once framing desyncs there is no way
to match a late response to its request, so a broken client must never
be reused (and refuses to be: further requests raise immediately).

Against an asyncio server, :meth:`ServiceClient.subscribe` submits a
whole spec suite on this one connection and iterates the per-spec
completion records as they stream back, in completion order::

    with ServiceClient(host, port) as client:
        stream = client.subscribe(specs)
        for record in stream:          # {"op": "completion", "seq": ..., ...}
            ...
        print(stream.summary["fingerprint_digest"])
"""

from __future__ import annotations

import json
import socket
from typing import Any, Iterator, Optional

from ..errors import ReproError, ServiceProtocolError
from .frames import (
    FORMAT_BINARY,
    FORMAT_JSON,
    HELLO_OP,
    FrameError,
    decode_payload,
    encode_frame,
    read_frame,
)
from .protocol import COMPLETION_OP, SUBSCRIBE_OP, SUMMARY_OP, SWEEP_OP

__all__ = ["ServiceClient", "SubscribeStream"]


class ServiceClient:
    """One persistent connection to a daemon or router.

    Args:
        host / port: the server address.
        binary: offer the binary-frame upgrade; :attr:`format` records
            what the connection actually negotiated.
        timeout: socket timeout per round-trip (and per streamed record
            during a subscription).
    """

    def __init__(
        self, host: str, port: int, binary: bool = False, timeout: float = 60.0
    ) -> None:
        self._conn = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._conn.makefile("rwb")
        self._closed = False
        self.format = FORMAT_JSON
        self.bytes_sent = 0
        self.bytes_received = 0
        if binary:
            self._negotiate()

    def _negotiate(self) -> None:
        response = self._request({"op": HELLO_OP, "format": FORMAT_BINARY})
        if response.get("ok") and response.get("format") == FORMAT_BINARY:
            self.format = FORMAT_BINARY
        # Any other answer (an old server's unknown-op error included)
        # leaves the connection in JSON mode, fully usable.

    @property
    def binary(self) -> bool:
        return self.format == FORMAT_BINARY

    @property
    def closed(self) -> bool:
        return self._closed

    def _broken(self, what: str, error: Optional[BaseException]) -> ServiceProtocolError:
        """Close the connection and build the error to raise -- in that
        order: a desynced connection must be dead before the caller can
        see (and possibly swallow) the exception."""
        self.close()
        detail = f": {error}" if error is not None else ""
        return ServiceProtocolError(f"{what}{detail}")

    def _write(self, data: dict[str, Any]) -> None:
        if self._closed:
            raise ServiceProtocolError("client connection is closed")
        if self.format == FORMAT_BINARY:
            encoded = encode_frame(data)
        else:
            encoded = (
                json.dumps(data, sort_keys=True, separators=(",", ":"), allow_nan=False) + "\n"
            ).encode("utf-8")
        try:
            self._stream.write(encoded)
            self._stream.flush()
        except (TimeoutError, OSError) as error:
            raise self._broken("send failed, connection closed", error) from error
        self.bytes_sent += len(encoded)

    def _read(self) -> dict[str, Any]:
        if self._closed:
            raise ServiceProtocolError("client connection is closed")
        if self.format == FORMAT_BINARY:
            return self._read_frame()
        return self._read_line()

    def _read_line(self) -> dict[str, Any]:
        try:
            raw = self._stream.readline()
        except TimeoutError as error:
            # The response may still arrive later; there is no way to
            # pair it with its request any more, so the connection is
            # unusable and must not be returned to the caller alive.
            raise self._broken("read timed out, connection closed", error) from error
        except OSError as error:
            raise self._broken("read failed, connection closed", error) from error
        if not raw:
            raise self._broken("server closed the connection mid-request", None)
        self.bytes_received += len(raw)
        try:
            response = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise self._broken("undecodable response, connection closed", error) from error
        if not isinstance(response, dict):
            raise self._broken("server answered a non-object response", None)
        return response

    def _read_frame(self) -> dict[str, Any]:
        try:
            payload = read_frame(self._stream)
        except TimeoutError as error:
            raise self._broken("read timed out, connection closed", error) from error
        except FrameError as error:
            raise self._broken("undecodable frame, connection closed", error) from error
        except OSError as error:
            raise self._broken("read failed, connection closed", error) from error
        if payload is None:
            raise self._broken("server closed the connection mid-request", None)
        self.bytes_received += 6 + len(payload)
        try:
            response = decode_payload(payload)
        except FrameError as error:
            raise self._broken("undecodable frame, connection closed", error) from error
        if not isinstance(response, dict):
            raise self._broken("server answered a non-object response", None)
        return response

    def _request(self, data: dict[str, Any]) -> dict[str, Any]:
        self._write(data)
        return self._read()

    def request(self, data: dict[str, Any]) -> dict[str, Any]:
        """One round-trip in whatever format the connection negotiated."""
        return self._request(data)

    def subscribe(
        self,
        specs: Any,
        backend: Optional[str] = None,
        request_id: Any = None,
    ) -> "SubscribeStream":
        """Submit a spec suite and stream its completions back.

        ``specs`` may hold spec objects or already-serialised spec
        dicts.  The server's ``ok`` ack is consumed here; a refusal
        (``ok: false`` -- e.g. a threaded daemon, or an invalid suite)
        raises :class:`~repro.errors.ReproError` and leaves the
        connection usable.  Iterate the returned stream to exhaustion
        before issuing other requests on this client.
        """
        request: dict[str, Any] = {
            "op": SUBSCRIBE_OP,
            "specs": [
                spec.to_dict() if hasattr(spec, "to_dict") else spec for spec in specs
            ],
        }
        if backend is not None:
            request["backend"] = backend
        if request_id is not None:
            request["id"] = request_id
        ack = self._request(request)
        if not ack.get("ok"):
            raise ReproError(
                f"subscribe refused: {ack.get('error', 'unknown error')}"
            )
        return SubscribeStream(self, ack)

    def sweep(
        self,
        specs: Any,
        backend: Optional[str] = None,
        mode: str = "stream",
        request_id: Any = None,
    ) -> "SubscribeStream":
        """Submit a whole suite as one partitioned sweep.

        Unlike :meth:`subscribe` (which an async cluster front dissolves
        into per-spec routed solves), a sweep ships spec *partitions* to
        the workers, where each runs as one local batch plan -- all five
        execution tiers active.  ``mode="stream"`` yields per-spec
        completion records exactly like subscribe; ``mode="fold"``
        yields a single ``partial`` record carrying merged per-``(kind,
        backend)`` aggregate tables instead of envelopes.  The ack and
        summary carry fan-out, partition sizes and fleet tier counts.
        """
        request: dict[str, Any] = {
            "op": SWEEP_OP,
            "mode": mode,
            "specs": [
                spec.to_dict() if hasattr(spec, "to_dict") else spec for spec in specs
            ],
        }
        if backend is not None:
            request["backend"] = backend
        if request_id is not None:
            request["id"] = request_id
        ack = self._request(request)
        if not ack.get("ok"):
            raise ReproError(f"sweep refused: {ack.get('error', 'unknown error')}")
        return SubscribeStream(self, ack)

    def close(self) -> None:
        self._closed = True
        try:
            self._stream.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SubscribeStream:
    """Iterator over one subscription's streamed completion records.

    Yields each ``completion`` record as a dict; the terminating
    ``summary`` record is not yielded but stashed on :attr:`summary`.
    A mid-stream server abort (an ``ok: false`` record) raises
    :class:`~repro.errors.ReproError`; wire breakage raises
    :class:`~repro.errors.ServiceProtocolError` with the connection
    closed, like any other read.
    """

    def __init__(self, client: ServiceClient, ack: dict[str, Any]) -> None:
        self._client = client
        self.ack = ack
        self.summary: Optional[dict[str, Any]] = None

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return self

    def __next__(self) -> dict[str, Any]:
        if self.summary is not None:
            raise StopIteration
        record = self._client._read()
        op = record.get("op")
        if op == SUMMARY_OP:
            self.summary = record
            raise StopIteration
        if not record.get("ok") and op != COMPLETION_OP:
            # A terminal server-side abort (shutdown mid-sweep, pump
            # failure); the stream is over but the connection is fine.
            raise ReproError(
                f"subscription aborted by server: {record.get('error', 'unknown error')}"
            )
        return record
