"""A small persistent client for the serving wire, JSON or binary.

:func:`~repro.service.daemon.request_lines` stays the one-shot,
JSON-only helper; :class:`ServiceClient` is the persistent-connection
counterpart the CLI, the benchmarks and the smoke scripts use when they
want the negotiated binary framing:

    with ServiceClient(host, port, binary=True) as client:
        response = client.request({"op": "solve", "spec": {...}})

``binary=True`` sends the ``hello`` upgrade first and falls back to
JSON transparently when the server declines (an old daemon answers
``hello`` with an unknown-op error -- the client notices and keeps
speaking JSON, so new clients work against old servers too).
"""

from __future__ import annotations

import json
import socket
from typing import Any

from ..errors import ReproError
from .frames import (
    FORMAT_BINARY,
    FORMAT_JSON,
    HELLO_OP,
    FrameError,
    decode_payload,
    encode_frame,
    read_frame,
)

__all__ = ["ServiceClient"]


class ServiceClient:
    """One persistent connection to a daemon or router.

    Args:
        host / port: the server address.
        binary: offer the binary-frame upgrade; :attr:`format` records
            what the connection actually negotiated.
        timeout: socket timeout per round-trip.
    """

    def __init__(
        self, host: str, port: int, binary: bool = False, timeout: float = 60.0
    ) -> None:
        self._conn = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._conn.makefile("rwb")
        self.format = FORMAT_JSON
        self.bytes_sent = 0
        self.bytes_received = 0
        if binary:
            self._negotiate()

    def _negotiate(self) -> None:
        response = self._request_json({"op": HELLO_OP, "format": FORMAT_BINARY})
        if response.get("ok") and response.get("format") == FORMAT_BINARY:
            self.format = FORMAT_BINARY
        # Any other answer (an old server's unknown-op error included)
        # leaves the connection in JSON mode, fully usable.

    @property
    def binary(self) -> bool:
        return self.format == FORMAT_BINARY

    def _request_json(self, data: dict[str, Any]) -> dict[str, Any]:
        encoded = (json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n").encode(
            "utf-8"
        )
        self._stream.write(encoded)
        self._stream.flush()
        self.bytes_sent += len(encoded)
        raw = self._stream.readline()
        if not raw:
            raise ReproError("server closed the connection mid-request")
        self.bytes_received += len(raw)
        response = json.loads(raw.decode("utf-8"))
        if not isinstance(response, dict):
            raise ReproError("server answered a non-object response")
        return response

    def _request_binary(self, data: dict[str, Any]) -> dict[str, Any]:
        frame = encode_frame(data)
        self._stream.write(frame)
        self._stream.flush()
        self.bytes_sent += len(frame)
        payload = read_frame(self._stream)
        if payload is None:
            raise ReproError("server closed the connection mid-request")
        self.bytes_received += 6 + len(payload)
        response = decode_payload(payload)
        if not isinstance(response, dict):
            raise FrameError("server answered a non-object response")
        return response

    def request(self, data: dict[str, Any]) -> dict[str, Any]:
        """One round-trip in whatever format the connection negotiated."""
        if self.format == FORMAT_BINARY:
            return self._request_binary(data)
        return self._request_json(data)

    def close(self) -> None:
        try:
            self._stream.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
