"""CI smoke for the asyncio serving tier: subscribe sweep, cold then warm.

Run with::

    PYTHONPATH=src python benchmarks/async_smoke.py [--suite NAME]

Boots an :class:`~repro.service.AsyncReproServer` on an ephemeral port
and pushes the whole suite through the streamed ``subscribe`` verb
twice on one persistent connection, then once more over the binary
wire frames.  Fails (non-zero exit) unless:

* the cold pass streams every unique spec exactly once, in contiguous
  sequence order, each record's fingerprint bit-identical to a direct
  in-process ``solve()`` of the same spec;
* the summary's order-independent ``fingerprint_digest`` equals the
  digest of ``BatchRunner.run()`` over the same suite, and the streamed
  completion set (the spec hashes) equals the batch run's;
* the warm pass is answered entirely from the hot response cache
  (``sources == {"cache": unique}``) with the identical digest;
* the binary-negotiated pass agrees on the digest too — one stream
  semantics, two wire formats;
* shutdown is clean: every subscription retired, zero tasks leaked on
  the event loop.

No timings are asserted — this is a correctness/parity gate, the
concurrency story lives in ``BENCH_async.json``.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import BatchRunner, SolveResult
from repro.experiments.manifest import fingerprint_digest
from repro.service import AsyncReproServer, ServiceClient
from repro.workloads import spec_suite


def run_subscription(client: ServiceClient, specs, backend: str):
    """One subscribe round trip: (records, summary)."""
    stream = client.subscribe(specs, backend=backend)
    records = list(stream)
    assert stream.summary is not None  # iterator stops only on the summary
    return records, stream.summary


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="search-sweep", help="workload suite to stream")
    parser.add_argument("--backend", default="auto", help="daemon default backend")
    namespace = parser.parse_args()

    suite = spec_suite(namespace.suite)
    # The reference answers, computed in-process through the facade.
    expected_results, _ = BatchRunner(backend=namespace.backend).run(suite)
    expected_digest = fingerprint_digest(expected_results)
    expected_hashes = {result.provenance.spec_hash for result in expected_results}
    expected_fingerprints = {
        result.provenance.spec_hash: result.fingerprint() for result in expected_results
    }

    failures: list[str] = []
    with AsyncReproServer(backend=namespace.backend) as server:
        server.serve_background()
        print(f"async smoke: daemon on {server.address}, {len(suite)} spec(s)")

        with ServiceClient(server.host, server.port) as client:
            cold_records, cold = run_subscription(client, suite, namespace.backend)
            warm_records, warm = run_subscription(client, suite, namespace.backend)

        # Cold pass: every unique spec once, in sequence, fingerprints
        # identical to the direct solve.
        if [record["seq"] for record in cold_records] != list(range(len(cold_records))):
            failures.append("cold pass streamed out-of-sequence records")
        bad = [record for record in cold_records if not record.get("ok")]
        if bad:
            failures.append(
                f"{len(bad)} cold record(s) failed, first: {bad[0].get('error')}"
            )
        else:
            for record in cold_records:
                served = SolveResult.from_dict(record["result"])
                fingerprint = expected_fingerprints.get(served.provenance.spec_hash)
                if fingerprint is None or served.fingerprint() != fingerprint:
                    failures.append(
                        f"record seq={record['seq']} drifted from the direct solve"
                    )
                    break
        streamed_hashes = {record["key"]["spec_hash"] for record in cold_records}
        if streamed_hashes != expected_hashes:
            failures.append(
                f"completion set mismatch: streamed {len(streamed_hashes)} hashes, "
                f"batch run produced {len(expected_hashes)}"
            )
        if cold["fingerprint_digest"] != expected_digest:
            failures.append(
                f"cold digest {cold['fingerprint_digest'][:16]}... != "
                f"batch digest {expected_digest[:16]}..."
            )
        if cold["errors"]:
            failures.append(f"cold pass recorded {cold['errors']} error(s)")

        # Warm pass: the same suite on the same connection must be
        # answered entirely from the hot response cache.
        if warm["fingerprint_digest"] != expected_digest:
            failures.append("warm digest drifted from the cold digest")
        if warm["sources"] != {"cache": cold["unique"]}:
            failures.append(
                f"warm pass was not all cache hits: sources={warm['sources']}"
            )
        if len(warm_records) != len(cold_records):
            failures.append(
                f"warm pass streamed {len(warm_records)} records, cold {len(cold_records)}"
            )

        # Binary pass: same stream semantics under the negotiated frames.
        with ServiceClient(server.host, server.port, binary=True) as binary_client:
            if binary_client.format != "binary":
                failures.append("binary upgrade was declined")
                binary = None
            else:
                _, binary = run_subscription(binary_client, suite, namespace.backend)
        if binary is not None and binary["fingerprint_digest"] != expected_digest:
            failures.append("binary digest drifted from the JSON digest")

        stats = server.subscription_stats()
        if stats["active"]:
            failures.append(f"{stats['active']} subscription(s) still active")
        if stats["completed"] != stats["opened"]:
            failures.append(
                f"{stats['opened']} subscriptions opened, {stats['completed']} completed"
            )

    if server.leaked_tasks:
        failures.append(f"leaked event-loop task(s): {server.leaked_tasks}")

    print(
        f"async smoke: cold {cold['records']} records in {cold['wall_time_ms']:.0f} ms "
        f"(sources {cold['sources']}), warm {warm['records']} in "
        f"{warm['wall_time_ms']:.0f} ms (sources {warm['sources']})"
    )
    if failures:
        for failure in failures:
            print(f"ERROR: {failure}", file=sys.stderr)
        return 1
    print(
        "async smoke: digest parity with the batch runner on both wire formats, "
        "warm pass all cache hits, shutdown clean with zero leaked tasks"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
