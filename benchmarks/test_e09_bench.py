"""Benchmark E09 -- Lemmas 11-13 and Theorem 3: asymmetric-clock rounds.

Regenerates the asymmetric-clock sweep: measured rendezvous round and time vs k* and the Theorem 3 bound.
"""

from __future__ import annotations


def test_e09(experiment_runner):
    """Run experiment E09 once and verify every reproduced claim."""
    report = experiment_runner("E09")
    assert report.all_passed
