"""CI smoke for the sharded cluster: 2 workers up, suite through the router twice.

Run with::

    PYTHONPATH=src python benchmarks/cluster_smoke.py [--suite NAME] [--workers N]

Boots a worker fleet plus a :class:`~repro.cluster.ShardRouter` on
ephemeral ports with a fresh primary store, then pushes the quick suite
through the router **twice** and fails (non-zero exit) unless:

* every response on both passes is ``ok`` and bit-identical in
  fingerprint to a direct in-process ``solve()`` of the same spec;
* the second pass is answered entirely without fresh solves (worker
  LRU / store / coalescing hits) -- the warm-path gate;
* a third pass through the **binary wire frames** returns the same
  fingerprints again;
* the router's metrics carry the shared-trajectory arena document
  while the fleet is up;
* the router's shard counters show every worker took traffic and no
  worker was restarted (this is the happy-path smoke; failover has its
  own tests);
* after a drain the worker stores have merged into the primary store,
  which holds exactly one record per unique spec;
* no shared-memory segment is left behind in ``/dev/shm`` after the
  fleet drains (the arena is destroyed with the supervisor).

No timings are asserted -- the throughput story lives in
``BENCH_cluster.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from pathlib import Path

from repro.api import BatchRunner, ResultStore, SolveResult
from repro.cluster import ClusterSupervisor, ShardRouter, boot_router
from repro.service import ServiceClient, request_lines
from repro.workloads import spec_suite


def shm_entries() -> set:
    """Names currently in /dev/shm (empty off Linux)."""
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


def _push(router: ShardRouter, specs: list) -> list[dict]:
    lines = [
        json.dumps({"op": "solve", "spec": spec.to_dict(), "id": index})
        for index, spec in enumerate(specs)
    ]
    return [json.loads(line) for line in request_lines(router.host, router.port, lines)]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="search-sweep", help="workload suite to stream")
    parser.add_argument("--workers", type=int, default=2, help="shard worker processes")
    parser.add_argument("--backend", default="auto", help="cluster default backend")
    namespace = parser.parse_args()

    suite = spec_suite(namespace.suite)
    expected_results, _ = BatchRunner(backend=namespace.backend).run(suite)
    expected = {
        result.provenance.spec_hash: result.fingerprint() for result in expected_results
    }

    failures: list[str] = []
    shm_before = shm_entries()
    store_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-smoke-"))
    supervisor = ClusterSupervisor(
        workers=namespace.workers, backend=namespace.backend, store=store_dir
    )
    try:
        # boot_router kills the fleet if the boot fails; the inner
        # finally stops it on any failure after that -- either way the
        # detached workers never outlive the smoke run.
        router = boot_router(supervisor, backend=namespace.backend)
        try:
            router.serve_background()
            print(
                f"cluster smoke: router on {router.address}, {namespace.workers} worker(s) "
                f"({', '.join(handle.address or '?' for handle in supervisor.handles)}), "
                f"{len(suite)} specs x 2 passes"
            )

            cold = _push(router, suite)
            warm = _push(router, suite)
            binary: list[dict] = []
            with ServiceClient(router.host, router.port, binary=True) as client:
                if client.format != "binary":
                    binary.append({"ok": False, "error": "binary upgrade was declined"})
                else:
                    for index, spec in enumerate(suite):
                        binary.append(
                            client.request(
                                {"op": "solve", "spec": spec.to_dict(), "id": index}
                            )
                        )
            (metrics_line,) = request_lines(
                router.host, router.port, [json.dumps({"op": "metrics"})]
            )
            metrics = json.loads(metrics_line)["metrics"]
        finally:
            router.stop()

        for label, responses in (("cold", cold), ("warm", warm), ("binary", binary)):
            bad = [response for response in responses if not response.get("ok")]
            if bad:
                failures.append(
                    f"{label} pass: {len(bad)} request(s) failed, "
                    f"first: {bad[0].get('error')}"
                )
                continue
            for response in responses:
                served = SolveResult.from_dict(response["result"])
                fingerprint = expected.get(served.provenance.spec_hash)
                if fingerprint is None or served.fingerprint() != fingerprint:
                    failures.append(
                        f"{label} pass: response {response.get('id')} drifted "
                        "from the direct solve"
                    )
                    break

        warm_sources = {response.get("served_by") for response in warm if response.get("ok")}
        if "solve" in warm_sources:
            failures.append(
                f"warm pass re-solved specs instead of hitting the caches: {warm_sources}"
            )
        arena_doc = metrics.get("arena")
        if not arena_doc:
            failures.append("router metrics carried no shared-trajectory arena document")
        elif arena_doc.get("published_chunks", 0) < 1:
            failures.append(
                f"fleet arena published no trajectory chunks: {arena_doc}"
            )
        shard_rows = metrics["shards"]
        if not all(row["forwarded"] > 0 for row in shard_rows):
            failures.append(
                f"shard spread degenerate: {[row['forwarded'] for row in shard_rows]}"
            )
        if metrics["cluster"]["worker_restarts"]:
            failures.append(
                f"{metrics['cluster']['worker_restarts']} unexpected worker restart(s)"
            )

        merged = ResultStore(store_dir)
        if len(merged) != len(suite):
            failures.append(
                f"primary store holds {len(merged)} record(s) after drain, "
                f"expected {len(suite)}"
            )
        if (store_dir / "workers").exists():
            failures.append("worker store directories were not merged away on drain")

        totals = metrics["totals"]
        print(
            f"cluster smoke: {totals['requests']} routed = {totals['solves']} solved + "
            f"{totals['cache_hits']} cache + {totals['store_hits']} store + "
            f"{totals['coalesced']} coalesced; shard spread "
            f"{[row['forwarded'] for row in shard_rows]}; "
            f"{len(merged)} record(s) merged into the primary store"
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    leaked = shm_entries() - shm_before
    if leaked:
        failures.append(f"leaked /dev/shm segment(s) after drain: {sorted(leaked)}")

    if failures:
        for failure in failures:
            print(f"ERROR: {failure}", file=sys.stderr)
        return 1
    print(
        "cluster smoke: fingerprint parity OK on all three passes "
        "(json cold/warm + binary), arena live, /dev/shm clean after drain"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
