"""Benchmark E13 -- Blow-up of bounds and times as the attribute advantage vanishes.

Regenerates the near-symmetry sweeps: Theorem 2 bounds and measured times as
``v -> 1`` and ``phi -> 0``, and the Lemma 13 round bound as ``tau -> 1``.
"""

from __future__ import annotations


def test_e13(experiment_runner):
    """Run experiment E13 once and verify every reproduced claim."""
    report = experiment_runner("E13")
    assert report.all_passed
