"""Benchmark E01 -- Theorem 1: universal search time vs bound.

Regenerates the (d, r) sweep comparing simulated search times of Algorithm 4 against the 6(pi+1) log2(d^2/r) d^2/r bound.
"""

from __future__ import annotations


def test_e01(experiment_runner):
    """Run experiment E01 once and verify every reproduced claim."""
    report = experiment_runner("E01")
    assert report.all_passed
