"""Micro-benchmarks of the simulation engine itself.

These do not reproduce a paper artefact; they track the cost of the three
hot paths every experiment relies on (first-crossing detection, a full
search simulation, a full rendezvous simulation) so performance regressions
in the engine are visible in the same report as the experiment benches.
"""

from __future__ import annotations

import math

from repro.algorithms import UniversalSearch, WaitAndSearchRendezvous
from repro.core import theorem1_search_bound
from repro.geometry import Vec2
from repro.robots import RobotAttributes
from repro.simulation import (
    RendezvousInstance,
    SearchInstance,
    bound_multiple_horizon,
    find_first_crossing,
    fixed_horizon,
    simulate_rendezvous,
    simulate_search,
)


def test_first_crossing_detector(benchmark):
    """Lipschitz branch-and-bound on an oscillating gap with a late dip."""

    def gap(t: float) -> float:
        return 0.6 + 0.5 * math.sin(t) ** 2 if t < 40.0 else abs(t - 45.0)

    def run():
        return find_first_crossing(gap, 0.0, 60.0, 1.5, threshold=0.25, time_tolerance=1e-9)

    result = benchmark(run)
    assert result.found


def test_search_simulation_medium_difficulty(benchmark):
    """Algorithm 4 searching a d^2/r ~ 45 instance (a few thousand segments)."""
    instance = SearchInstance(target=Vec2.polar(1.5, 2.0), visibility=0.05)
    horizon = bound_multiple_horizon(
        theorem1_search_bound(instance.distance, instance.visibility), 1.5
    )

    def run():
        return simulate_search(UniversalSearch(), instance, horizon)

    outcome = benchmark(run)
    assert outcome.solved


def test_rendezvous_simulation_speed_difference(benchmark):
    """Two moving robots (Algorithm 4, different speeds) until first contact."""
    instance = RendezvousInstance(
        separation=Vec2(1.5, 0.5), visibility=0.3, attributes=RobotAttributes(speed=0.6)
    )

    def run():
        return simulate_rendezvous(UniversalSearch(), instance, fixed_horizon(4000.0))

    outcome = benchmark(run)
    assert outcome.solved


def test_rendezvous_simulation_asymmetric_clocks(benchmark):
    """Algorithm 7 with tau = 0.5 until first contact."""
    instance = RendezvousInstance(
        separation=Vec2(1.0, 0.4), visibility=0.45, attributes=RobotAttributes(time_unit=0.5)
    )

    def run():
        return simulate_rendezvous(WaitAndSearchRendezvous(), instance, fixed_horizon(8000.0))

    outcome = benchmark(run)
    assert outcome.solved
