"""Benchmark F01 -- Figure 1: three rounds of Algorithm 7.

Regenerates the inactive/active interval structure of the first three rounds.
"""

from __future__ import annotations


def test_f01(experiment_runner):
    """Run experiment F01 once and verify every reproduced claim."""
    report = experiment_runner("F01")
    assert report.all_passed
