"""CI smoke for distributed sweeps: partitioned batch plans over a 2-worker fleet.

Run with::

    PYTHONPATH=src python benchmarks/sweep_smoke.py [--suite NAME] [--workers N]

Boots an async worker fleet behind an :class:`~repro.cluster.AsyncShardRouter`
(ephemeral ports, fresh primary store) and ships the quick suite through
the partitioned ``sweep`` verb **twice** -- cold, then warm -- plus one
``fold`` pass, and fails (non-zero exit) unless:

* the ack reports the fan-out and per-worker partition sizes, and the
  partition sizes sum to the unique spec count;
* the cold pass streams every unique spec exactly once, in contiguous
  sequence order, and its order-independent ``fingerprint_digest`` is
  bit-identical to a local ``BatchRunner.run()`` over the same suite;
* the warm pass is answered entirely from the worker caches
  (``sources == {"cache": unique}``) with the identical digest;
* the ``fold`` pass carries no per-spec envelopes, its router-merged
  per-``(kind, backend)`` tables equal a local
  :func:`~repro.analysis.streaming.fold_envelopes` over the same results
  (counts exact, running stats within tolerance), and its ``fold_digest``
  matches the local blob-hash digest;
* after a drain the worker stores have merged into the primary store,
  which holds exactly one record per unique spec;
* shutdown is clean: zero leaked event-loop tasks, no stray
  ``/dev/shm`` segment left behind by the fleet.

No timings are asserted -- the throughput story lives in
``BENCH_sweep.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from pathlib import Path

from repro.analysis.streaming import fold_envelopes
from repro.api import BatchRunner, ResultStore
from repro.cluster import ClusterSupervisor, boot_router
from repro.experiments.manifest import fingerprint_digest, fold_digest
from repro.service import ServiceClient
from repro.workloads import spec_suite


def shm_entries() -> set:
    """Names currently in /dev/shm (empty off Linux)."""
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


def run_sweep(client: ServiceClient, specs, backend: str, mode: str):
    """One sweep pass: (ack, completion records, fold doc, summary)."""
    stream = client.sweep(specs, backend=backend, mode=mode)
    records = []
    fold_doc = None
    for record in stream:
        if record.get("op") == "partial":
            fold_doc = record.get("fold")
            continue
        records.append(record)
    assert stream.summary is not None  # iterator stops only on the summary
    return stream.ack, records, fold_doc, stream.summary


def fold_tables_equal(merged: dict, local: dict, tolerance: float = 1e-6) -> bool:
    """Counts exact, running stats within a relative tolerance.

    The router merges per-shard partials in a different association
    order than a single stream pushes, so the Chan-merged moments are
    not bit-identical -- but the counts are, and the means/extrema agree
    to within float noise.
    """
    if merged.get("total") != local.get("total"):
        return False
    merged_groups = {(g["kind"], g["backend"]): g for g in merged.get("groups", [])}
    local_groups = {(g["kind"], g["backend"]): g for g in local.get("groups", [])}
    if set(merged_groups) != set(local_groups):
        return False
    for key, mine in merged_groups.items():
        other = local_groups[key]
        for field in ("count", "solved", "unsolved", "bound_only", "infeasible"):
            if mine[field] != other[field]:
                return False
        for stat in ("measured_time", "bound_ratio"):
            left, right = mine[stat], other[stat]
            if left["count"] != right["count"]:
                return False
            for field in ("mean", "min", "max"):
                a, b = left.get(field), right.get(field)
                if a is None or b is None:
                    if a != b:
                        return False
                elif abs(a - b) > tolerance * max(1.0, abs(a), abs(b)):
                    return False
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="search-sweep", help="workload suite to sweep")
    parser.add_argument("--workers", type=int, default=2, help="shard worker processes")
    parser.add_argument("--backend", default="auto", help="cluster default backend")
    namespace = parser.parse_args()

    suite = spec_suite(namespace.suite)
    # The reference answers, computed in-process through the facade.
    expected_results, _ = BatchRunner(backend=namespace.backend).run(suite)
    expected_digest = fingerprint_digest(expected_results)
    expected_fold_digest = fold_digest(expected_results)
    expected_fold = fold_envelopes(
        result.to_dict() for result in expected_results
    ).to_wire()
    expected_hashes = {result.provenance.spec_hash for result in expected_results}

    failures: list[str] = []
    shm_before = shm_entries()
    store_dir = Path(tempfile.mkdtemp(prefix="repro-sweep-smoke-"))
    supervisor = ClusterSupervisor(
        workers=namespace.workers,
        backend=namespace.backend,
        store=store_dir,
        async_workers=True,
    )
    try:
        router = boot_router(supervisor, use_async=True, backend=namespace.backend)
        try:
            router.serve_background()
            print(
                f"sweep smoke: async router on {router.address}, "
                f"{namespace.workers} worker(s) "
                f"({', '.join(handle.address or '?' for handle in supervisor.handles)}), "
                f"{len(suite)} specs x 2 passes + fold"
            )
            with ServiceClient(router.host, router.port) as client:
                ack, cold_records, _, cold = run_sweep(
                    client, suite, namespace.backend, "stream"
                )
                _, warm_records, _, warm = run_sweep(
                    client, suite, namespace.backend, "stream"
                )
                _, fold_records, fold_doc, fold_summary = run_sweep(
                    client, suite, namespace.backend, "fold"
                )
        finally:
            router.stop()

        # The ack must say how the suite fanned out, honestly.
        partitions = ack.get("partitions") or []
        if ack.get("fanout") != len(partitions) or not partitions:
            failures.append(f"ack fan-out dishonest or missing: {ack}")
        elif sum(row["specs"] for row in partitions) != cold["unique"]:
            failures.append(
                f"ack partition sizes {[row['specs'] for row in partitions]} "
                f"do not sum to {cold['unique']} unique specs"
            )

        # Cold pass: every unique spec once, in sequence, digest parity.
        if [record["seq"] for record in cold_records] != list(range(len(cold_records))):
            failures.append("cold pass streamed out-of-sequence records")
        bad = [record for record in cold_records if not record.get("ok")]
        if bad:
            failures.append(
                f"{len(bad)} cold record(s) failed, first: {bad[0].get('error')}"
            )
        streamed_hashes = {record["key"]["spec_hash"] for record in cold_records}
        if streamed_hashes != expected_hashes:
            failures.append(
                f"completion set mismatch: streamed {len(streamed_hashes)} hashes, "
                f"batch run produced {len(expected_hashes)}"
            )
        if cold["fingerprint_digest"] != expected_digest:
            failures.append(
                f"cold digest {cold['fingerprint_digest'][:16]}... != "
                f"batch digest {expected_digest[:16]}..."
            )
        if cold["errors"]:
            failures.append(f"cold pass recorded {cold['errors']} error(s)")

        # Warm pass: all worker-cache hits, identical digest.
        if warm["fingerprint_digest"] != expected_digest:
            failures.append("warm digest drifted from the cold digest")
        if warm["sources"] != {"cache": cold["unique"]}:
            failures.append(
                f"warm pass was not all cache hits: sources={warm['sources']}"
            )
        if len(warm_records) != len(cold_records):
            failures.append(
                f"warm pass streamed {len(warm_records)} records, cold {len(cold_records)}"
            )

        # Fold pass: tables only, equal to the local fold, digest parity.
        if fold_records:
            failures.append(
                f"fold pass leaked {len(fold_records)} per-spec record(s)"
            )
        if fold_doc is None:
            failures.append("fold pass carried no merged aggregate tables")
        elif not fold_tables_equal(fold_doc, expected_fold):
            failures.append(
                f"router-merged fold tables drifted from the local fold: "
                f"{fold_doc} != {expected_fold}"
            )
        if fold_summary.get("fold_digest") != expected_fold_digest:
            failures.append(
                f"fold digest {str(fold_summary.get('fold_digest'))[:16]}... != "
                f"local {expected_fold_digest[:16]}..."
            )

        # After the drain: exactly one stored record per unique spec.
        merged = ResultStore(store_dir)
        if len(merged) != len(expected_hashes):
            failures.append(
                f"primary store holds {len(merged)} record(s) after drain, "
                f"expected {len(expected_hashes)}"
            )
        if (store_dir / "workers").exists():
            failures.append("worker store directories were not merged away on drain")

        if router.leaked_tasks:
            failures.append(f"leaked event-loop task(s): {router.leaked_tasks}")

        print(
            f"sweep smoke: cold {cold['records']} records in "
            f"{cold['wall_time_ms']:.0f} ms over {ack.get('fanout')} partition(s) "
            f"{[row['specs'] for row in partitions]} (sources {cold['sources']}), "
            f"warm {warm['records']} in {warm['wall_time_ms']:.0f} ms "
            f"(sources {warm['sources']}), fold total {fold_doc.get('total') if fold_doc else '?'}"
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    leaked = shm_entries() - shm_before
    if leaked:
        failures.append(f"leaked /dev/shm segment(s) after drain: {sorted(leaked)}")

    if failures:
        for failure in failures:
            print(f"ERROR: {failure}", file=sys.stderr)
        return 1
    print(
        "sweep smoke: digest parity with the batch runner cold and warm, "
        "warm pass all cache hits, fold tables equal the local fold, "
        "store merged exactly once, shutdown clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
