"""Shared helpers for the benchmark harness.

Every benchmark wraps one experiment of the evaluation harness: it runs the
experiment exactly once under ``pytest-benchmark`` (the experiments are
deterministic, so repeated rounds would only re-measure the same work),
asserts that every claim check extracted from the paper passes, and attaches
the key reproduced numbers to ``benchmark.extra_info`` so they appear in the
benchmark report next to the timing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import ExperimentReport
from repro.experiments import run_experiment

#: Where benchmark artefacts (markdown tables, CSVs, SVG figures) are written.
ARTIFACT_DIRECTORY = Path(__file__).resolve().parent / "results"


@pytest.fixture
def experiment_runner(benchmark):
    """Run one experiment under the benchmark timer and verify its checks."""

    def run(experiment_id: str, quick: bool = False) -> ExperimentReport:
        report = benchmark.pedantic(
            run_experiment,
            kwargs={
                "experiment_id": experiment_id,
                "output_dir": ARTIFACT_DIRECTORY,
                "quick": quick,
            },
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["experiment"] = experiment_id
        benchmark.extra_info["checks"] = len(report.checks)
        benchmark.extra_info["checks_passed"] = sum(check.passed for check in report.checks)
        benchmark.extra_info["notes"] = report.notes[:2]
        report.require_success()
        return report

    return run
