"""Benchmark F02 -- Figure 2: structure of one active phase.

Regenerates the SearchAll(n) / SearchAllRev(n) breakdown of an active phase.
"""

from __future__ import annotations


def test_f02(experiment_runner):
    """Run experiment F02 once and verify every reproduced claim."""
    report = experiment_runner("F02")
    assert report.all_passed
