"""Benchmark E05 -- Theorem 2 / Lemma 7 (chi = -1): mirrored rendezvous.

Regenerates the mirrored-robot sweep comparing rendezvous times against the (1-v)-scaled Theorem 2 bound.
"""

from __future__ import annotations


def test_e05(experiment_runner):
    """Run experiment E05 once and verify every reproduced claim."""
    report = experiment_runner("E05")
    assert report.all_passed
