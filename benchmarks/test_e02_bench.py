"""Benchmark E02 -- Lemma 2: closed-form durations of Algorithms 1-4.

Regenerates the exact duration identities for SearchCircle, SearchAnnulus, Search(k) and the Algorithm 4 prefix.
"""

from __future__ import annotations


def test_e02(experiment_runner):
    """Run experiment E02 once and verify every reproduced claim."""
    report = experiment_runner("E02")
    assert report.all_passed
