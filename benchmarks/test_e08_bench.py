"""Benchmark E08 -- Lemmas 9-10 and Figure 3: phase overlaps.

Regenerates the overlap windows between the two robots' schedules and compares them with the closed forms.
"""

from __future__ import annotations


def test_e08(experiment_runner):
    """Run experiment E08 once and verify every reproduced claim."""
    report = experiment_runner("E08")
    assert report.all_passed
