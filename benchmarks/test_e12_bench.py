"""Benchmark E12 -- Extension: pairwise and connectivity gathering of small swarms.

Regenerates the gathering tables: pairwise meetings of a heterogeneous swarm
against their two-robot bounds, and the twins swarm showing the difference
between pairwise and connectivity gathering.
"""

from __future__ import annotations


def test_e12(experiment_runner):
    """Run experiment E12 once and verify every reproduced claim."""
    report = experiment_runner("E12")
    assert report.all_passed
