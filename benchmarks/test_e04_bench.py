"""Benchmark E04 -- Theorem 2 (chi = +1): symmetric-clock rendezvous.

Regenerates the speed/orientation sweep comparing rendezvous times against the mu-scaled Theorem 2 bound.
"""

from __future__ import annotations


def test_e04(experiment_runner):
    """Run experiment E04 once and verify every reproduced claim."""
    report = experiment_runner("E04")
    assert report.all_passed
