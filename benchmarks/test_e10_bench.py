"""Benchmark E10 -- Baselines: the price of not knowing d and r.

Regenerates the comparison of Algorithm 4 against clairvoyant and naive-universal baselines.
"""

from __future__ import annotations


def test_e10(experiment_runner):
    """Run experiment E10 once and verify every reproduced claim."""
    report = experiment_runner("E10")
    assert report.all_passed
