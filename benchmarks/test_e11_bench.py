"""Benchmark E11 -- Ablation: the balanced per-annulus granularity.

Regenerates the granularity ablation showing why rho_{j,k} = 2^(-3k+2j-1) is the right choice.
"""

from __future__ import annotations


def test_e11(experiment_runner):
    """Run experiment E11 once and verify every reproduced claim."""
    report = experiment_runner("E11")
    assert report.all_passed
