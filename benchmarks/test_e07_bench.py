"""Benchmark E07 -- Lemma 8 and Figures 1-2: the Algorithm 7 schedule.

Regenerates S(n), I(n), A(n) from the actual trajectory of Algorithm 7 and the schedule diagrams.
"""

from __future__ import annotations


def test_e07(experiment_runner):
    """Run experiment E07 once and verify every reproduced claim."""
    report = experiment_runner("E07")
    assert report.all_passed
