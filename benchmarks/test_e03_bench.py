"""Benchmark E03 -- Lemmas 1 and 3: discovery rounds.

Regenerates the discovery-round table: actual vs guaranteed round and the difficulty lower bound.
"""

from __future__ import annotations


def test_e03(experiment_runner):
    """Run experiment E03 once and verify every reproduced claim."""
    report = experiment_runner("E03")
    assert report.all_passed
