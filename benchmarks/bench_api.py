"""Throughput benchmark for the ``repro.api`` batch facade and the kernel.

Run with::

    PYTHONPATH=src python benchmarks/bench_api.py [--processes N] [--quick]
        [--output PATH] [--kernel-output PATH]

Measures batch solve throughput (specs/second) across the facade's levers
-- backend fidelity, the vectorized kernel, worker pool, result cache --
on the deterministic workload suites, and writes two snapshots next to
the other benchmark artefacts so future PRs can track the trajectory:

* ``BENCH_api.json``    -- the facade scenarios (analytic / simulation /
  vectorized, serial / warm / pooled) on the mixed workload;
* ``BENCH_kernel.json`` -- the kernel-focused snapshot: scalar-engine
  baseline vs the vectorized backend on the search-sweep suite, the
  speedup ratio, a per-spec event-time parity check against
  ``TIME_TOLERANCE``, and the large sweep that is only tractable through
  the kernel;
* ``BENCH_store.json``  -- the persistent-store snapshot: a cold run of
  the large search sweep recorded into a fresh ``ResultStore``, then a
  warm replay from a brand-new process-state (fresh runner, fresh store
  handle) that must solve **zero** specs and reproduce every result
  fingerprint bit-identically;
* ``BENCH_serve.json``  -- the serving-tier snapshot: a duplicate-heavy
  workload fired by concurrent socket clients against ``repro serve``
  (cold store, then a warm restart), reporting requests/s and p50/p99
  request latency next to the no-service baseline (one facade
  ``solve()`` per request), plus the daemon's own ``metrics`` document
  so LRU/store hits and in-flight coalescing are observable.  The warm
  store is measured through both wire formats (JSON lines and the
  negotiated binary frames, with bytes-on-wire), and the
  single-connection warm-hit latency of each format gates the binary
  hot path under 0.5 ms p50;
* ``BENCH_cluster.json`` -- the sharded-serving snapshot: the same
  duplicate-heavy workload against ``repro serve --workers N`` for
  N in {1, 2, 4} (plus the single-process daemon as the no-router
  baseline), reporting requests/s, p50/p99 latency, the shard spread,
  a fingerprint-parity assertion against direct ``solve()`` for every
  fleet size, and the shared-arena proof that each unique trajectory
  was compiled exactly once fleet-wide;
* ``BENCH_async.json``  -- the asyncio-transport snapshot: warm-hit
  round trips over {8, 64, 256, 512} persistent connections against
  the threaded daemon and the asyncio daemon, the measured
  thread-per-connection cost of each, the thread-budget connection
  ceiling derived from it (with the raw unmodeled sustained counts
  right next to it), and the ``subscribe`` streamed sweep of the large
  search suite -- cold digest bit-identical to ``BatchRunner.run()``,
  warm pass all cache hits, zero leaked event-loop tasks;
* ``BENCH_montecarlo.json`` -- the fault-ensemble snapshot: the
  ``montecarlo`` backend over the ``fault-crash-sweep`` and
  ``fault-byzantine`` suites, reporting trials/s serially and through
  the worker pool, with a bit-identical-envelope assertion across
  independent serial and pooled runs (the seeded determinism
  contract);
* ``BENCH_sweep.json`` -- the distributed-sweep snapshot: the large
  search sweep shipped to a 2-worker async cluster as one partitioned
  ``sweep`` (each worker runs its partition as a single local batch
  plan) vs the per-spec-routed ``subscribe`` baseline on an identical
  fresh fleet, the warm replay, the ``fold`` pass (merged aggregate
  tables, gated >=10x fewer bytes on the wire than the streamed
  envelopes), and a mid-sweep worker kill -- every digest bit-identical
  to a local ``BatchRunner.run()``, the fleet batch tier engaged, and
  the killed worker respawned.

``solved`` counts only specs whose simulated event actually fired;
``bound_only`` counts analytic answers (``solved is None`` -- no
simulation was performed, which is *not* the same as unsolved) and
``unsolved`` counts simulations that hit their horizon.

``--quick`` is the CI smoke mode: small workloads, no pooled scenario,
and a non-zero exit code when the kernel's event times drift from the
scalar engine beyond ``TIME_TOLERANCE``, when the warm store replay
misses the store / drifts from the cold fingerprints, or when a served
response drifts from the direct facade answer (no timings are
asserted).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro._version import __version__
from repro.api import BatchRunner, ResultStore
from repro.constants import TIME_TOLERANCE
from repro.simulation.kernel import clear_compiled_cache
from repro.workloads import spec_suite

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_api.json"
DEFAULT_KERNEL_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_kernel.json"
DEFAULT_STORE_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_store.json"
DEFAULT_SERVE_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_serve.json"
DEFAULT_CLUSTER_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_cluster.json"
DEFAULT_MONTECARLO_OUTPUT = (
    Path(__file__).resolve().parent / "results" / "BENCH_montecarlo.json"
)
DEFAULT_ASYNC_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_async.json"
DEFAULT_SWEEP_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_sweep.json"

KERNEL_SUITE = "search-sweep"
KERNEL_LARGE_SUITE = "search-sweep-large"
STORE_SUITE = KERNEL_LARGE_SUITE
SERVE_SUITE = KERNEL_SUITE
SERVE_DUPLICATION = 4
SERVE_CLIENTS = 8
MONTECARLO_SUITES = ("fault-crash-sweep", "fault-byzantine")
ASYNC_CONNECTION_STEPS = (8, 64, 256, 512)
ASYNC_THREAD_BUDGET = 96
ASYNC_SWEEP_SUITE = KERNEL_LARGE_SUITE
SWEEP_SUITE = KERNEL_LARGE_SUITE
SWEEP_WORKERS = 2


def _workload(quick: bool) -> list:
    """The facade workload: every small deterministic suite, concatenated."""
    names = ("search-sweep",) if quick else ("search-sweep", "symmetric-clock", "asymmetric-clock")
    specs = []
    for name in names:
        specs.extend(spec_suite(name))
    return specs


def _measure(runner: BatchRunner, specs: list) -> tuple[dict, list]:
    start = time.perf_counter()
    results, stats = runner.run(specs)
    wall = time.perf_counter() - start
    record = {
        "specs": stats.total,
        "unique": stats.unique,
        "cache_hits": stats.cache_hits,
        "processes": stats.processes,
        "solved_in_batch": stats.solved_in_batch,
        "solved_from_store": stats.solved_from_store,
        "wall_time_s": round(wall, 4),
        "specs_per_second": round(stats.total / wall, 2) if wall > 0 else None,
        # A backend that performed no simulation reports solved=None; that
        # is a bound-only answer, not an unsolved run.
        "solved": sum(1 for result in results if result.solved is True),
        "unsolved": sum(1 for result in results if result.solved is False),
        "bound_only": sum(1 for result in results if result.solved is None),
    }
    return record, results


def run_benchmark(processes: int, quick: bool) -> dict:
    specs = _workload(quick)

    analytic = BatchRunner(backend="analytic")
    simulation = BatchRunner(backend="simulation")
    vectorized = BatchRunner(backend="vectorized")

    scenarios = {}
    scenarios["analytic_serial"], _ = _measure(analytic, specs)
    scenarios["simulation_serial_cold"], _ = _measure(simulation, specs)
    scenarios["simulation_serial_warm"], _ = _measure(simulation, specs)
    clear_compiled_cache()
    scenarios["vectorized_serial_cold"], _ = _measure(vectorized, specs)
    scenarios["vectorized_serial_warm"], _ = _measure(vectorized, specs)
    if not quick:
        pooled = BatchRunner(backend="simulation", processes=processes)
        scenarios["simulation_pooled_cold"], _ = _measure(pooled, specs)
    return {
        "benchmark": "repro.api batch solve throughput",
        "library_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_at_unix": int(time.time()),
        "workload": {
            "suites": ["search-sweep"]
            if quick
            else ["search-sweep", "symmetric-clock", "asymmetric-clock"],
            "total_specs": len(specs),
        },
        "scenarios": scenarios,
    }


def _measure_best_of(make_runner, specs: list, repeats: int, prepare=None) -> tuple[dict, list]:
    """Best-of-``repeats`` measurement (fresh runner each repeat).

    Wall-clock minima are the standard way to strip scheduler noise from
    short benchmark runs; the solved counts and results come from the
    fastest repeat (every repeat computes identical results -- the
    backends are deterministic).
    """
    best_record: dict | None = None
    best_results: list = []
    for _ in range(max(repeats, 1)):
        if prepare is not None:
            prepare()
        record, results = _measure(make_runner(), specs)
        if best_record is None or record["wall_time_s"] < best_record["wall_time_s"]:
            best_record, best_results = record, results
    best_record["repeats"] = max(repeats, 1)
    return best_record, best_results


def run_kernel_benchmark(quick: bool) -> dict:
    """The kernel snapshot: baseline vs vectorized plus the parity check."""
    specs = spec_suite(KERNEL_SUITE)
    repeats = 1 if quick else 3

    simulation_record, simulation_results = _measure_best_of(
        lambda: BatchRunner(backend="simulation"), specs, repeats
    )
    # Cold = compiled-trajectory cache emptied before every repeat.
    vectorized_record, vectorized_results = _measure_best_of(
        lambda: BatchRunner(backend="vectorized"), specs, repeats, prepare=clear_compiled_cache
    )
    # Same suite with fresh runners: the result cache starts cold but the
    # compiled trajectory is reused -- the steady-state sweep rate.
    warm_record, _ = _measure_best_of(lambda: BatchRunner(backend="vectorized"), specs, repeats)

    deltas = []
    for scalar, kernel in zip(simulation_results, vectorized_results):
        if scalar.solved and kernel.solved:
            deltas.append(abs(scalar.measured_time - kernel.measured_time))
    agreement = (
        len(deltas) == len(specs)
        and all(result.solved for result in simulation_results)
        and all(result.solved for result in vectorized_results)
    )
    max_delta = max(deltas) if deltas else None
    parity = {
        "specs": len(specs),
        "compared": len(deltas),
        "max_abs_time_delta": max_delta,
        "tolerance": TIME_TOLERANCE,
        "within_tolerance": agreement and max_delta is not None and max_delta <= TIME_TOLERANCE,
    }

    scenarios = {
        "simulation_serial_cold": simulation_record,
        "vectorized_cold": vectorized_record,
        "vectorized_warm_compiled": warm_record,
    }
    if not quick:
        large = spec_suite(KERNEL_LARGE_SUITE)
        scenarios["vectorized_large"], large_results = _measure(
            BatchRunner(backend="vectorized"), large
        )
        scenarios["vectorized_large"]["suite"] = KERNEL_LARGE_SUITE
        scenarios["vectorized_large"]["all_solved"] = all(r.solved for r in large_results)

    baseline = simulation_record["specs_per_second"] or 0.0
    vector_rate = vectorized_record["specs_per_second"] or 0.0
    return {
        "benchmark": "repro vectorized kernel throughput",
        "library_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_at_unix": int(time.time()),
        "suite": KERNEL_SUITE,
        "scenarios": scenarios,
        "speedup_vectorized_vs_simulation": round(vector_rate / baseline, 2) if baseline else None,
        "parity": parity,
    }


def run_store_benchmark(quick: bool) -> dict:
    """The persistent-store snapshot: cold suite replay vs 100% warm hits.

    The cold pass records every envelope into a fresh store; the warm
    pass rebuilds the whole stack from disk (fresh :class:`BatchRunner`,
    fresh :class:`ResultStore` handle -- exactly what a new process or a
    CI machine with a shipped cache would see) and must answer all specs
    from the store with bit-identical fingerprints.
    """
    suite_name = KERNEL_SUITE if quick else STORE_SUITE
    specs = spec_suite(suite_name)
    suite_digest = hashlib.sha256(
        "\n".join(spec.canonical_hash() for spec in specs).encode("utf-8")
    ).hexdigest()

    store_dir = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        clear_compiled_cache()
        cold_runner = BatchRunner(backend="vectorized", store=ResultStore(store_dir))
        cold_record, cold_results = _measure(cold_runner, specs)

        # A brand-new runner *and* store handle: everything must come
        # back from the segments on disk, not from any in-memory state.
        warm_store = ResultStore(store_dir)
        warm_runner = BatchRunner(backend="vectorized", store=warm_store)
        warm_record, warm_results = _measure(warm_runner, specs)

        fingerprints_identical = [r.fingerprint() for r in cold_results] == [
            r.fingerprint() for r in warm_results
        ]
        store_stats = warm_store.stats()
        disk = {
            "segments": store_stats.segments,
            "records": store_stats.records,
            "unique": store_stats.unique,
            "total_bytes": store_stats.total_bytes,
        }
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    cold_rate = cold_record["specs_per_second"] or 0.0
    warm_rate = warm_record["specs_per_second"] or 0.0
    return {
        "benchmark": "repro persistent result store replay",
        "library_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_at_unix": int(time.time()),
        "suite": suite_name,
        "suite_spec_hash_digest": suite_digest,
        "scenarios": {
            "store_cold": cold_record,
            "store_warm_replay": warm_record,
        },
        "store_on_disk": disk,
        "speedup_warm_vs_cold": round(warm_rate / cold_rate, 2) if cold_rate else None,
        "warm_replay": {
            "specs": len(specs),
            "store_hits": warm_record["solved_from_store"],
            "solved_fresh": len(specs)
            - warm_record["cache_hits"]
            - warm_record["solved_from_store"],
            "all_from_store": warm_record["solved_from_store"] == len(specs),
            "fingerprints_identical_to_cold": fingerprints_identical,
        },
    }


def _percentiles(latencies: list[float]) -> dict:
    ordered = sorted(latencies)

    def percentile(fraction: float) -> float:
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return round(ordered[index] * 1e3, 3)

    return {
        "p50": percentile(0.50),
        "p99": percentile(0.99),
        "max": round(ordered[-1] * 1e3, 3) if ordered else None,
    }


def _fire_workload(
    host: str, port: int, specs: list, binary: bool = False
) -> tuple[dict, dict, list]:
    """Stream one duplicate-heavy workload at a daemon or router address.

    ``SERVE_CLIENTS`` concurrent connections, one request in flight per
    connection (each latency is a true round trip); ``binary`` switches
    every client to the negotiated binary frames.  Returns the scenario
    record (including bytes-on-wire), the first-seen envelope per unique
    spec hash and the failure list.
    """
    import threading

    from repro.service import ServiceClient

    latencies: list[float] = []
    latency_lock = threading.Lock()
    first_seen: dict[str, dict] = {}
    failures: list[str] = []
    wire = {"sent": 0, "received": 0}

    def client(slot: int) -> None:
        indices = range(slot, len(specs), SERVE_CLIENTS)
        if not indices:
            return
        with ServiceClient(host, port, binary=binary, timeout=120) as connection:
            for i in indices:
                request = {"op": "solve", "spec": specs[i].to_dict(), "id": i}
                sent = time.perf_counter()
                response = connection.request(request)
                elapsed = time.perf_counter() - sent
                with latency_lock:
                    latencies.append(elapsed)
                    if not response.get("ok"):
                        failures.append(str(response.get("error")))
                    else:
                        spec_hash = response["result"]["provenance"]["spec_hash"]
                        first_seen.setdefault(spec_hash, response["result"])
            with latency_lock:
                wire["sent"] += connection.bytes_sent
                wire["received"] += connection.bytes_received

    start = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(slot,)) for slot in range(SERVE_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    record = {
        "requests": len(specs),
        "unique": len(first_seen),
        "clients": SERVE_CLIENTS,
        "wire_format": "binary" if binary else "json",
        "failures": len(failures),
        "wall_time_s": round(wall, 4),
        "requests_per_second": round(len(specs) / wall, 2) if wall > 0 else None,
        "latency_ms": _percentiles(latencies),
        "bytes_sent": wire["sent"],
        "bytes_received": wire["received"],
        "bytes_per_request": round((wire["sent"] + wire["received"]) / len(specs), 1)
        if specs
        else None,
    }
    return record, first_seen, failures


def _hot_latency(host: str, port: int, spec, binary: bool, rounds: int) -> dict:
    """Warm-hit latency of one persistent connection requesting one spec.

    The first two requests populate the service LRU and (on the binary
    path) the daemon's hot response cache; the measured rounds are the
    steady-state repeat-request story the wire format is judged on.
    """
    from repro.service import ServiceClient

    request = {"op": "solve", "spec": spec.to_dict()}
    latencies: list[float] = []
    with ServiceClient(host, port, binary=binary, timeout=120) as connection:
        for _ in range(2):
            warmup = connection.request(request)
            assert warmup.get("ok"), warmup
        for _ in range(rounds):
            sent = time.perf_counter()
            response = connection.request(request)
            latencies.append(time.perf_counter() - sent)
        served_by = response.get("served_by")
        per_request = (connection.bytes_sent + connection.bytes_received) / (rounds + 2)
    return {
        "rounds": rounds,
        "wire_format": "binary" if binary else "json",
        "served_by": served_by,
        "latency_ms": _percentiles(latencies),
        "mean_latency_ms": round(sum(latencies) / len(latencies) * 1e3, 3),
        "bytes_per_request": round(per_request, 1),
    }


def _serve_round(
    specs: list, store_dir: Path, backend: str, binary: bool = False
) -> tuple[dict, dict, dict]:
    """Fire the duplicate-heavy workload at one fresh daemon.

    Returns the scenario record, the daemon's own metrics document and a
    mapping of first-seen response fingerprints per unique spec hash.
    """
    import json as json_module

    from repro.service import ReproServer, request_lines

    with ReproServer(backend=backend, store=store_dir, max_inflight=SERVE_CLIENTS) as server:
        server.serve_background()
        record, first_seen, _ = _fire_workload(server.host, server.port, specs, binary=binary)
        (metrics_line,) = request_lines(
            server.host, server.port, [json_module.dumps({"op": "metrics"})]
        )
        metrics = json_module.loads(metrics_line)["metrics"]
    return record, metrics, first_seen


def run_serve_benchmark(quick: bool) -> dict:
    """The serving-tier snapshot: concurrent daemon vs per-request facade.

    The workload is duplicate-heavy (every suite spec requested
    ``SERVE_DUPLICATION`` times) -- exactly where a serving tier must
    beat the no-service baseline of one facade ``solve()`` per request,
    because the LRU, the store and in-flight coalescing answer the
    duplicates without solving.

    Two wire formats are measured on the same warm store -- JSON lines
    and the negotiated binary frames -- plus the single-connection
    warm-hit latency of each (the daemon's hot response cache is the
    binary path's reason to exist).
    """
    import os as os_module

    from repro.api import SolveResult, solve
    from repro.service import ReproServer

    backend = "auto"
    suite = spec_suite(SERVE_SUITE)
    if quick:
        suite = suite[: max(8, len(suite) // 4)]
    # Duplicates sit *adjacent* in the workload, so round-robin clients
    # request the same spec at the same moment -- the in-flight
    # coalescing case, not just the warm-cache one.
    workload = [spec for spec in suite for _ in range(SERVE_DUPLICATION)]

    # Baseline: the pre-daemon serving story, one independent facade
    # call per request (no shared runner, no cache between requests).
    clear_compiled_cache()
    baseline_start = time.perf_counter()
    baseline_results = [solve(spec, backend=backend) for spec in workload]
    baseline_wall = time.perf_counter() - baseline_start
    facade_record = {
        "requests": len(workload),
        "unique": len(suite),
        "wall_time_s": round(baseline_wall, 4),
        "requests_per_second": round(len(workload) / baseline_wall, 2)
        if baseline_wall > 0
        else None,
    }
    expected = {
        result.provenance.spec_hash: result.fingerprint() for result in baseline_results
    }

    store_dir = Path(tempfile.mkdtemp(prefix="repro-bench-serve-"))
    try:
        clear_compiled_cache()
        cold_record, cold_metrics, cold_seen = _serve_round(workload, store_dir, backend)
        # Warm restart: a brand-new daemon over the published store --
        # the redeploy story, everything answered from disk.
        warm_record, warm_metrics, _ = _serve_round(workload, store_dir, backend)
        # The same warm store through binary frames: identical answers,
        # fewer bytes, and no JSON on the hot path.
        binary_record, binary_metrics, binary_seen = _serve_round(
            workload, store_dir, backend, binary=True
        )

        # Warm-hit latency tiers on one fresh daemon: a persistent
        # connection re-requesting one spec, JSON vs binary.
        hot_rounds = 50 if quick else 300
        with ReproServer(backend=backend, max_inflight=SERVE_CLIENTS) as server:
            server.serve_background()
            hot_json = _hot_latency(server.host, server.port, suite[0], False, hot_rounds)
            hot_binary = _hot_latency(server.host, server.port, suite[0], True, hot_rounds)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    def parity_of(first_seen: dict) -> bool:
        return set(first_seen) == set(expected) and all(
            SolveResult.from_dict(envelope).fingerprint() == expected[spec_hash]
            for spec_hash, envelope in first_seen.items()
        )

    parity = parity_of(cold_seen) and parity_of(binary_seen)

    cold_rate = cold_record["requests_per_second"] or 0.0
    warm_rate = warm_record["requests_per_second"] or 0.0
    binary_rate = binary_record["requests_per_second"] or 0.0
    facade_rate = facade_record["requests_per_second"] or 0.0
    cold_totals = cold_metrics["totals"]
    json_wire = warm_record["bytes_sent"] + warm_record["bytes_received"]
    binary_wire = binary_record["bytes_sent"] + binary_record["bytes_received"]
    return {
        "benchmark": "repro serve concurrent throughput",
        "library_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os_module.cpu_count(),
        "generated_at_unix": int(time.time()),
        "suite": SERVE_SUITE,
        "duplication": SERVE_DUPLICATION,
        "scenarios": {
            "facade_serial_per_request": facade_record,
            "serve_cold_store": cold_record,
            "serve_warm_store": warm_record,
            "serve_warm_store_binary": binary_record,
            "serve_hot_single_connection_json": hot_json,
            "serve_hot_single_connection_binary": hot_binary,
        },
        "serve_metrics_cold": cold_metrics,
        "serve_metrics_warm": warm_metrics,
        "serve_metrics_binary": binary_metrics,
        "speedup_serve_cold_vs_facade": round(cold_rate / facade_rate, 2)
        if facade_rate
        else None,
        "speedup_serve_warm_vs_facade": round(warm_rate / facade_rate, 2)
        if facade_rate
        else None,
        "speedup_binary_vs_json_warm": round(binary_rate / warm_rate, 2)
        if warm_rate
        else None,
        "wire_bytes_binary_vs_json": round(binary_wire / json_wire, 3)
        if json_wire
        else None,
        "warm_hit_p50_binary_ms": hot_binary["latency_ms"]["p50"],
        "warm_hit_p50_json_ms": hot_json["latency_ms"]["p50"],
        "coalescing_observed": cold_totals["coalesced"] > 0,
        "hits_observed": (
            cold_totals["cache_hits"] + cold_totals["store_hits"] + cold_totals["coalesced"]
        )
        > 0,
        "served_fingerprints_identical_to_facade": parity,
        "serve_failures": cold_record["failures"]
        + warm_record["failures"]
        + binary_record["failures"],
    }


def _cluster_round(specs: list, workers: int, store_dir: Path, backend: str) -> tuple[dict, dict, dict]:
    """Fire the duplicate-heavy workload at a fresh N-worker cluster.

    Returns the scenario record (with the shard spread folded in), the
    router's metrics document and the first-seen envelopes.
    """
    import json as json_module

    from repro.cluster import ClusterSupervisor, boot_router
    from repro.service import request_lines

    supervisor = ClusterSupervisor(workers=workers, backend=backend, store=store_dir)
    spawn_start = time.perf_counter()
    router = boot_router(supervisor, backend=backend)
    spawn_wall = time.perf_counter() - spawn_start
    with router:
        router.serve_background()
        record, first_seen, _ = _fire_workload(router.host, router.port, specs)
        (metrics_line,) = request_lines(
            router.host, router.port, [json_module.dumps({"op": "metrics"})]
        )
        metrics = json_module.loads(metrics_line)["metrics"]
    record["workers"] = workers
    record["spawn_wall_time_s"] = round(spawn_wall, 4)
    record["router_coalesced"] = metrics["cluster"]["router_coalesced"]
    record["worker_restarts"] = metrics["cluster"]["worker_restarts"]
    record["shard_spread"] = [row["forwarded"] for row in metrics["shards"]]
    record["worker_links"] = "binary"  # router->worker frames negotiate up
    arena = metrics.get("arena")
    if arena is not None:
        record["arena"] = {
            "published_chunks": arena["published_chunks"],
            "unique_trajectories": arena["unique_trajectories"],
            "data_used": arena["data_used"],
        }
    kernel = [
        row["metrics"].get("kernel_cache")
        for row in metrics["shards"]
        if isinstance(row.get("metrics"), dict)
    ]
    if all(stats is not None for stats in kernel):
        record["worker_local_compiles"] = [stats["local_compiles"] for stats in kernel]
        record["worker_arena_hits"] = [stats["arena_hits"] for stats in kernel]
    return record, metrics, first_seen


def _cluster_compile_once_round(suite: list) -> dict:
    """Prove each unique trajectory compiles exactly once fleet-wide.

    A 2-worker vectorized cluster: the deepest spec goes through first
    on its own (its home worker compiles the whole shared prefix into
    the arena), then the full suite fans out over both shards.  If the
    arena works, the other worker adopts every chunk -- the sum of the
    workers' local compiles equals the chunks published in the arena.
    """
    import json as json_module

    from repro.cluster import ClusterSupervisor, boot_router
    from repro.service import ServiceClient, request_lines

    backend = "vectorized"
    ordered = sorted(suite, key=lambda spec: spec.distance, reverse=True)
    supervisor = ClusterSupervisor(workers=2, backend=backend)
    router = boot_router(supervisor, backend=backend)
    with router:
        router.serve_background()
        with ServiceClient(router.host, router.port, binary=True, timeout=120) as warmup:
            first = warmup.request({"op": "solve", "spec": ordered[0].to_dict()})
            assert first.get("ok"), first
        record, _, _ = _fire_workload(router.host, router.port, ordered, binary=True)
        (metrics_line,) = request_lines(
            router.host, router.port, [json_module.dumps({"op": "metrics"})]
        )
        metrics = json_module.loads(metrics_line)["metrics"]

    arena = metrics.get("arena") or {}
    kernel = [row["metrics"]["kernel_cache"] for row in metrics["shards"]]
    local_compiles = [stats["local_compiles"] for stats in kernel]
    published = arena.get("published_chunks", -1)
    return {
        "workers": 2,
        "backend": backend,
        "specs": len(ordered) + 1,
        "failures": record["failures"],
        "arena_active": bool(arena),
        "unique_trajectories": arena.get("unique_trajectories"),
        "published_chunks": published,
        "worker_local_compiles": local_compiles,
        "worker_arena_hits": [stats["arena_hits"] for stats in kernel],
        "workers_arena_attached": all(stats["arena_attached"] for stats in kernel),
        "compiled_once_fleetwide": bool(arena)
        and sum(local_compiles) == published
        and published > 0,
    }


def run_cluster_benchmark(quick: bool) -> dict:
    """The sharded-serving snapshot: one router over 1/2/4 worker processes.

    Same duplicate-heavy workload shape as the serve benchmark, fired at
    a cold-store cluster per fleet size, plus the single-process daemon
    as the no-router baseline.  The backend is ``simulation`` -- the
    measured-fidelity, CPU-bound path a cluster exists to scale -- so
    the scenario is solve-dominated rather than proxy-dominated; note
    ``cpu_count`` in the snapshot, because fleet scaling is bounded by
    the cores available to the worker processes.  Every unique envelope
    must be bit-identical to the direct facade ``solve()`` no matter
    which worker answered -- the fingerprint-parity assertion that
    makes the sharding safe.
    """
    import os as os_module

    from repro.api import SolveResult, solve

    backend = "simulation"
    suite = spec_suite(SERVE_SUITE)
    if quick:
        suite = suite[: max(8, len(suite) // 4)]
    workload = [spec for spec in suite for _ in range(SERVE_DUPLICATION)]
    worker_counts = (1, 2) if quick else (1, 2, 4)

    clear_compiled_cache()
    expected = {
        result.provenance.spec_hash: result.fingerprint()
        for result in (solve(spec, backend=backend) for spec in suite)
    }

    def parity_of(first_seen: dict) -> bool:
        return set(first_seen) == set(expected) and all(
            SolveResult.from_dict(envelope).fingerprint() == expected[spec_hash]
            for spec_hash, envelope in first_seen.items()
        )

    scenarios: dict[str, dict] = {}
    parity: dict[str, bool] = {}
    failures_total = 0

    # The no-router baseline: the single-process daemon on the same workload.
    store_dir = Path(tempfile.mkdtemp(prefix="repro-bench-cluster-"))
    try:
        clear_compiled_cache()
        record, _, first_seen = _serve_round(workload, store_dir / "single", backend)
        scenarios["serve_single_daemon"] = record
        parity["serve_single_daemon"] = parity_of(first_seen)
        failures_total += record["failures"]

        for workers in worker_counts:
            clear_compiled_cache()
            name = f"cluster_workers_{workers}"
            record, _, first_seen = _cluster_round(
                workload, workers, store_dir / name, backend
            )
            scenarios[name] = record
            parity[name] = parity_of(first_seen)
            failures_total += record["failures"]

        # The shared-arena proof: every unique trajectory compiled
        # exactly once across the whole fleet.
        compile_once = _cluster_compile_once_round(suite)
        failures_total += compile_once["failures"]
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    def rate(name: str) -> float:
        return scenarios[name]["requests_per_second"] or 0.0

    base_rate = rate("cluster_workers_1")
    single_rate = rate("serve_single_daemon")
    return {
        "benchmark": "repro sharded cluster serving throughput",
        "library_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os_module.cpu_count(),
        "generated_at_unix": int(time.time()),
        "suite": SERVE_SUITE,
        "duplication": SERVE_DUPLICATION,
        "clients": SERVE_CLIENTS,
        "requests": len(workload),
        "scenarios": scenarios,
        "arena_compile_once": compile_once,
        "speedup_workers_2_vs_1": round(rate("cluster_workers_2") / base_rate, 2)
        if base_rate
        else None,
        "speedup_workers_4_vs_1": round(rate("cluster_workers_4") / base_rate, 2)
        if base_rate and "cluster_workers_4" in scenarios
        else None,
        "speedup_workers_2_vs_single_daemon": round(
            rate("cluster_workers_2") / single_rate, 2
        )
        if single_rate
        else None,
        "served_fingerprints_identical_to_facade": all(parity.values()),
        "parity_by_scenario": parity,
        "cluster_failures": failures_total,
    }


def _measure_montecarlo(runner: BatchRunner, specs: list) -> tuple[dict, list]:
    """One montecarlo pass: the facade record plus ensemble-level rates."""
    record, results = _measure(runner, specs)
    trials = sum(result.details.get("trials", 0) for result in results)
    wall = record["wall_time_s"]
    record["trials"] = trials
    record["trials_requested"] = sum(
        result.details.get("trials_requested", 0) for result in results
    )
    record["trials_per_second"] = round(trials / wall, 2) if wall > 0 else None
    record["mean_solve_rate"] = round(
        sum(result.details.get("solve_rate", 0.0) for result in results) / len(results), 4
    )
    return record, results


def run_montecarlo_benchmark(processes: int, quick: bool) -> dict:
    """Seeded trial ensembles through the montecarlo backend.

    Reports trials/s serially and through the worker pool, and asserts the
    determinism contract the faults subsystem is built on: independent
    runners -- serial repeat and pooled -- must produce bit-identical
    envelopes and result fingerprints for every spec.
    """
    specs = [spec for name in MONTECARLO_SUITES for spec in spec_suite(name)]

    scenarios = {}
    scenarios["montecarlo_serial_cold"], serial_results = _measure_montecarlo(
        BatchRunner(backend="montecarlo"), specs
    )
    scenarios["montecarlo_serial_repeat"], repeat_results = _measure_montecarlo(
        BatchRunner(backend="montecarlo"), specs
    )
    pool_size = min(processes, 2) if quick else processes
    scenarios["montecarlo_pooled_cold"], pooled_results = _measure_montecarlo(
        BatchRunner(backend="montecarlo", processes=pool_size), specs
    )

    reference = [result.fingerprint() for result in serial_results]
    envelopes = [result.details["envelope"] for result in serial_results]
    repeat_identical = (
        reference == [result.fingerprint() for result in repeat_results]
        and envelopes == [result.details["envelope"] for result in repeat_results]
    )
    pooled_identical = (
        reference == [result.fingerprint() for result in pooled_results]
        and envelopes == [result.details["envelope"] for result in pooled_results]
    )

    return {
        "benchmark": "repro.faults montecarlo trial-ensemble throughput",
        "library_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_at_unix": int(time.time()),
        "workload": {
            "suites": list(MONTECARLO_SUITES),
            "total_specs": len(specs),
            "trials_requested": scenarios["montecarlo_serial_cold"]["trials_requested"],
        },
        "scenarios": scenarios,
        "envelopes_identical_serial_repeat": repeat_identical,
        "envelopes_identical_serial_pooled": pooled_identical,
    }


def _async_scaling_round(host: str, port: int, spec, connections: int, rounds: int) -> dict:
    """Hold ``connections`` persistent sockets open and measure warm hits.

    One asyncio event loop drives every connection (so the *load
    generator* costs one thread regardless of N and the measured thread
    growth is the server's alone).  All connections are opened first,
    one unrecorded probe round forces the server to stand up whatever
    per-connection state it uses, the peak thread count is sampled --
    the servers run in-process, so ``threading.active_count()`` sees
    their connection threads -- and then ``rounds`` warm-hit round
    trips run concurrently on every connection.
    """
    import asyncio
    import threading

    payload = (json.dumps({"op": "solve", "spec": spec.to_dict()}) + "\n").encode("utf-8")
    latencies: list[float] = []
    failures: list[str] = []
    state = {"connected": 0, "peak_threads": 0}

    async def drive() -> None:
        gate = asyncio.Semaphore(32)  # stay under the accept backlog
        conns: list[tuple] = []

        async def connect_one() -> None:
            async with gate:
                try:
                    conns.append(await asyncio.open_connection(host, port))
                except OSError as error:
                    failures.append(f"connect: {error}")

        await asyncio.gather(*(connect_one() for _ in range(connections)))
        state["connected"] = len(conns)

        async def round_trip(reader, writer, record: bool) -> None:
            start = time.perf_counter()
            try:
                writer.write(payload)
                await writer.drain()
                line = await reader.readline()
            except OSError as error:
                failures.append(str(error))
                return
            if not line:
                failures.append("connection closed mid-round")
                return
            if record:
                latencies.append(time.perf_counter() - start)
            response = json.loads(line)
            if not response.get("ok"):
                failures.append(str(response.get("error")))

        await asyncio.gather(*(round_trip(reader, writer, False) for reader, writer in conns))
        state["peak_threads"] = threading.active_count()
        for _ in range(rounds):
            await asyncio.gather(
                *(round_trip(reader, writer, True) for reader, writer in conns)
            )
        for _, writer in conns:
            writer.close()
        for _, writer in conns:
            try:
                await writer.wait_closed()
            except OSError:
                pass

    asyncio.run(drive())
    return {
        "connections": connections,
        "connected": state["connected"],
        "requests": len(latencies),
        "failures": len(failures),
        "first_failure": failures[0] if failures else None,
        "threads_at_peak": state["peak_threads"],
        "latency_ms": _percentiles(latencies) if latencies else None,
    }


def _async_scaling_scenario(server, spec, steps, rounds: int) -> list[dict]:
    """Run every connection step against one warm in-process server."""
    import threading

    records = []
    for connections in steps:
        baseline = threading.active_count()
        record = _async_scaling_round(server.host, server.port, spec, connections, rounds)
        record["baseline_threads"] = baseline
        growth = max(0, record["threads_at_peak"] - baseline)
        record["threads_per_connection"] = (
            round(growth / record["connected"], 3) if record["connected"] else None
        )
        records.append(record)
        # Let the previous step's per-connection threads retire so the
        # next baseline is clean (the async transport has none).
        deadline = time.monotonic() + 10.0
        while threading.active_count() > baseline and time.monotonic() < deadline:
            time.sleep(0.02)
    return records


def run_async_benchmark(quick: bool) -> dict:
    """The asyncio-transport snapshot: connection ceiling + streamed sweep.

    Two stories, both against in-process daemons on the same workload:

    * **Connection scaling** -- {8, 64, 256, 512} persistent
      connections doing warm-hit round trips against the threaded and
      the asyncio transport.  The headline *ceiling* is a thread-budget
      model: the threaded daemon spends one OS thread per open
      connection (measured, not assumed), the asyncio daemon spends
      zero, and the ceiling is how many connections fit in
      ``ASYNC_THREAD_BUDGET`` threads -- the budget a constrained
      container (default ``RLIMIT_NPROC``-style caps) actually gives a
      process.  The *raw* sustained-connection counts are reported
      unmodeled right next to it: this benchmark host caps neither
      transport, so both sustain every tested step and the honest
      difference is the measured thread cost, not a refused connect.
    * **Streamed sweep** -- the large search sweep pushed through the
      ``subscribe`` verb twice on one connection; the cold pass must
      reproduce ``BatchRunner.run()``'s order-independent fingerprint
      digest bit-for-bit and stream the exact completion set, the warm
      pass must be answered entirely from the hot response cache, and
      shutdown must leak zero event-loop tasks.
    """
    import os

    from repro.experiments.manifest import fingerprint_digest
    from repro.service import AsyncReproServer, ReproServer, ServiceClient

    steps = ASYNC_CONNECTION_STEPS
    rounds = 3 if quick else 10
    spec = spec_suite(SERVE_SUITE)[0]

    scaling: dict[str, dict] = {}
    for name, server_class in (("threaded", ReproServer), ("asyncio", AsyncReproServer)):
        with server_class(backend="auto") as server:
            server.serve_background()
            with ServiceClient(server.host, server.port) as warmup:
                for _ in range(2):
                    response = warmup.request({"op": "solve", "spec": spec.to_dict()})
                    assert response.get("ok"), response
            records = _async_scaling_scenario(server, spec, steps, rounds)
        costs = [
            record["threads_per_connection"]
            for record in records
            if record["threads_per_connection"] is not None
        ]
        threads_per_connection = max(costs) if costs else None
        sustained = max(
            (
                record["connections"]
                for record in records
                if record["connected"] == record["connections"] and not record["failures"]
            ),
            default=0,
        )
        if threads_per_connection is not None and threads_per_connection >= 0.05:
            modeled_ceiling = int(
                (ASYNC_THREAD_BUDGET - records[0]["baseline_threads"])
                / threads_per_connection
            )
        else:
            # No measurable per-connection thread: the model does not
            # bind, the ceiling is every connection we could throw at it.
            modeled_ceiling = sustained
        scaling[name] = {
            "steps": records,
            "threads_per_connection": threads_per_connection,
            "sustained_connections": sustained,
            "modeled_ceiling": modeled_ceiling,
        }
        if name == "asyncio":
            scaling[name]["leaked_tasks"] = len(server.leaked_tasks)

    ceiling_threaded = max(1, scaling["threaded"]["modeled_ceiling"])
    ceiling_async = scaling["asyncio"]["modeled_ceiling"]
    ceiling_ratio = round(ceiling_async / ceiling_threaded, 2)

    # Warm p50 comparison at the largest step both transports sustained
    # *within the threaded model's budget* -- comparing latency at a
    # connection count the threaded daemon could not legitimately hold
    # would flatter the async transport.
    comparable = [
        record["connections"]
        for record in scaling["threaded"]["steps"]
        if not record["failures"] and record["connections"] <= ceiling_threaded
    ]
    at_connections = max(comparable) if comparable else steps[0]

    def _p50(name: str) -> float:
        for record in scaling[name]["steps"]:
            if record["connections"] == at_connections and record["latency_ms"]:
                return record["latency_ms"]["p50"]
        return float("inf")

    threaded_p50 = _p50("threaded")
    async_p50 = _p50("asyncio")

    # -- the streamed sweep -------------------------------------------------
    suite_name = SERVE_SUITE if quick else ASYNC_SWEEP_SUITE
    suite = spec_suite(suite_name)
    expected_results, _ = BatchRunner(backend="auto").run(suite)
    expected_digest = fingerprint_digest(expected_results)
    expected_hashes = {result.provenance.spec_hash for result in expected_results}

    passes = []
    with AsyncReproServer(backend="auto") as server:
        server.serve_background()
        with ServiceClient(server.host, server.port) as client:
            for _ in range(2):
                started = time.perf_counter()
                stream = client.subscribe(suite, backend="auto")
                streamed = list(stream)
                wall = time.perf_counter() - started
                summary = stream.summary
                passes.append(
                    {
                        "records": summary["records"],
                        "errors": summary["errors"],
                        "sources": summary["sources"],
                        "fingerprint_digest": summary["fingerprint_digest"],
                        "wall_time_ms": round(wall * 1e3, 1),
                        "records_per_second": round(summary["records"] / wall, 1)
                        if wall > 0
                        else None,
                        "completion_set": {
                            record["key"]["spec_hash"] for record in streamed
                        },
                    }
                )
    cold, warm = passes
    cold_hashes = cold.pop("completion_set")
    warm.pop("completion_set")
    unique = len(expected_hashes)

    gates = {
        "ceiling_ratio_at_least_5": ceiling_ratio >= 5.0,
        "async_scaling_all_sustained": scaling["asyncio"]["sustained_connections"]
        == max(steps),
        "digest_identical_to_batch_runner": cold["fingerprint_digest"] == expected_digest
        and warm["fingerprint_digest"] == expected_digest,
        "completion_set_identical_to_run": cold_hashes == expected_hashes,
        "warm_pass_all_cache_hits": warm["sources"] == {"cache": unique},
        "async_warm_p50_within_budget": async_p50 <= threaded_p50 * 1.25,
        "zero_leaked_tasks": scaling["asyncio"]["leaked_tasks"] == 0
        and not server.leaked_tasks,
    }

    return {
        "benchmark": "repro.service asyncio transport: connection ceiling + subscribe",
        "library_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "generated_at_unix": int(time.time()),
        "quick": quick,
        "thread_budget": ASYNC_THREAD_BUDGET,
        "connection_steps": list(steps),
        "warm_rounds_per_connection": rounds,
        "scaling": scaling,
        "connection_ceiling": {
            "threaded": ceiling_threaded,
            "asyncio": ceiling_async,
            "ratio": ceiling_ratio,
            "target_ratio": 5.0,
            "model": (
                f"connections that fit a {ASYNC_THREAD_BUDGET}-thread budget at the "
                "measured per-connection thread cost; the asyncio ceiling is the "
                "largest tested step (a floor, not a limit)"
            ),
            "raw_sustained": {
                "threaded": scaling["threaded"]["sustained_connections"],
                "asyncio": scaling["asyncio"]["sustained_connections"],
                "note": (
                    "this host caps neither transport, so the threaded daemon also "
                    "held every tested step; the modeled ceiling prices its "
                    "measured thread-per-connection cost, which is the resource "
                    "a capped container runs out of"
                ),
            },
        },
        "warm_p50": {
            "at_connections": at_connections,
            "threaded_ms": threaded_p50,
            "asyncio_ms": async_p50,
            "equal_or_better": async_p50 <= threaded_p50,
            "budget_ratio": 1.25,
        },
        "subscribe_sweep": {
            "suite": suite_name,
            "specs": len(suite),
            "unique": unique,
            "batch_runner_digest": expected_digest,
            "cold": cold,
            "warm": warm,
        },
        "gates": gates,
    }


def _drive_sweep_stream(client, suite, backend: str, mode: str, on_record=None) -> dict:
    """One streamed pass (``subscribe`` or ``sweep``) with bytes-on-wire.

    ``on_record(count)`` fires after every yielded completion record --
    the kill pass uses it to take a worker down mid-stream.  Byte counts
    are deltas of the client's counters, so one connection can host
    several measured passes.
    """
    sent_before = client.bytes_sent
    received_before = client.bytes_received
    started = time.perf_counter()
    if mode == "subscribe":
        stream = client.subscribe(suite, backend=backend)
    else:
        stream = client.sweep(suite, backend=backend, mode=mode)
    records = 0
    fold_doc = None
    for record in stream:
        if record.get("op") == "partial":
            fold_doc = record.get("fold")
            continue
        records += 1
        if on_record is not None:
            on_record(records)
    wall = time.perf_counter() - started
    summary = stream.summary
    pass_record = {
        "verb": "subscribe" if mode == "subscribe" else f"sweep/{mode}",
        "records": records,
        "errors": summary["errors"],
        "unique": summary["unique"],
        "sources": summary["sources"],
        "wall_time_s": round(wall, 4),
        "specs_per_second": round(summary["unique"] / wall, 1) if wall > 0 else None,
        "bytes_sent": client.bytes_sent - sent_before,
        "bytes_received": client.bytes_received - received_before,
        "fanout": stream.ack.get("fanout"),
        "ack_partitions": stream.ack.get("partitions"),
        "partitions": summary.get("partitions"),
        "repartitioned": summary.get("repartitioned"),
        "fingerprint_digest": summary.get("fingerprint_digest"),
        "fold_digest": summary.get("fold_digest"),
    }
    if fold_doc is not None:
        pass_record["fold"] = fold_doc
    return pass_record


def _fold_tables_close(merged: dict, local: dict, tolerance: float = 1e-6) -> bool:
    """Router-merged fold vs local single-stream fold, wire-doc form.

    Counts must match exactly; the running moments merge in a different
    association order than a single stream pushes, so means and extrema
    compare within a relative tolerance instead of bit-for-bit.
    """
    if merged.get("total") != local.get("total"):
        return False
    merged_groups = {(g["kind"], g["backend"]): g for g in merged.get("groups", [])}
    local_groups = {(g["kind"], g["backend"]): g for g in local.get("groups", [])}
    if set(merged_groups) != set(local_groups):
        return False
    for key, mine in merged_groups.items():
        other = local_groups[key]
        for field in ("count", "solved", "unsolved", "bound_only", "infeasible"):
            if mine[field] != other[field]:
                return False
        for stat in ("measured_time", "bound_ratio"):
            a, b = mine[stat], other[stat]
            if a["count"] != b["count"]:
                return False
            for field in ("mean", "min", "max"):
                left, right = a.get(field), b.get(field)
                if left is None or right is None:
                    if left != right:
                        return False
                elif abs(left - right) > tolerance * max(1.0, abs(left), abs(right)):
                    return False
    return True


def run_sweep_benchmark(quick: bool) -> dict:
    """The distributed-sweep snapshot: partitioned batch plans vs routing.

    Three fresh 2-worker async fleets on the large search sweep:

    * **baseline** -- the PR-8 path: ``subscribe`` dissolves the suite
      into per-spec routed solves, one round trip of work per spec;
    * **sweep** -- the ``sweep`` verb ships each worker its whole
      partition as one request; the worker runs it as a single local
      batch plan (LRU / store / kernel batch / pool tiers all active)
      and streams completions back.  Cold, then warm (all cache), then
      a ``fold`` pass whose merged aggregate tables must match a local
      fold and ride >=10x fewer bytes than the streamed envelopes;
    * **kill** -- the same sweep on the ``simulation`` backend with
      worker 0 SIGKILLed mid-stream: the router re-partitions the dead
      worker's unfinished specs along the ring's failover order, the
      digest stays bit-identical to a local run, and the supervisor
      respawns the worker.
    """
    import json as json_module

    from repro.analysis.streaming import fold_envelopes
    from repro.cluster import ClusterSupervisor, boot_router
    from repro.experiments.manifest import fingerprint_digest, fold_digest
    from repro.service import ServiceClient, request_lines

    backend = "auto"
    suite = spec_suite(SWEEP_SUITE)

    # Local references: the digests and fold tables every distributed
    # pass must reproduce.
    clear_compiled_cache()
    local_results, local_stats = BatchRunner(backend=backend).run(suite)
    expected_digest = fingerprint_digest(local_results)
    expected_fold_digest = fold_digest(local_results)
    local_fold = fold_envelopes(result.to_dict() for result in local_results).to_wire()
    simulation_results, _ = BatchRunner(backend="simulation").run(suite)
    expected_simulation_digest = fingerprint_digest(simulation_results)

    def fleet(fleet_backend: str):
        supervisor = ClusterSupervisor(
            workers=SWEEP_WORKERS,
            backend=fleet_backend,
            store=None,
            async_workers=True,
        )
        router = boot_router(supervisor, use_async=True, backend=fleet_backend)
        router.serve_background()
        return supervisor, router

    scenarios: dict[str, dict] = {}

    # Fleet A: the per-spec-routed subscribe baseline, cold.
    _, router = fleet(backend)
    with router:
        with ServiceClient(router.host, router.port, timeout=300) as client:
            scenarios["subscribe_cold"] = _drive_sweep_stream(
                client, suite, backend, "subscribe"
            )

    # Fleet B: the partitioned sweep -- cold, warm, fold -- plus the
    # router's per-shard sweep counters.
    _, router = fleet(backend)
    with router:
        with ServiceClient(router.host, router.port, timeout=300) as client:
            scenarios["sweep_cold"] = _drive_sweep_stream(client, suite, backend, "stream")
            scenarios["sweep_warm"] = _drive_sweep_stream(client, suite, backend, "stream")
            scenarios["sweep_fold"] = _drive_sweep_stream(client, suite, backend, "fold")
        (metrics_line,) = request_lines(
            router.host, router.port, [json_module.dumps({"op": "metrics"})]
        )
        sweep_counters = [
            {"worker": row["worker"], **row["sweeps"]}
            for row in json_module.loads(metrics_line)["metrics"]["shards"]
        ]

    # Fleet C: the mid-sweep worker kill, on the scalar simulation
    # backend so the stream is paced and the kill lands mid-partition.
    supervisor, router = fleet("simulation")
    with router:
        killed = {"done": False}

        def kill_worker(count: int) -> None:
            if count == 3 and not killed["done"]:
                killed["done"] = True
                supervisor.handles[0].process.kill()

        with ServiceClient(router.host, router.port, timeout=300) as client:
            scenarios["sweep_worker_kill"] = _drive_sweep_stream(
                client, suite, "simulation", "stream", on_record=kill_worker
            )
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline and not supervisor.handles[0].alive:
            time.sleep(0.1)
        respawned = supervisor.handles[0].alive and supervisor.handles[0].restarts >= 1

    cold = scenarios["sweep_cold"]
    warm = scenarios["sweep_warm"]
    fold = scenarios["sweep_fold"]
    kill = scenarios["sweep_worker_kill"]
    unique = local_stats.unique
    stream_bytes = cold["bytes_received"]
    fold_bytes = fold["bytes_received"]

    gates = {
        "distributed_beats_per_spec_subscribe": cold["wall_time_s"]
        < scenarios["subscribe_cold"]["wall_time_s"],
        "fleet_batch_tier_engaged": cold["sources"].get("batch", 0) > 0
        and all(row["completed"] > 0 for row in cold["partitions"]),
        "digest_parity_cold": cold["fingerprint_digest"] == expected_digest,
        "digest_parity_warm": warm["fingerprint_digest"] == expected_digest,
        "digest_parity_after_worker_kill": kill["fingerprint_digest"]
        == expected_simulation_digest,
        "fold_digest_parity": fold["fold_digest"] == expected_fold_digest,
        "fold_table_matches_local_fold": _fold_tables_close(fold["fold"], local_fold),
        "fold_bytes_reduction_at_least_10x": fold_bytes > 0
        and stream_bytes >= 10 * fold_bytes,
        "warm_pass_all_cached": warm["sources"] == {"cache": unique},
        "no_errors": all(record["errors"] == 0 for record in scenarios.values()),
        "worker_killed_and_respawned": killed["done"] and respawned,
    }

    return {
        "benchmark": "repro distributed sweep: partitioned batch plans over the fleet",
        "library_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_at_unix": int(time.time()),
        "quick": quick,
        "suite": SWEEP_SUITE,
        "specs": len(suite),
        "unique": unique,
        "workers": SWEEP_WORKERS,
        "batch_runner_digest": expected_digest,
        "batch_runner_fold_digest": expected_fold_digest,
        "scenarios": scenarios,
        "sweep_counters": sweep_counters,
        "speedup_sweep_vs_subscribe": round(
            scenarios["subscribe_cold"]["wall_time_s"] / cold["wall_time_s"], 2
        )
        if cold["wall_time_s"]
        else None,
        "fold_bytes_reduction": round(stream_bytes / fold_bytes, 1)
        if fold_bytes
        else None,
        "kill_repartitioned": kill["repartitioned"],
        "worker_respawned": respawned,
        "gates": gates,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--processes", type=int, default=2, help="pool size for the pooled scenario"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small workload, no pool, fail on kernel parity drift",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="where to write BENCH_api.json"
    )
    parser.add_argument(
        "--kernel-output",
        type=Path,
        default=DEFAULT_KERNEL_OUTPUT,
        help="where to write BENCH_kernel.json",
    )
    parser.add_argument(
        "--store-output",
        type=Path,
        default=DEFAULT_STORE_OUTPUT,
        help="where to write BENCH_store.json",
    )
    parser.add_argument(
        "--serve-output",
        type=Path,
        default=DEFAULT_SERVE_OUTPUT,
        help="where to write BENCH_serve.json",
    )
    parser.add_argument(
        "--cluster-output",
        type=Path,
        default=DEFAULT_CLUSTER_OUTPUT,
        help="where to write BENCH_cluster.json",
    )
    parser.add_argument(
        "--montecarlo-output",
        type=Path,
        default=DEFAULT_MONTECARLO_OUTPUT,
        help="where to write BENCH_montecarlo.json",
    )
    parser.add_argument(
        "--async-output",
        type=Path,
        default=DEFAULT_ASYNC_OUTPUT,
        help="where to write BENCH_async.json",
    )
    parser.add_argument(
        "--sweep-output",
        type=Path,
        default=DEFAULT_SWEEP_OUTPUT,
        help="where to write BENCH_sweep.json",
    )
    namespace = parser.parse_args()

    snapshot = run_benchmark(namespace.processes, namespace.quick)
    namespace.output.parent.mkdir(parents=True, exist_ok=True)
    namespace.output.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")

    kernel_snapshot = run_kernel_benchmark(namespace.quick)
    namespace.kernel_output.parent.mkdir(parents=True, exist_ok=True)
    namespace.kernel_output.write_text(
        json.dumps(kernel_snapshot, indent=2) + "\n", encoding="utf-8"
    )

    store_snapshot = run_store_benchmark(namespace.quick)
    namespace.store_output.parent.mkdir(parents=True, exist_ok=True)
    namespace.store_output.write_text(
        json.dumps(store_snapshot, indent=2) + "\n", encoding="utf-8"
    )

    serve_snapshot = run_serve_benchmark(namespace.quick)
    namespace.serve_output.parent.mkdir(parents=True, exist_ok=True)
    namespace.serve_output.write_text(
        json.dumps(serve_snapshot, indent=2) + "\n", encoding="utf-8"
    )

    cluster_snapshot = run_cluster_benchmark(namespace.quick)
    namespace.cluster_output.parent.mkdir(parents=True, exist_ok=True)
    namespace.cluster_output.write_text(
        json.dumps(cluster_snapshot, indent=2) + "\n", encoding="utf-8"
    )

    montecarlo_snapshot = run_montecarlo_benchmark(namespace.processes, namespace.quick)
    namespace.montecarlo_output.parent.mkdir(parents=True, exist_ok=True)
    namespace.montecarlo_output.write_text(
        json.dumps(montecarlo_snapshot, indent=2) + "\n", encoding="utf-8"
    )

    async_snapshot = run_async_benchmark(namespace.quick)
    namespace.async_output.parent.mkdir(parents=True, exist_ok=True)
    namespace.async_output.write_text(
        json.dumps(async_snapshot, indent=2) + "\n", encoding="utf-8"
    )

    sweep_snapshot = run_sweep_benchmark(namespace.quick)
    namespace.sweep_output.parent.mkdir(parents=True, exist_ok=True)
    namespace.sweep_output.write_text(
        json.dumps(sweep_snapshot, indent=2) + "\n", encoding="utf-8"
    )

    print(json.dumps(snapshot, indent=2))
    print(json.dumps(kernel_snapshot, indent=2))
    print(json.dumps(store_snapshot, indent=2))
    print(json.dumps(serve_snapshot, indent=2))
    print(json.dumps(cluster_snapshot, indent=2))
    print(json.dumps(montecarlo_snapshot, indent=2))
    print(json.dumps(async_snapshot, indent=2))
    print(json.dumps(sweep_snapshot, indent=2))
    print(
        f"\nsnapshots written to {namespace.output}, {namespace.kernel_output}, "
        f"{namespace.store_output}, {namespace.serve_output}, "
        f"{namespace.cluster_output}, {namespace.montecarlo_output}, "
        f"{namespace.async_output} and {namespace.sweep_output}"
    )

    if not kernel_snapshot["parity"]["within_tolerance"]:
        print(
            "ERROR: vectorized kernel event times drifted from the scalar engine "
            f"beyond TIME_TOLERANCE ({kernel_snapshot['parity']})",
            file=sys.stderr,
        )
        return 1
    warm_replay = store_snapshot["warm_replay"]
    if not (
        warm_replay["all_from_store"] and warm_replay["fingerprints_identical_to_cold"]
    ):
        print(
            "ERROR: warm store replay missed the store or drifted from the cold "
            f"fingerprints ({warm_replay})",
            file=sys.stderr,
        )
        return 1
    if (
        serve_snapshot["serve_failures"]
        or not serve_snapshot["served_fingerprints_identical_to_facade"]
        or not serve_snapshot["hits_observed"]
    ):
        print(
            "ERROR: serve benchmark failed requests, drifted from the direct facade "
            "answers, or served a duplicate-heavy workload without any cache/store/"
            f"coalescing hits ({serve_snapshot['scenarios']})",
            file=sys.stderr,
        )
        return 1
    if (
        cluster_snapshot["cluster_failures"]
        or not cluster_snapshot["served_fingerprints_identical_to_facade"]
    ):
        print(
            "ERROR: cluster benchmark dropped requests or a sharded answer "
            f"drifted from the direct facade solve ({cluster_snapshot['parity_by_scenario']})",
            file=sys.stderr,
        )
        return 1
    compile_once = cluster_snapshot["arena_compile_once"]
    if compile_once["arena_active"] and not compile_once["compiled_once_fleetwide"]:
        print(
            "ERROR: the worker fleet recompiled trajectories the shared arena "
            f"should have served ({compile_once})",
            file=sys.stderr,
        )
        return 1
    if not namespace.quick and serve_snapshot["warm_hit_p50_binary_ms"] >= 0.5:
        print(
            "ERROR: binary warm-hit p50 "
            f"{serve_snapshot['warm_hit_p50_binary_ms']} ms missed the 0.5 ms budget",
            file=sys.stderr,
        )
        return 1
    if not (
        montecarlo_snapshot["envelopes_identical_serial_repeat"]
        and montecarlo_snapshot["envelopes_identical_serial_pooled"]
    ):
        print(
            "ERROR: montecarlo envelopes are not bit-identical across independent "
            "serial/pooled runs -- the seeded determinism contract is broken "
            f"({montecarlo_snapshot['scenarios']})",
            file=sys.stderr,
        )
        return 1
    failed_async_gates = [
        name for name, passed in async_snapshot["gates"].items() if not passed
    ]
    if failed_async_gates:
        print(
            f"ERROR: async benchmark gates failed: {', '.join(failed_async_gates)} "
            f"(ceiling {async_snapshot['connection_ceiling']}, "
            f"warm p50 {async_snapshot['warm_p50']})",
            file=sys.stderr,
        )
        return 1
    failed_sweep_gates = [
        name for name, passed in sweep_snapshot["gates"].items() if not passed
    ]
    if failed_sweep_gates:
        print(
            f"ERROR: distributed sweep gates failed: {', '.join(failed_sweep_gates)} "
            f"(speedup {sweep_snapshot['speedup_sweep_vs_subscribe']}, "
            f"fold bytes reduction {sweep_snapshot['fold_bytes_reduction']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
