"""Throughput benchmark for the ``repro.api`` batch facade.

Run with::

    PYTHONPATH=src python benchmarks/bench_api.py [--processes N] [--output PATH]

Measures batch solve throughput (specs/second) across the facade's three
levers -- backend fidelity, worker pool, result cache -- on the
deterministic workload suites, and writes a ``BENCH_api.json`` snapshot
next to the other benchmark artefacts so future PRs can track the
trajectory.

Scenarios:

* ``analytic_serial``        -- closed forms only, one process;
* ``simulation_serial_cold`` -- full simulation, one process, empty cache;
* ``simulation_serial_warm`` -- same runner again: every spec cache-hits;
* ``simulation_pooled_cold`` -- full simulation fanned out over a pool.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro._version import __version__
from repro.api import BatchRunner
from repro.workloads import spec_suite

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_api.json"


def _workload() -> list:
    """The benchmark workload: every deterministic suite, concatenated."""
    specs = []
    for name in ("search-sweep", "symmetric-clock", "asymmetric-clock"):
        specs.extend(spec_suite(name))
    return specs


def _measure(runner: BatchRunner, specs: list) -> dict:
    start = time.perf_counter()
    results, stats = runner.run(specs)
    wall = time.perf_counter() - start
    solved = sum(1 for result in results if result.solved)
    return {
        "specs": stats.total,
        "unique": stats.unique,
        "cache_hits": stats.cache_hits,
        "processes": stats.processes,
        "wall_time_s": round(wall, 4),
        "specs_per_second": round(stats.total / wall, 2) if wall > 0 else None,
        "solved": solved,
    }


def run_benchmark(processes: int) -> dict:
    specs = _workload()

    analytic = BatchRunner(backend="analytic")
    simulation = BatchRunner(backend="simulation")
    pooled = BatchRunner(backend="simulation", processes=processes)

    scenarios = {
        "analytic_serial": _measure(analytic, specs),
        "simulation_serial_cold": _measure(simulation, specs),
        "simulation_serial_warm": _measure(simulation, specs),
        "simulation_pooled_cold": _measure(pooled, specs),
    }
    return {
        "benchmark": "repro.api batch solve throughput",
        "library_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_at_unix": int(time.time()),
        "workload": {
            "suites": ["search-sweep", "symmetric-clock", "asymmetric-clock"],
            "total_specs": len(specs),
        },
        "scenarios": scenarios,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--processes", type=int, default=2, help="pool size for the pooled scenario"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="where to write the JSON snapshot"
    )
    namespace = parser.parse_args()

    snapshot = run_benchmark(namespace.processes)
    namespace.output.parent.mkdir(parents=True, exist_ok=True)
    namespace.output.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")

    print(json.dumps(snapshot, indent=2))
    print(f"\nsnapshot written to {namespace.output}")


if __name__ == "__main__":
    main()
