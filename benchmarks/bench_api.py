"""Throughput benchmark for the ``repro.api`` batch facade and the kernel.

Run with::

    PYTHONPATH=src python benchmarks/bench_api.py [--processes N] [--quick]
        [--output PATH] [--kernel-output PATH]

Measures batch solve throughput (specs/second) across the facade's levers
-- backend fidelity, the vectorized kernel, worker pool, result cache --
on the deterministic workload suites, and writes two snapshots next to
the other benchmark artefacts so future PRs can track the trajectory:

* ``BENCH_api.json``    -- the facade scenarios (analytic / simulation /
  vectorized, serial / warm / pooled) on the mixed workload;
* ``BENCH_kernel.json`` -- the kernel-focused snapshot: scalar-engine
  baseline vs the vectorized backend on the search-sweep suite, the
  speedup ratio, a per-spec event-time parity check against
  ``TIME_TOLERANCE``, and the large sweep that is only tractable through
  the kernel.

``solved`` counts only specs whose simulated event actually fired;
``bound_only`` counts analytic answers (``solved is None`` -- no
simulation was performed, which is *not* the same as unsolved) and
``unsolved`` counts simulations that hit their horizon.

``--quick`` is the CI smoke mode: small workloads, no pooled scenario,
and a non-zero exit code when the kernel's event times drift from the
scalar engine beyond ``TIME_TOLERANCE`` (no timings are asserted).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro._version import __version__
from repro.api import BatchRunner
from repro.constants import TIME_TOLERANCE
from repro.simulation.kernel import clear_compiled_cache
from repro.workloads import spec_suite

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_api.json"
DEFAULT_KERNEL_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_kernel.json"

KERNEL_SUITE = "search-sweep"
KERNEL_LARGE_SUITE = "search-sweep-large"


def _workload(quick: bool) -> list:
    """The facade workload: every small deterministic suite, concatenated."""
    names = ("search-sweep",) if quick else ("search-sweep", "symmetric-clock", "asymmetric-clock")
    specs = []
    for name in names:
        specs.extend(spec_suite(name))
    return specs


def _measure(runner: BatchRunner, specs: list) -> tuple[dict, list]:
    start = time.perf_counter()
    results, stats = runner.run(specs)
    wall = time.perf_counter() - start
    record = {
        "specs": stats.total,
        "unique": stats.unique,
        "cache_hits": stats.cache_hits,
        "processes": stats.processes,
        "solved_in_batch": stats.solved_in_batch,
        "wall_time_s": round(wall, 4),
        "specs_per_second": round(stats.total / wall, 2) if wall > 0 else None,
        # A backend that performed no simulation reports solved=None; that
        # is a bound-only answer, not an unsolved run.
        "solved": sum(1 for result in results if result.solved is True),
        "unsolved": sum(1 for result in results if result.solved is False),
        "bound_only": sum(1 for result in results if result.solved is None),
    }
    return record, results


def run_benchmark(processes: int, quick: bool) -> dict:
    specs = _workload(quick)

    analytic = BatchRunner(backend="analytic")
    simulation = BatchRunner(backend="simulation")
    vectorized = BatchRunner(backend="vectorized")

    scenarios = {}
    scenarios["analytic_serial"], _ = _measure(analytic, specs)
    scenarios["simulation_serial_cold"], _ = _measure(simulation, specs)
    scenarios["simulation_serial_warm"], _ = _measure(simulation, specs)
    clear_compiled_cache()
    scenarios["vectorized_serial_cold"], _ = _measure(vectorized, specs)
    scenarios["vectorized_serial_warm"], _ = _measure(vectorized, specs)
    if not quick:
        pooled = BatchRunner(backend="simulation", processes=processes)
        scenarios["simulation_pooled_cold"], _ = _measure(pooled, specs)
    return {
        "benchmark": "repro.api batch solve throughput",
        "library_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_at_unix": int(time.time()),
        "workload": {
            "suites": ["search-sweep"]
            if quick
            else ["search-sweep", "symmetric-clock", "asymmetric-clock"],
            "total_specs": len(specs),
        },
        "scenarios": scenarios,
    }


def _measure_best_of(make_runner, specs: list, repeats: int, prepare=None) -> tuple[dict, list]:
    """Best-of-``repeats`` measurement (fresh runner each repeat).

    Wall-clock minima are the standard way to strip scheduler noise from
    short benchmark runs; the solved counts and results come from the
    fastest repeat (every repeat computes identical results -- the
    backends are deterministic).
    """
    best_record: dict | None = None
    best_results: list = []
    for _ in range(max(repeats, 1)):
        if prepare is not None:
            prepare()
        record, results = _measure(make_runner(), specs)
        if best_record is None or record["wall_time_s"] < best_record["wall_time_s"]:
            best_record, best_results = record, results
    best_record["repeats"] = max(repeats, 1)
    return best_record, best_results


def run_kernel_benchmark(quick: bool) -> dict:
    """The kernel snapshot: baseline vs vectorized plus the parity check."""
    specs = spec_suite(KERNEL_SUITE)
    repeats = 1 if quick else 3

    simulation_record, simulation_results = _measure_best_of(
        lambda: BatchRunner(backend="simulation"), specs, repeats
    )
    # Cold = compiled-trajectory cache emptied before every repeat.
    vectorized_record, vectorized_results = _measure_best_of(
        lambda: BatchRunner(backend="vectorized"), specs, repeats, prepare=clear_compiled_cache
    )
    # Same suite with fresh runners: the result cache starts cold but the
    # compiled trajectory is reused -- the steady-state sweep rate.
    warm_record, _ = _measure_best_of(lambda: BatchRunner(backend="vectorized"), specs, repeats)

    deltas = []
    for scalar, kernel in zip(simulation_results, vectorized_results):
        if scalar.solved and kernel.solved:
            deltas.append(abs(scalar.measured_time - kernel.measured_time))
    agreement = (
        len(deltas) == len(specs)
        and all(result.solved for result in simulation_results)
        and all(result.solved for result in vectorized_results)
    )
    max_delta = max(deltas) if deltas else None
    parity = {
        "specs": len(specs),
        "compared": len(deltas),
        "max_abs_time_delta": max_delta,
        "tolerance": TIME_TOLERANCE,
        "within_tolerance": agreement and max_delta is not None and max_delta <= TIME_TOLERANCE,
    }

    scenarios = {
        "simulation_serial_cold": simulation_record,
        "vectorized_cold": vectorized_record,
        "vectorized_warm_compiled": warm_record,
    }
    if not quick:
        large = spec_suite(KERNEL_LARGE_SUITE)
        scenarios["vectorized_large"], large_results = _measure(
            BatchRunner(backend="vectorized"), large
        )
        scenarios["vectorized_large"]["suite"] = KERNEL_LARGE_SUITE
        scenarios["vectorized_large"]["all_solved"] = all(r.solved for r in large_results)

    baseline = simulation_record["specs_per_second"] or 0.0
    vector_rate = vectorized_record["specs_per_second"] or 0.0
    return {
        "benchmark": "repro vectorized kernel throughput",
        "library_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_at_unix": int(time.time()),
        "suite": KERNEL_SUITE,
        "scenarios": scenarios,
        "speedup_vectorized_vs_simulation": round(vector_rate / baseline, 2) if baseline else None,
        "parity": parity,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--processes", type=int, default=2, help="pool size for the pooled scenario"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small workload, no pool, fail on kernel parity drift",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="where to write BENCH_api.json"
    )
    parser.add_argument(
        "--kernel-output",
        type=Path,
        default=DEFAULT_KERNEL_OUTPUT,
        help="where to write BENCH_kernel.json",
    )
    namespace = parser.parse_args()

    snapshot = run_benchmark(namespace.processes, namespace.quick)
    namespace.output.parent.mkdir(parents=True, exist_ok=True)
    namespace.output.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")

    kernel_snapshot = run_kernel_benchmark(namespace.quick)
    namespace.kernel_output.parent.mkdir(parents=True, exist_ok=True)
    namespace.kernel_output.write_text(
        json.dumps(kernel_snapshot, indent=2) + "\n", encoding="utf-8"
    )

    print(json.dumps(snapshot, indent=2))
    print(json.dumps(kernel_snapshot, indent=2))
    print(f"\nsnapshots written to {namespace.output} and {namespace.kernel_output}")

    if not kernel_snapshot["parity"]["within_tolerance"]:
        print(
            "ERROR: vectorized kernel event times drifted from the scalar engine "
            f"beyond TIME_TOLERANCE ({kernel_snapshot['parity']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
