"""Benchmark E06 -- Theorem 4: feasibility map.

Regenerates the feasibility grid: predicted vs simulated outcomes, with the invariant-gap certificate for infeasible cases.
"""

from __future__ import annotations


def test_e06(experiment_runner):
    """Run experiment E06 once and verify every reproduced claim."""
    report = experiment_runner("E06")
    assert report.all_passed
