"""Benchmark F03 -- Figure 3: the two overlap configurations.

Regenerates the Lemma 9 / Lemma 10 overlap configurations between the two robots' schedules.
"""

from __future__ import annotations


def test_f03(experiment_runner):
    """Run experiment F03 once and verify every reproduced claim."""
    report = experiment_runner("F03")
    assert report.all_passed
