"""CI smoke for the invariant checker: the tree must lint clean.

Run with::

    PYTHONPATH=src python benchmarks/lint_smoke.py

Runs ``repro lint --json --strict`` in a subprocess (the same command
the CI gate and a contributor's shell run -- exercising argument
parsing, baseline discovery and exit semantics, not just the library),
validates the machine-readable report against the documented schema,
and fails (non-zero exit) unless:

* the subprocess exits 0 (strict mode: no finding outside the
  committed baseline);
* the report parses as RFC-clean JSON from stdout alone;
* the schema carries exactly the documented keys with sane types;
* ``new`` is 0 and every ``counts`` bucket is a known rule id;
* a deliberately planted nondeterminism regression in a scratch tree
  IS caught (the gate must be proven live, not just quiet).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

REPORT_KEYS = {
    "version",
    "strict",
    "counts",
    "total",
    "new",
    "baselined",
    "suppressed",
    "findings",
}


def run_lint(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


def check_clean_tree() -> None:
    proc = run_lint("--json", "--strict")
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"repro lint --strict failed (exit {proc.returncode})")
    report = json.loads(proc.stdout)  # stdout must be one pure JSON document
    if set(report) != REPORT_KEYS:
        raise SystemExit(f"unexpected report keys: {sorted(report)}")
    if report["version"] != 1 or report["strict"] is not True:
        raise SystemExit("report version/strict flag drifted")
    if report["new"] != 0:
        raise SystemExit(f"{report['new']} non-baselined finding(s)")
    if report["total"] != report["new"] + report["baselined"]:
        raise SystemExit("total != new + baselined")
    known_rules = {"R001", "R002", "R003", "R004", "R005"}
    if not set(report["counts"]) <= known_rules:
        raise SystemExit(f"unknown rule ids in counts: {report['counts']}")
    if len(report["findings"]) != report["total"]:
        raise SystemExit("findings array disagrees with total")
    print(
        f"lint smoke: clean tree ({report['baselined']} baselined, "
        f"{report['suppressed']} suppressed)"
    )


def check_gate_is_live() -> None:
    """Plant a determinism regression and insist the linter sees it."""
    from repro.lint import Baseline, LintConfig, run_lint as lint

    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch) / "repro"
        (root / "api").mkdir(parents=True)
        (root / "__init__.py").touch()
        (root / "api" / "__init__.py").touch()
        (root / "api" / "spec.py").write_text(
            textwrap.dedent(
                """\
                import time

                def canonical_hash():
                    return str(time.time())
                """
            )
        )
        config = LintConfig(
            taint_roots=("repro.api.spec",),
            protocol_module="repro.none",
            frames_module="repro.none2",
            wire_modules=(),
            dispatchers=(),
        )
        report = lint(root, config=config, baseline=Baseline())
        if report.exit_code(strict=True) != 1 or len(report.new) != 1:
            raise SystemExit("planted regression was NOT caught -- gate is dead")
    print("lint smoke: planted regression caught (gate is live)")


def main() -> int:
    sys.path.insert(0, str(SRC))
    check_clean_tree()
    check_gate_is_live()
    return 0


if __name__ == "__main__":
    sys.exit(main())
