"""CI smoke for the serving tier: daemon up, suite through the socket.

Run with::

    PYTHONPATH=src python benchmarks/serve_smoke.py [--suite NAME] [--clients N]

With ``--async`` the same gate runs against the asyncio transport
(:class:`~repro.service.AsyncReproServer`) — the wire format is
byte-compatible, so every assertion below applies unchanged.

Starts ``repro serve`` on an ephemeral port, streams every spec of the
suite (plus one duplicate pass, so the caches have something to answer)
through concurrent socket clients, and fails (non-zero exit) unless:

* every response is ``ok`` and its fingerprint is bit-identical to a
  direct in-process ``solve()`` of the same spec;
* the daemon's ``metrics`` document is *consistent with the wire
  traffic*: it counted exactly the requests we sent, its per-backend
  sources (solves + cache + store + coalesced) partition them, zero
  errors, and the duplicate pass was answered without re-solving;
* a third pass through the **binary wire frames** answers every spec
  with the same fingerprints, hits the daemon's hot response cache,
  and is counted under the ``binary`` transport format;
* ``health`` reports a serving daemon;
* no shared-memory segment is left behind in ``/dev/shm`` afterwards.

No timings are asserted -- this is a correctness/parity gate, the
throughput story lives in ``BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading

from repro.api import BatchRunner, SolveResult
from repro.service import AsyncReproServer, ReproServer, ServiceClient, request_lines
from repro.workloads import spec_suite


def shm_entries() -> set:
    """Names currently in /dev/shm (empty off Linux)."""
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="search-sweep", help="workload suite to stream")
    parser.add_argument("--clients", type=int, default=8, help="concurrent socket clients")
    parser.add_argument("--backend", default="auto", help="daemon default backend")
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="run the gate against the asyncio transport instead of the threaded one",
    )
    namespace = parser.parse_args()

    suite = spec_suite(namespace.suite)
    workload = suite + suite  # the second pass must be all hits
    # The reference answers, computed in-process through the facade.
    expected_results, _ = BatchRunner(backend=namespace.backend).run(suite)
    expected = {
        result.provenance.spec_hash: result.fingerprint() for result in expected_results
    }
    shm_before = shm_entries()

    responses: list[dict] = []
    binary_responses: list[dict] = []
    lock = threading.Lock()

    server_class = AsyncReproServer if namespace.use_async else ReproServer
    with server_class(backend=namespace.backend, max_inflight=namespace.clients) as server:
        server.serve_background()
        transport = "asyncio" if namespace.use_async else "threaded"
        print(
            f"serve smoke: {transport} daemon on {server.address}, "
            f"{len(workload)} requests"
        )

        def client(slot: int) -> None:
            lines = [
                json.dumps({"op": "solve", "spec": workload[i].to_dict(), "id": i})
                for i in range(slot, len(workload), namespace.clients)
            ]
            if not lines:
                return
            answered = [
                json.loads(line)
                for line in request_lines(server.host, server.port, lines)
            ]
            with lock:
                responses.extend(answered)

        threads = [
            threading.Thread(target=client, args=(slot,))
            for slot in range(namespace.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Third pass: same suite over the binary wire frames.  The daemon
        # already holds every answer hot, so this also exercises the
        # zero-re-encode response cache under the upgraded framing.
        with ServiceClient(server.host, server.port, binary=True) as binary_client:
            if binary_client.format != "binary":
                with lock:
                    binary_responses.append(
                        {"ok": False, "error": "binary upgrade was declined"}
                    )
            else:
                for i, spec in enumerate(suite):
                    binary_responses.append(
                        binary_client.request({"op": "solve", "spec": spec.to_dict(), "id": i})
                    )

        health_line, metrics_line = request_lines(
            server.host,
            server.port,
            [json.dumps({"op": "health"}), json.dumps({"op": "metrics"})],
        )
        health = json.loads(health_line)["health"]
        metrics = json.loads(metrics_line)["metrics"]

    failures: list[str] = []
    if health["status"] != "serving":
        failures.append(f"health reported {health['status']!r}, expected 'serving'")
    if len(responses) != len(workload):
        failures.append(f"{len(responses)} responses for {len(workload)} requests")
    bad = [response for response in responses if not response.get("ok")]
    if bad:
        failures.append(f"{len(bad)} request(s) failed, first: {bad[0].get('error')}")
    else:
        for response in responses:
            served = SolveResult.from_dict(response["result"])
            fingerprint = expected.get(served.provenance.spec_hash)
            if fingerprint is None or served.fingerprint() != fingerprint:
                failures.append(
                    f"response {response.get('id')} drifted from the direct solve"
                )
                break

    if len(binary_responses) != len(suite):
        failures.append(
            f"{len(binary_responses)} binary responses for {len(suite)} requests"
        )
    bad_binary = [response for response in binary_responses if not response.get("ok")]
    if bad_binary:
        failures.append(
            f"{len(bad_binary)} binary request(s) failed, "
            f"first: {bad_binary[0].get('error')}"
        )
    else:
        for response in binary_responses:
            served = SolveResult.from_dict(response["result"])
            fingerprint = expected.get(served.provenance.spec_hash)
            if fingerprint is None or served.fingerprint() != fingerprint:
                failures.append(
                    f"binary response {response.get('id')} drifted from the direct solve"
                )
                break
        cache_served = sum(
            1 for response in binary_responses if response.get("served_by") == "cache"
        )
        if binary_responses and not cache_served:
            failures.append(
                "binary pass over a hot daemon was never answered from the response cache"
            )

    transport = metrics.get("transport", {})
    binary_transport = transport.get("binary", {})
    if binary_transport.get("requests", 0) < len(suite):
        failures.append(
            f"transport counted {binary_transport.get('requests', 0)} binary "
            f"requests, wire sent {len(suite)}"
        )

    totals = metrics["totals"]
    answered = totals["solves"] + totals["cache_hits"] + totals["store_hits"] + totals["coalesced"]
    expected_requests = len(workload) + len(suite)
    if totals["requests"] != expected_requests:
        failures.append(
            f"metrics counted {totals['requests']} requests, wire sent {expected_requests}"
        )
    if answered + totals["errors"] != totals["requests"]:
        failures.append(f"metrics sources do not partition requests: {totals}")
    if totals["errors"]:
        failures.append(f"daemon recorded {totals['errors']} error(s)")
    if totals["solves"] > len(suite):
        failures.append(
            f"{totals['solves']} solves for {len(suite)} unique specs -- "
            "the duplicate pass was not answered from the caches"
        )

    leaked = shm_entries() - shm_before
    if leaked:
        failures.append(f"leaked /dev/shm segment(s): {sorted(leaked)}")

    print(
        f"serve smoke: {totals['requests']} requests = {totals['solves']} solved + "
        f"{totals['cache_hits']} cache + {totals['store_hits']} store + "
        f"{totals['coalesced']} coalesced ({totals['errors']} errors)"
    )
    print(
        f"serve smoke: binary pass {len(binary_responses)} responses, "
        f"{binary_transport.get('requests', 0)} counted on the binary transport"
    )
    if failures:
        for failure in failures:
            print(f"ERROR: {failure}", file=sys.stderr)
        return 1
    print(
        "serve smoke: metrics parity OK, fingerprints identical to direct solve "
        "on both wire formats, /dev/shm clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
