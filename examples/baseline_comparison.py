"""How much does universality cost?  Algorithm 4 vs baselines.

Run with::

    python examples/baseline_comparison.py

The paper's Algorithm 4 knows neither the target distance ``d`` nor the
visibility ``r``.  This example compares it, on the same instances, against
a clairvoyant searcher that knows ``r`` (concentric circles spaced ``2r``)
and a naive universal searcher that hedges over guesses of both parameters.
The clairvoyant baseline wins by roughly the ``log`` factor Theorem 1 pays
for universality; the naive baseline scales much worse as ``r`` shrinks.
"""

from __future__ import annotations

from repro.algorithms import ConcentricCoverageSearch, DiagonalHedgingSearch, UniversalSearch
from repro.analysis import Table
from repro.core import theorem1_search_bound
from repro.geometry import Vec2
from repro.simulation import SearchInstance, bound_multiple_horizon, fixed_horizon, simulate_search


def main() -> None:
    table = Table(
        columns=["d", "r", "d^2/r", "Algorithm 4", "knows r", "naive universal"],
        title="Search times (same instances, three searchers)",
    )
    for distance, visibility in ((1.3, 0.3), (1.7, 0.15), (2.1, 0.08), (1.5, 0.04)):
        instance = SearchInstance(target=Vec2.polar(distance, 2.4), visibility=visibility)
        bound = theorem1_search_bound(distance, visibility)
        universal = simulate_search(UniversalSearch(), instance, bound_multiple_horizon(bound, 1.5))
        clairvoyant = simulate_search(
            ConcentricCoverageSearch(visibility), instance, bound_multiple_horizon(bound, 1.5)
        )
        naive = simulate_search(DiagonalHedgingSearch(), instance, fixed_horizon(bound * 80.0))
        table.add_row(
            [
                distance,
                visibility,
                instance.difficulty,
                universal.time,
                clairvoyant.time,
                naive.time if naive.solved else "timeout",
            ]
        )
    print(table.to_text())
    print(
        "\nReading: the clairvoyant searcher wins by roughly the log(d^2/r) factor the paper "
        "pays for not knowing r; the naive hedger blows up as r shrinks because it re-searches "
        "the whole disc at every granularity."
    )


if __name__ == "__main__":
    main()
