"""Batched solving through the ``repro.api`` facade.

Run with::

    python examples/batch_solve.py

A sweep of rendezvous specs (varying hidden speed and clock of robot R')
goes through one ``BatchRunner``: every spec is solved through the backend
registry, duplicate specs are served from the LRU cache, and the whole
batch comes back as uniform ``SolveResult`` envelopes that round-trip
through JSON.
"""

from __future__ import annotations

import json

from repro.api import BatchRunner, RendezvousProblem, spec_from_json


def build_sweep() -> list[RendezvousProblem]:
    """Rendezvous specs over a grid of hidden speeds and clock units."""
    specs = []
    for speed in (0.5, 0.75, 1.0, 1.5):
        for time_unit in (0.5, 1.0):
            specs.append(
                RendezvousProblem(
                    distance=1.6,
                    bearing=0.9,
                    visibility=0.35,
                    speed=speed,
                    time_unit=time_unit,
                )
            )
    return specs


def main() -> None:
    specs = build_sweep()

    # Every spec serializes, hashes canonically and survives a JSON round trip.
    assert all(spec_from_json(spec.to_json()) == spec for spec in specs)

    runner = BatchRunner(backend="auto")  # simulates when it can, bounds otherwise
    results, stats = runner.run(specs)

    print(f"{'v':>5} {'tau':>5} {'feasible':>8} {'measured':>10} {'bound':>10} {'ratio':>6}")
    for spec, result in zip(specs, results):
        measured = f"{result.measured_time:.4g}" if result.measured_time is not None else "-"
        bound = f"{result.bound:.4g}" if result.bound is not None else "-"
        ratio = f"{result.bound_ratio:.3f}" if result.bound_ratio is not None else "-"
        print(
            f"{spec.speed:5.2f} {spec.time_unit:5.2f} {str(result.feasible):>8} "
            f"{measured:>10} {bound:>10} {ratio:>6}"
        )
    print()
    print(stats.describe())

    # Re-running the same batch is ~free: every spec hits the result cache.
    _, warm = runner.run(specs)
    print(warm.describe())

    # The envelope is the wire format: ship it, store it, re-read it.
    print()
    print("one envelope, as shipped over the wire:")
    print(json.dumps(results[0].to_dict(), indent=2, sort_keys=True)[:400] + " ...")


if __name__ == "__main__":
    main()
