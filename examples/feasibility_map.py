"""Which attribute differences make rendezvous possible? (Theorem 4)

Run with::

    python examples/feasibility_map.py

The script sweeps the four hidden attributes one at a time (and in the
mirrored combinations the paper singles out), applies the Theorem 4
feasibility test, and for a few representative cells double-checks the
verdict by simulation: feasible cells must actually rendezvous within the
analytic bound, infeasible cells must keep the robots apart.
"""

from __future__ import annotations

import math

from repro.analysis import Table
from repro.core import classify_feasibility, solve_rendezvous
from repro.geometry import Vec2
from repro.robots import RobotAttributes
from repro.simulation import RendezvousInstance, fixed_horizon


def main() -> None:
    configurations = [
        ("identical robots", RobotAttributes()),
        ("slower partner (v = 0.7)", RobotAttributes(speed=0.7)),
        ("faster partner (v = 1.4)", RobotAttributes(speed=1.4)),
        ("slower clock (tau = 0.5)", RobotAttributes(time_unit=0.5)),
        ("rotated compass (phi = 2)", RobotAttributes(orientation=2.0)),
        ("mirrored only (chi = -1)", RobotAttributes(chirality=-1)),
        ("mirrored + rotated", RobotAttributes(orientation=1.2, chirality=-1)),
        ("mirrored + slower (v = 0.7)", RobotAttributes(speed=0.7, chirality=-1)),
        ("mirrored + slower clock", RobotAttributes(time_unit=0.5, chirality=-1)),
    ]

    table = Table(
        columns=["configuration", "feasible (Theorem 4)", "why"],
        title="Feasibility of rendezvous by attribute difference",
    )
    for label, attributes in configurations:
        verdict = classify_feasibility(attributes)
        table.add_row([label, verdict.feasible, "; ".join(verdict.reasons)])
    print(table.to_text())
    print()

    # Spot-check one feasible and one infeasible cell by simulation.
    feasible_instance = RendezvousInstance(
        separation=Vec2(1.2, 0.5), visibility=0.35, attributes=RobotAttributes(orientation=2.0)
    )
    report = solve_rendezvous(feasible_instance)
    print("simulated check (rotated compass):", report.summary().splitlines()[-1])

    infeasible_instance = RendezvousInstance(
        separation=Vec2(1.5, 0.0), visibility=0.3, attributes=RobotAttributes(chirality=-1)
    )
    report = solve_rendezvous(
        infeasible_instance, allow_infeasible=True, horizon=fixed_horizon(500.0)
    )
    print("simulated check (mirrored only):  ", report.outcome.describe())


if __name__ == "__main__":
    main()
