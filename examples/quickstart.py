"""Quickstart: solve one rendezvous instance and compare against the paper's bound.

Run with::

    python examples/quickstart.py

Two robots are dropped 1.7 apart.  Robot R' moves at 60% of R's speed --
that single hidden difference is enough to break symmetry (Theorem 2), and
both robots simply run the universal search algorithm (Algorithm 4).
"""

from __future__ import annotations

from repro import RendezvousInstance, RobotAttributes, Vec2, solve_rendezvous, solve_search
from repro.simulation import SearchInstance


def main() -> None:
    # --- rendezvous -------------------------------------------------------
    instance = RendezvousInstance(
        separation=Vec2(1.5, 0.8),          # unknown to the robots
        visibility=0.3,                      # unknown to the robots
        attributes=RobotAttributes(speed=0.6),
    )
    report = solve_rendezvous(instance)
    print("=== Rendezvous (different speeds, Theorem 2) ===")
    print(report.summary())
    print()

    # --- the underlying search primitive -----------------------------------
    search = SearchInstance(target=Vec2(1.2, 0.7), visibility=0.25)
    search_report = solve_search(search)
    print("=== Search for a static target (Theorem 1) ===")
    print(search_report.summary())


if __name__ == "__main__":
    main()
