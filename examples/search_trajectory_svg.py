"""Visualise the universal search algorithm (Algorithm 4).

Run with::

    python examples/search_trajectory_svg.py

The script simulates Algorithm 4 until a hidden target is spotted, prints a
terminal rendering of the walk and writes an SVG picture
(``examples/output/search_trajectory.svg``) showing the annulus-by-annulus
sweep and the detection point.
"""

from __future__ import annotations

from pathlib import Path

from repro.algorithms import UniversalSearch
from repro.core import solve_search
from repro.geometry import GLOBAL_FRAME, Vec2
from repro.motion import lazy_world_trajectory
from repro.simulation import SearchInstance, record_trace
from repro.viz import plot_traces, render_trace_ascii

OUTPUT_DIRECTORY = Path(__file__).resolve().parent / "output"


def main() -> None:
    instance = SearchInstance(target=Vec2.polar(1.35, 2.3), visibility=0.15)
    report = solve_search(instance)
    print(report.summary())
    print()

    trajectory = lazy_world_trajectory(UniversalSearch().segments(), GLOBAL_FRAME)
    trace = record_trace(trajectory, until=report.time, samples=1500, label="Algorithm 4")
    target_trace = record_trace(
        # A static "trajectory" for the target so it shows up in the legend.
        trajectory=_static(instance.target, report.time),
        until=report.time,
        samples=2,
        label="target",
    )
    print(render_trace_ascii([trace, target_trace], width=78, height=30))

    path = plot_traces(
        [trace, target_trace],
        OUTPUT_DIRECTORY / "search_trajectory.svg",
        visibility=instance.visibility,
        event=report.outcome.event,
        title=f"Algorithm 4 finds the target at t = {report.time:.2f}",
    )
    print(f"\nSVG written to {path}")


def _static(point: Vec2, duration: float):
    from repro.motion import Trajectory

    return Trajectory.stationary(point, duration)


if __name__ == "__main__":
    main()
