"""Rendezvous with asymmetric clocks (Algorithm 7, Theorem 3).

Run with::

    python examples/asymmetric_clocks.py

The robots are identical except for their clock: one local time unit of R'
lasts only half of R's.  Neither robot knows this.  Both run Algorithm 7 --
wait for 2 S(n), then search with SearchAll(n) / SearchAllRev(n) -- and the
clock drift eventually makes one robot search while the other waits.  The
script prints the two schedules, the growing overlap windows, and the
simulated meeting, and writes the Figure 1/3-style diagrams as SVG.
"""

from __future__ import annotations

from pathlib import Path

from repro.core import (
    RoundSchedule,
    guaranteed_discovery_round,
    lemma13_round_bound,
    measured_overlap,
    solve_rendezvous,
    theorem3_time_bound,
)
from repro.geometry import Vec2
from repro.robots import RobotAttributes
from repro.simulation import RendezvousInstance
from repro.viz import overlap_rows, plot_schedule_svg, render_schedule_ascii

OUTPUT_DIRECTORY = Path(__file__).resolve().parent / "output"
TAU = 0.5


def main() -> None:
    # --- the schedules and their overlap ------------------------------------
    print("Schedules of the two robots (w = waiting/inactive, a = active):\n")
    rows = overlap_rows(4, TAU)
    print(render_schedule_ascii(rows, width=90))
    print()
    print("overlap of R's active phase k with R''s inactive phases:")
    for k in range(2, 8):
        window = measured_overlap(k, k + 1, TAU)
        print(f"  k = {k}: overlap = {window.amount:12.2f}")
    print()

    # --- the simulated rendezvous -------------------------------------------
    instance = RendezvousInstance(
        separation=Vec2(1.0, 0.4), visibility=0.45, attributes=RobotAttributes(time_unit=TAU)
    )
    report = solve_rendezvous(instance)
    print(report.summary())
    n = guaranteed_discovery_round(instance.distance, instance.visibility)
    k_star = lemma13_round_bound(TAU, n)
    bound = theorem3_time_bound(instance.distance, instance.visibility, TAU)
    print(
        f"\nLemma 13 round bound k* = {k_star} (stationary-target round n = {n}); "
        f"Theorem 3 time bound = {bound:.4g}"
    )

    # --- figures ----------------------------------------------------------------
    schedule_path = plot_schedule_svg(
        rows, OUTPUT_DIRECTORY / "asymmetric_clock_schedules.svg", title=f"Algorithm 7 schedules, tau = {TAU}"
    )
    figure1_path = plot_schedule_svg(
        [(f"tau=1", [(p.start, p.end, "w" if p.kind == "inactive" else "a") for p in RoundSchedule(1.0).phases(3)])],
        OUTPUT_DIRECTORY / "figure1_rounds.svg",
        title="Figure 1: three rounds of Algorithm 7",
    )
    print(f"\nSVG written to {schedule_path} and {figure1_path}")


if __name__ == "__main__":
    main()
