"""Gathering a small swarm (extension of the paper's two-robot results).

Run with::

    python examples/gathering_swarm.py

Four robots with pairwise-distinct speeds all run the same algorithm; every
pair eventually sees each other (Theorem 2 applied pairwise).  A second swarm
contains two attribute-identical robots: that pair can never be forced to
meet, but the "has seen" graph still becomes connected through the third
robot -- the distinction between pairwise and connectivity gathering.
"""

from __future__ import annotations

from repro.algorithms import UniversalSearch
from repro.gathering import GatheringInstance, simulate_gathering, swarm_feasibility
from repro.geometry import Vec2
from repro.robots import RobotAttributes


def main() -> None:
    # --- a fully heterogeneous swarm -----------------------------------------
    swarm = GatheringInstance.create(
        positions=[Vec2(0.0, 0.0), Vec2(1.1, 0.2), Vec2(0.4, 1.0), Vec2(-0.8, 0.6)],
        attributes=[RobotAttributes(speed=s) for s in (0.5, 0.75, 1.0, 1.25)],
        visibility=0.4,
    )
    print(swarm_feasibility(swarm).describe())
    print()
    outcome = simulate_gathering(swarm, horizon=20000.0, algorithm=UniversalSearch())
    print(outcome.describe())
    print()

    # --- a swarm with attribute-identical twins -----------------------------------
    twins = GatheringInstance.create(
        positions=[Vec2(0.0, 0.0), Vec2(1.2, 0.0), Vec2(0.5, 0.9)],
        attributes=[RobotAttributes(), RobotAttributes(), RobotAttributes(time_unit=0.5)],
        visibility=0.45,
    )
    print(swarm_feasibility(twins).describe())
    print()
    print(simulate_gathering(twins, horizon=20000.0).describe())


if __name__ == "__main__":
    main()
