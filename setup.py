"""Setuptools shim.

The execution environment ships an older setuptools without the ``wheel``
package, so PEP 517/660 editable installs are unavailable offline.  This
shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` fall
back to the classic ``setup.py develop`` code path.  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
