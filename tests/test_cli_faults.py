"""CLI surface of the faults subsystem: --fault-model/--trials/--mc-seed, suites."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def _solve_args(*extra: str) -> list[str]:
    return [
        "solve",
        "--kind",
        "rendezvous",
        "--distance",
        "1.6",
        "--visibility",
        "0.35",
        "--speed",
        "0.7",
        "--bearing",
        "0.9",
        "--json",
        *extra,
    ]


def _run_json(capsys, args: list[str]) -> dict:
    assert main(args) == 0
    out = capsys.readouterr().out
    return json.loads(out[out.index("{") :])


class TestFaultFlags:
    def test_fault_model_json_attaches_to_the_spec(self, capsys):
        payload = _run_json(
            capsys,
            _solve_args(
                "--backend",
                "montecarlo",
                "--fault-model",
                '{"kind": "crash-stop", "robot": "other", "crash_time": 2.0, "jitter": 0.2}',
                "--trials",
                "4",
                "--mc-seed",
                "3",
            ),
        )
        fault = payload["spec"]["fault_model"]
        assert fault["kind"] == "crash-stop"
        assert fault["trials"] == 4
        assert fault["mc_seed"] == 3
        assert payload["details"]["trials"] == 4
        assert payload["provenance"]["backend"] == "montecarlo"

    def test_trials_alone_wraps_a_none_carrier(self, capsys):
        payload = _run_json(capsys, _solve_args("--backend", "montecarlo", "--trials", "6"))
        fault = payload["spec"]["fault_model"]
        assert fault["kind"] == "none"
        assert fault["trials"] == 6
        # Deterministic spec: the backend collapses to one actual trial.
        assert payload["details"]["trials"] == 1
        assert payload["details"]["trials_requested"] == 6

    def test_invalid_fault_model_json_fails_cleanly(self, capsys):
        assert main(_solve_args("--fault-model", "{not json")) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_fault_field_fails_cleanly(self, capsys):
        assert main(_solve_args("--fault-model", '{"kind": "none", "bogus": 1}')) == 1
        assert "error" in capsys.readouterr().err

    def test_no_fault_flags_leaves_the_spec_untouched(self, capsys):
        payload = _run_json(capsys, _solve_args("--backend", "simulation"))
        # The canonical payload omits an unset fault model entirely -- the
        # backward-compatibility contract of the schema change.
        assert "fault_model" not in payload["spec"]

    def test_gathering_specs_reject_fault_overrides(self, capsys, tmp_path):
        from repro.api import GatheringMember, GatheringProblem

        spec = GatheringProblem(
            members=(GatheringMember(0.0, 0.0), GatheringMember(1.0, 0.5, speed=0.8)),
            visibility=0.4,
        )
        path = tmp_path / "specs.json"
        path.write_text(spec.to_json())
        code = main(["solve", "--spec-file", str(path), "--trials", "4", "--json"])
        assert code == 1
        assert "fault" in capsys.readouterr().err


class TestSuitesCommand:
    def test_json_rows_carry_fault_counts_and_digest(self, capsys):
        assert main(["suites", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        assert by_name["fault-crash-sweep"]["faulted"] == by_name["fault-crash-sweep"]["specs"]
        assert by_name["fault-byzantine"]["faulted"] == 12
        assert by_name["search-sweep"]["faulted"] == 0
        for row in rows:
            assert len(row["digest"]) == 12
            int(row["digest"], 16)  # hex

    def test_digest_is_stable_across_invocations(self, capsys):
        assert main(["suites", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["suites", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_text_output_lists_fault_suites(self, capsys):
        assert main(["suites"]) == 0
        out = capsys.readouterr().out
        assert "fault-crash-sweep" in out
        assert "faulted" in out


class TestFaultSuitesContent:
    def test_crash_sweep_contains_the_symmetry_breaking_case(self):
        from repro.workloads import fault_crash_sweep_suite

        specs = fault_crash_sweep_suite()
        assert all(spec.fault_model is not None for spec in specs)
        crossover = [
            spec
            for spec in specs
            if spec.kind == "rendezvous"
            and spec.fault_model.robot == "other"
            and spec.speed == 1.0
            and spec.bearing == 0.0
        ]
        assert crossover, "expected the infeasible identical-robots crash case"

    def test_byzantine_suite_is_all_randomized(self):
        from repro.workloads import fault_byzantine_suite

        specs = fault_byzantine_suite()
        assert len(specs) == 12
        assert all(spec.fault_model.kind == "byzantine" for spec in specs)
        assert all(spec.fault_model.randomized for spec in specs)

    def test_suite_hashes_are_distinct(self):
        from repro.workloads import fault_byzantine_suite, fault_crash_sweep_suite

        hashes = [
            spec.canonical_hash()
            for spec in fault_crash_sweep_suite() + fault_byzantine_suite()
        ]
        assert len(set(hashes)) == len(hashes)
