"""Tests for the error hierarchy, constants and package metadata."""

from __future__ import annotations

import math

import pytest

import repro
from repro import constants
from repro.errors import (
    ExperimentError,
    HorizonExceededError,
    InfeasibleConfigurationError,
    InvalidParameterError,
    ReproError,
    SimulationError,
    TimeOutOfRangeError,
    TrajectoryError,
)


class TestErrorHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        for error_type in (
            InvalidParameterError,
            TrajectoryError,
            TimeOutOfRangeError,
            SimulationError,
            HorizonExceededError,
            InfeasibleConfigurationError,
            ExperimentError,
        ):
            assert issubclass(error_type, ReproError)

    def test_invalid_parameter_error_is_also_a_value_error(self):
        assert issubclass(InvalidParameterError, ValueError)

    def test_horizon_exceeded_records_the_horizon(self):
        error = HorizonExceededError(123.0)
        assert error.horizon == pytest.approx(123.0)
        assert "123" in str(error)

    def test_horizon_exceeded_custom_message(self):
        error = HorizonExceededError(10.0, "custom message")
        assert str(error) == "custom message"


class TestConstants:
    def test_factors_are_consistent_multiples_of_pi_plus_one(self):
        base = math.pi + 1.0
        assert constants.SEARCH_CIRCLE_FACTOR == pytest.approx(2 * base)
        assert constants.SEARCH_ROUND_FACTOR == pytest.approx(3 * base)
        assert constants.THEOREM1_FACTOR == pytest.approx(6 * base)
        assert constants.SEARCH_ALL_FACTOR == pytest.approx(12 * base)
        assert constants.PHASE_FACTOR == pytest.approx(24 * base)

    def test_tolerances_are_small_and_positive(self):
        assert 0.0 < constants.TIME_TOLERANCE < 1e-6
        assert 0.0 < constants.DISTANCE_TOLERANCE < 1e-6


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points_are_importable_from_the_top_level(self):
        assert callable(repro.solve_search)
        assert callable(repro.solve_rendezvous)
        assert callable(repro.is_feasible)
