"""Integration tests for Theorem 1: the universal search algorithm.

These run the full pipeline (algorithm -> frame transform -> simulator ->
bound comparison) on a spread of instances.
"""

from __future__ import annotations

import pytest

from repro.algorithms import UniversalSearch
from repro.core import guaranteed_discovery_round, solve_search, theorem1_search_bound
from repro.core.schedule import universal_search_prefix_duration
from repro.geometry import Vec2
from repro.simulation import SearchInstance, bound_multiple_horizon, simulate_search
from repro.workloads import InstanceGenerator


class TestTheorem1:
    @pytest.mark.parametrize(
        "distance,visibility",
        [(0.6, 0.2), (1.0, 0.1), (1.7, 0.3), (2.4, 0.15), (3.1, 0.05), (4.0, 0.4)],
    )
    @pytest.mark.parametrize("bearing", [0.0, 1.9, 4.1])
    def test_search_finishes_below_the_bound(self, distance, visibility, bearing):
        instance = SearchInstance(target=Vec2.polar(distance, bearing), visibility=visibility)
        report = solve_search(instance)
        assert report.time < report.bound

    def test_search_finishes_by_the_guaranteed_round(self):
        generator = InstanceGenerator(seed=42)
        for instance in generator.search_suite(10):
            report = solve_search(instance)
            deadline = universal_search_prefix_duration(
                guaranteed_discovery_round(instance.distance, instance.visibility)
            )
            assert report.time <= deadline + 1e-6

    def test_detection_is_within_the_visibility_radius(self):
        generator = InstanceGenerator(seed=1)
        for instance in generator.search_suite(5):
            outcome = simulate_search(
                UniversalSearch(),
                instance,
                bound_multiple_horizon(theorem1_search_bound(instance.distance, instance.visibility)),
            )
            assert outcome.solved
            assert outcome.event.gap <= instance.visibility + 1e-6

    def test_harder_instances_take_longer_in_the_worst_case_bound(self):
        easy = solve_search(SearchInstance(target=Vec2(1.0, 0.0), visibility=0.5))
        hard = solve_search(SearchInstance(target=Vec2(3.0, 0.0), visibility=0.05))
        assert hard.bound > easy.bound

    def test_search_time_is_independent_of_the_unknown_attributes(self):
        """A searcher's own attributes only rescale time/space consistently.

        With tau = 1 and speed v the same algorithm finds a target at
        distance v*d with visibility v*r in exactly the same global time as
        the unit robot finds (d, r) -- the scale invariance behind Lemma 6.
        """
        from repro.robots import RobotAttributes

        base = SearchInstance(target=Vec2(1.3, 0.4), visibility=0.25)
        scaled = SearchInstance(
            target=Vec2(1.3 * 0.5, 0.4 * 0.5),
            visibility=0.25 * 0.5,
            attributes=RobotAttributes(speed=0.5),
        )
        horizon = bound_multiple_horizon(theorem1_search_bound(base.distance, base.visibility), 1.5)
        time_base = simulate_search(UniversalSearch(), base, horizon).time
        time_scaled = simulate_search(UniversalSearch(), scaled, horizon).time
        assert time_scaled == pytest.approx(time_base, rel=1e-6)
