"""Integration tests for Theorem 2: rendezvous with symmetric clocks."""

from __future__ import annotations

import math

import pytest

from repro.algorithms import UniversalSearch
from repro.core import RendezvousReduction, solve_rendezvous
from repro.geometry import Vec2
from repro.robots import RobotAttributes
from repro.simulation import RendezvousInstance, fixed_horizon, simulate_rendezvous, simulate_search
from repro.simulation import SearchInstance


class TestTheorem2EqualChirality:
    @pytest.mark.parametrize("speed", [0.4, 0.8, 1.5])
    @pytest.mark.parametrize("orientation", [0.0, math.pi / 2, math.pi])
    def test_rendezvous_below_the_bound(self, speed, orientation):
        if speed == 1.0 and orientation == 0.0:
            pytest.skip("infeasible configuration")
        instance = RendezvousInstance(
            separation=Vec2(1.4, 0.5),
            visibility=0.35,
            attributes=RobotAttributes(speed=speed, orientation=orientation),
        )
        report = solve_rendezvous(instance)
        assert report.solved
        assert report.time < report.bound

    def test_pure_orientation_difference_is_enough(self):
        instance = RendezvousInstance(
            separation=Vec2(0.0, 1.2),
            visibility=0.3,
            attributes=RobotAttributes(orientation=math.pi / 2),
        )
        report = solve_rendezvous(instance)
        assert report.solved

    def test_reduction_predicts_the_simulated_rendezvous_time(self):
        """The two-robot simulation and the induced one-robot search agree.

        For equal clocks the rendezvous time of Algorithm 4 equals the time
        at which the *equivalent searcher* (the trajectory scaled by T_circ)
        reaches the static target d -- this is Definition 1 made executable.
        """
        attributes = RobotAttributes(speed=0.7, orientation=1.1)
        separation = Vec2(1.1, -0.6)
        visibility = 0.3
        instance = RendezvousInstance(separation=separation, visibility=visibility, attributes=attributes)
        rendezvous_time = solve_rendezvous(instance).time

        reduction = RendezvousReduction(attributes)
        # For chi = +1 Lemma 5 gives T_circ = Phi * (mu I), so the condition
        # |T_circ S(t) - d| <= r is the search condition for the target
        # Phi^T d / mu with visibility r / mu.
        phi_matrix, _ = reduction.qr_factors()
        mu = reduction.mu
        equivalent_instance = SearchInstance(
            target=phi_matrix.transpose().apply(separation) / mu,
            visibility=visibility / mu,
        )
        search_time = simulate_search(
            UniversalSearch(), equivalent_instance, fixed_horizon(rendezvous_time * 3.0 + 10.0)
        ).time
        assert search_time == pytest.approx(rendezvous_time, rel=1e-2)


class TestTheorem2OppositeChirality:
    @pytest.mark.parametrize("speed", [0.3, 0.6, 0.85])
    def test_mirrored_slow_robot_rendezvous_below_bound(self, speed):
        instance = RendezvousInstance(
            separation=Vec2(1.2, 0.4),
            visibility=0.4,
            attributes=RobotAttributes(speed=speed, orientation=2.0, chirality=-1),
        )
        report = solve_rendezvous(instance)
        assert report.solved
        assert report.time < report.bound

    def test_mirrored_equal_speed_does_not_meet_under_adversarial_placement(self):
        # For phi = 0 the mirror-invariant direction is the x axis, so an
        # x-aligned separation can never be reduced (the impossibility half
        # of Theorem 4); a y-aligned separation, by contrast, *can* be met
        # by luck, which is why the adversarial placement matters.
        instance = RendezvousInstance(
            separation=Vec2(1.5, 0.0),
            visibility=0.3,
            attributes=RobotAttributes(orientation=0.0, chirality=-1),
        )
        outcome = simulate_rendezvous(UniversalSearch(), instance, fixed_horizon(800.0))
        assert not outcome.solved

    def test_mirrored_fast_robot_still_meets(self):
        instance = RendezvousInstance(
            separation=Vec2(1.0, 0.6),
            visibility=0.4,
            attributes=RobotAttributes(speed=1.6, orientation=1.0, chirality=-1),
        )
        report = solve_rendezvous(instance)
        assert report.solved
        assert report.bound is not None and report.time < report.bound
