"""Integration tests for Theorems 3-4: asymmetric clocks and feasibility."""

from __future__ import annotations

import math

import pytest

from repro.algorithms import UniversalSearch, WaitAndSearchRendezvous
from repro.core import (
    classify_feasibility,
    guaranteed_discovery_round,
    lemma13_round_bound,
    inactive_phase_start,
    solve_rendezvous,
    theorem3_time_bound,
)
from repro.geometry import Vec2
from repro.robots import RobotAttributes
from repro.simulation import RendezvousInstance, fixed_horizon, simulate_rendezvous
from repro.workloads import feasibility_grid, infeasible_mirrored_instance


class TestTheorem3:
    @pytest.mark.parametrize("tau", [0.5, 0.6, 0.75])
    def test_asymmetric_clocks_meet_below_the_theorem3_bound(self, tau):
        instance = RendezvousInstance(
            separation=Vec2(1.0, 0.35), visibility=0.45, attributes=RobotAttributes(time_unit=tau)
        )
        report = solve_rendezvous(instance)
        assert report.solved
        bound = theorem3_time_bound(instance.distance, instance.visibility, tau)
        assert report.time < bound

    def test_rendezvous_round_respects_lemma13(self):
        tau = 0.5
        instance = RendezvousInstance(
            separation=Vec2(0.9, 0.5), visibility=0.45, attributes=RobotAttributes(time_unit=tau)
        )
        report = solve_rendezvous(instance)
        n = guaranteed_discovery_round(instance.distance, instance.visibility)
        k_star = lemma13_round_bound(tau, n)
        assert report.time <= inactive_phase_start(k_star + 1)

    def test_clock_difference_combined_with_other_differences_still_works(self):
        instance = RendezvousInstance(
            separation=Vec2(1.1, 0.2),
            visibility=0.4,
            attributes=RobotAttributes(speed=0.7, time_unit=0.5, orientation=2.0, chirality=-1),
        )
        report = solve_rendezvous(instance)
        assert report.solved

    def test_algorithm7_also_solves_speed_only_differences(self):
        """Theorem 4: the universal algorithm covers the equal-clock cases too."""
        instance = RendezvousInstance(
            separation=Vec2(1.2, 0.3), visibility=0.4, attributes=RobotAttributes(speed=0.6)
        )
        outcome = simulate_rendezvous(WaitAndSearchRendezvous(), instance, fixed_horizon(6000.0))
        assert outcome.solved

    def test_algorithm7_also_solves_orientation_only_differences(self):
        instance = RendezvousInstance(
            separation=Vec2(1.0, 0.5),
            visibility=0.4,
            attributes=RobotAttributes(orientation=math.pi / 2),
        )
        outcome = simulate_rendezvous(WaitAndSearchRendezvous(), instance, fixed_horizon(6000.0))
        assert outcome.solved

    def test_fast_clock_instance_via_role_swap(self):
        instance = RendezvousInstance(
            separation=Vec2(0.9, 0.4), visibility=0.45, attributes=RobotAttributes(time_unit=2.0)
        )
        report = solve_rendezvous(instance)
        assert report.solved


class TestTheorem4Feasibility:
    def test_grid_agreement(self):
        """Every labelled grid configuration behaves as Theorem 4 predicts."""
        for label, instance, expected in feasibility_grid():
            verdict = classify_feasibility(instance.attributes)
            assert verdict.feasible == expected, label

    def test_infeasible_gap_is_exactly_preserved_for_identical_robots(self):
        instance = RendezvousInstance(
            separation=Vec2(0.7, 1.1), visibility=0.2, attributes=RobotAttributes()
        )
        pair = instance.robot_pair()
        reference = pair.reference.world_trajectory(UniversalSearch())
        other = pair.other.world_trajectory(UniversalSearch())
        for t in (0.0, 5.0, 40.0, 123.4):
            gap = reference.position(t).distance_to(other.position(t))
            assert gap == pytest.approx(instance.distance, abs=1e-9)

    def test_infeasible_mirrored_gap_never_shrinks_below_the_invariant(self):
        instance = infeasible_mirrored_instance(orientation=1.2, distance=1.5, visibility=0.3)
        pair = instance.robot_pair()
        reference = pair.reference.world_trajectory(UniversalSearch())
        other = pair.other.world_trajectory(UniversalSearch())
        for t in (0.0, 3.0, 17.0, 99.0, 250.0):
            gap = reference.position(t).distance_to(other.position(t))
            assert gap >= instance.distance - 1e-9

    def test_infeasible_instances_do_not_meet_with_algorithm7_either(self):
        instance = infeasible_mirrored_instance(orientation=2.2, distance=1.5, visibility=0.3)
        outcome = simulate_rendezvous(WaitAndSearchRendezvous(), instance, fixed_horizon(900.0))
        assert not outcome.solved
