"""The shipped tree must satisfy its own linter.

This is the ISSUE's self-check: the committed baseline matches reality,
so ``repro lint --strict`` exits 0 on the real ``src/repro`` -- and the
CI gate cannot silently drift from what a contributor sees locally.
"""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.cli import main
from repro.lint import Baseline, run_lint

PACKAGE_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = PACKAGE_ROOT.parent.parent
BASELINE = REPO_ROOT / "lint-baseline.json"


class TestWholeTree:
    def test_shipped_baseline_matches_reality(self):
        report = run_lint(PACKAGE_ROOT, baseline=Baseline.load(BASELINE))
        assert report.new == [], "\n".join(
            finding.render() for finding in report.new
        )

    def test_baseline_carries_no_stale_entries(self):
        """Every baselined key still corresponds to a real finding."""
        baseline = Baseline.load(BASELINE)
        report = run_lint(PACKAGE_ROOT, baseline=baseline)
        live_keys = {finding.key for finding in report.baselined}
        stale = set(baseline.counts) - live_keys
        assert stale == set(), f"stale baseline entries: {sorted(stale)}"

    def test_hot_paths_are_fixed_not_baselined(self):
        """Serving/cluster findings must be fixed, never baselined."""
        baseline = Baseline.load(BASELINE)
        hot = [
            entry
            for entry in baseline.meta.values()
            if entry["path"].startswith(("repro/service/", "repro/cluster/"))
        ]
        assert hot == []


class TestCli:
    def test_strict_run_exits_zero(self, capsys):
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out

    def test_json_report_schema(self, capsys):
        assert main(["lint", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert set(document) == {
            "version",
            "strict",
            "counts",
            "total",
            "new",
            "baselined",
            "suppressed",
            "findings",
        }
        assert document["new"] == 0

    def test_path_filter_restricts_reporting(self, capsys):
        assert main(["lint", "--strict", "api"]) == 0
        assert main(["lint", "--strict", "src/repro/service"]) == 0

    def test_strict_fails_on_a_regression(self, tmp_path, capsys, monkeypatch):
        """A synthetic regression in a copy of the CLI flow: non-zero exit."""
        from repro.lint import LintConfig

        root = tmp_path / "repro"
        (root / "api").mkdir(parents=True)
        (root / "__init__.py").touch()
        (root / "api" / "__init__.py").touch()
        (root / "api" / "out.py").write_text(
            "import json\n\ndef f(payload):\n    return json.dumps(payload)\n"
        )
        config = LintConfig(
            taint_roots=(),
            protocol_module="repro.nope",
            frames_module="repro.nope2",
            wire_modules=(),
            dispatchers=(),
        )
        report = run_lint(root, config=config, baseline=Baseline())
        assert report.exit_code(strict=True) == 1
        assert report.exit_code(strict=False) == 0
