"""R001: nondeterminism inside the fingerprint-tainted set."""

from __future__ import annotations

from repro.lint import LintConfig


class TestTruePositives:
    def test_clock_in_taint_root(self, lint_tree, taint_config):
        findings = lint_tree(
            {
                "api/spec.py": """\
                import time

                def canonical_hash():
                    return str(time.time())
                """
            },
            taint_config,
            rule="R001",
        )
        assert len(findings) == 1
        assert "time.time" in findings[0].message
        assert findings[0].path == "repro/api/spec.py"

    def test_taint_propagates_along_imports(self, lint_tree, taint_config):
        """A helper the root imports is tainted even two hops out."""
        findings = lint_tree(
            {
                "api/spec.py": "from ..geometry import helpers\n",
                "geometry/helpers.py": "from . import deep\n",
                "geometry/deep.py": """\
                import random

                def jitter():
                    return random.random()
                """,
            },
            taint_config,
            rule="R001",
        )
        assert len(findings) == 1
        assert findings[0].path == "repro/geometry/deep.py"
        assert "process-global RNG" in findings[0].message

    def test_builtin_hash_and_unseeded_default_rng(self, lint_tree, taint_config):
        findings = lint_tree(
            {
                "api/spec.py": """\
                import numpy as np

                def fingerprint(spec):
                    rng = np.random.default_rng()
                    return hash(spec) + rng.integers(10)
                """
            },
            taint_config,
            rule="R001",
        )
        messages = sorted(finding.message for finding in findings)
        assert len(findings) == 2
        assert any("hash()" in message for message in messages)
        assert any("without a seed" in message for message in messages)

    def test_set_iteration_feeding_serialization(self, lint_tree, taint_config):
        findings = lint_tree(
            {
                "api/spec.py": """\
                def serialize(items):
                    out = []
                    for item in set(items):
                        out.append(item)
                    return out
                """
            },
            taint_config,
            rule="R001",
        )
        assert len(findings) == 1
        assert "hash-salt ordered" in findings[0].message


class TestFalsePositiveGuards:
    def test_untainted_module_is_never_flagged(self, lint_tree, taint_config):
        """The same clock call outside the tainted set: no finding.

        Transport code timing request latency must stay lint-clean --
        fingerprints neutralise wall_time.
        """
        findings = lint_tree(
            {
                "api/spec.py": "VALUE = 1\n",
                "service/metrics.py": """\
                import time

                def observe():
                    return time.time()
                """,
            },
            taint_config,
            rule="R001",
        )
        assert findings == []

    def test_seeded_rng_construction_is_clean(self, lint_tree, taint_config):
        findings = lint_tree(
            {
                "api/spec.py": """\
                import random
                import numpy as np

                def trial_rng(seed):
                    return random.Random(seed), np.random.default_rng(seed)
                """
            },
            taint_config,
            rule="R001",
        )
        assert findings == []

    def test_sorted_set_iteration_is_clean(self, lint_tree, taint_config):
        findings = lint_tree(
            {
                "api/spec.py": """\
                def serialize(items):
                    return [item for item in sorted(set(items))] + [len(set(items))]
                """
            },
            taint_config,
            rule="R001",
        )
        assert findings == []


class TestSyntheticRegression:
    def test_reintroducing_wall_clock_into_result_fails_strict(self, lint_tree):
        """The guard the rule exists for: a clock sneaking into results."""
        config = LintConfig(
            taint_roots=("repro.api.result",),
            protocol_module="repro.nope",
            frames_module="repro.nope2",
            wire_modules=(),
            dispatchers=(),
        )
        findings = lint_tree(
            {
                "api/result.py": """\
                import time

                def fingerprint(result):
                    return {"stamp": time.time_ns()}
                """
            },
            config,
            rule="R001",
        )
        assert len(findings) == 1
