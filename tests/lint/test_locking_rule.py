"""R002: guarded-somewhere attributes must be guarded everywhere."""

from __future__ import annotations


class TestTruePositives:
    def test_pre_pr4_kernel_cache_pattern(self, lint_tree, no_taint_config):
        """The shared-cache bug PR 4 fixed: one locked path, one not.

        The cache dict is mutated under ``self._lock`` on the publish
        path and *without* it on the eviction path -- exactly the
        pattern that corrupted compiled trajectories.
        """
        findings = lint_tree(
            {
                "simulation/kernel.py": """\
                import threading

                class CompiledCache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._chunks = {}

                    def publish(self, key, chunk):
                        with self._lock:
                            self._chunks[key] = chunk

                    def evict(self, key):
                        self._chunks.pop(key, None)
                """
            },
            no_taint_config,
            rule="R002",
        )
        assert len(findings) == 1
        assert "_chunks" in findings[0].message
        assert "evict" in findings[0].message

    def test_plain_and_augmented_assignment(self, lint_tree, no_taint_config):
        findings = lint_tree(
            {
                "service/state.py": """\
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def reset_unsafely(self):
                        self._count = 0
                """
            },
            no_taint_config,
            rule="R002",
        )
        assert len(findings) == 1
        assert "reset_unsafely" in findings[0].message


class TestFalsePositiveGuards:
    def test_writes_in_init_are_construction_not_races(self, lint_tree, no_taint_config):
        """R002 must not flag ``__init__``: nothing else sees the object."""
        findings = lint_tree(
            {
                "service/state.py": """\
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}
                        self._items["warm"] = 1

                    def put(self, key, value):
                        with self._lock:
                            self._items[key] = value
                """
            },
            no_taint_config,
            rule="R002",
        )
        assert findings == []

    def test_never_locked_attribute_is_not_this_rules_business(
        self, lint_tree, no_taint_config
    ):
        """Loop-confined asyncio state owns no lock and must stay clean."""
        findings = lint_tree(
            {
                "service/aio.py": """\
                import threading

                class AsyncServer:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._guarded = 0
                        self._hot = {}

                    def record(self):
                        with self._lock:
                            self._guarded += 1

                    def cache(self, key, value):
                        self._hot[key] = value
                """
            },
            no_taint_config,
            rule="R002",
        )
        assert findings == []

    def test_class_without_a_lock_is_ignored(self, lint_tree, no_taint_config):
        findings = lint_tree(
            {
                "core/plain.py": """\
                class Plain:
                    def __init__(self):
                        self._items = {}

                    def put(self, key, value):
                        self._items[key] = value
                """
            },
            no_taint_config,
            rule="R002",
        )
        assert findings == []

    def test_suppression_for_helper_called_with_lock_held(
        self, lint_tree, no_taint_config
    ):
        """The documented static blind spot: inline-suppress the helper."""
        findings = lint_tree(
            {
                "service/state.py": """\
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}

                    def put(self, key, value):
                        with self._lock:
                            self._items[key] = value
                            self._evict()

                    def _evict(self):
                        # caller holds self._lock
                        self._items.pop(None, None)  # repro-lint: disable=R002
                """
            },
            no_taint_config,
            rule="R002",
        )
        assert findings == []
