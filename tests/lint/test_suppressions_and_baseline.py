"""Inline suppressions, the baseline format, and their interaction."""

from __future__ import annotations

import json

from repro.lint import Baseline, Finding, LintConfig, run_lint

CONFIG = LintConfig(
    taint_roots=(),
    protocol_module="repro.nope",
    frames_module="repro.nope2",
    wire_modules=(),
    dispatchers=(),
)

DIRTY = """\
import json

def a(payload):
    return json.dumps(payload)

def b(payload):
    return json.dumps(payload)
"""


class TestSuppressions:
    def test_same_line_suppression(self, make_tree):
        root = make_tree(
            {
                "api/out.py": (
                    "import json\n"
                    "def f(payload):\n"
                    "    return json.dumps(payload)  # repro-lint: disable=R004\n"
                )
            },
        )
        report = run_lint(root, config=CONFIG)
        assert report.new == []
        assert report.suppressed == 1

    def test_line_above_suppression(self, make_tree):
        """A multi-line call carries the comment on its opening line."""
        root = make_tree(
            {
                "api/out.py": (
                    "import json\n"
                    "def f(payload):\n"
                    "    # repro-lint: disable=R004 -- legacy consumer\n"
                    "    return json.dumps(\n"
                    "        payload,\n"
                    "    )\n"
                )
            },
        )
        report = run_lint(root, config=CONFIG)
        assert report.new == []
        assert report.suppressed == 1

    def test_file_level_suppression(self, make_tree):
        root = make_tree(
            {"api/out.py": "# repro-lint: disable-file=R004\n" + DIRTY},
        )
        report = run_lint(root, config=CONFIG)
        assert report.new == []
        assert report.suppressed == 2

    def test_suppressing_one_rule_leaves_others(self, make_tree):
        root = make_tree(
            {
                "api/out.py": (
                    "import json\n"
                    "def f(payload):\n"
                    "    return json.dumps(payload)  # repro-lint: disable=R001\n"
                )
            },
        )
        report = run_lint(root, config=CONFIG)
        assert len(report.new) == 1
        assert report.new[0].rule == "R004"


class TestBaseline:
    def test_partition_marks_known_findings(self, make_tree):
        root = make_tree({"api/out.py": DIRTY})
        first = run_lint(root, config=CONFIG)
        assert len(first.new) == 2
        baseline = Baseline.from_findings(first.new)
        second = run_lint(root, config=CONFIG, baseline=baseline)
        assert second.new == []
        assert len(second.baselined) == 2
        assert all(finding.baselined for finding in second.baselined)

    def test_extra_occurrence_beyond_count_is_new(self):
        finding = Finding(
            rule="R004", path="repro/api/out.py", line=3, col=11, message="m", hint=""
        )
        twin = Finding(
            rule="R004", path="repro/api/out.py", line=9, col=11, message="m", hint=""
        )
        baseline = Baseline.from_findings([finding])
        new, baselined = baseline.partition([finding, twin])
        assert len(baselined) == 1
        assert len(new) == 1

    def test_keys_are_line_independent(self):
        """Edits above a finding must not churn the baseline."""
        at_line_3 = Finding(
            rule="R004", path="repro/api/out.py", line=3, col=0, message="m", hint=""
        )
        at_line_40 = Finding(
            rule="R004", path="repro/api/out.py", line=40, col=8, message="m", hint=""
        )
        assert at_line_3.key == at_line_40.key

    def test_roundtrip_through_disk(self, tmp_path):
        finding = Finding(
            rule="R001", path="repro/api/spec.py", line=5, col=0, message="msg", hint="h"
        )
        baseline = Baseline.from_findings([finding, finding])
        path = tmp_path / "lint-baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.counts == baseline.counts
        document = json.loads(path.read_text())
        assert document["version"] == 1
        (entry,) = document["entries"].values()
        assert entry["rule"] == "R001"
        assert entry["count"] == 2

    def test_missing_file_loads_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0
