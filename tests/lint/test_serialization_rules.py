"""R004 (json cleanliness) and R005 (frozen-spec mutation)."""

from __future__ import annotations


class TestJsonCleanliness:
    def test_pre_pr3_inf_in_json_pattern(self, lint_tree, no_taint_config):
        """The PR-3 bug class: dumping a float payload with no guard.

        ``json.dumps`` happily writes ``Infinity`` -- not JSON -- and
        the store round-trips it into every consumer downstream.
        """
        findings = lint_tree(
            {
                "api/result.py": """\
                import json

                def to_wire(result):
                    payload = {"expected_time": result.expected_time}
                    return json.dumps(payload, sort_keys=True)
                """
            },
            no_taint_config,
            rule="R004",
        )
        assert len(findings) == 1
        assert "allow_nan=False" in findings[0].message

    def test_explicit_allow_nan_true_is_flagged(self, lint_tree, no_taint_config):
        findings = lint_tree(
            {
                "api/result.py": """\
                import json

                def to_wire(payload):
                    return json.dumps(payload, allow_nan=True)
                """
            },
            no_taint_config,
            rule="R004",
        )
        assert len(findings) == 1
        assert "opts into" in findings[0].message

    def test_allow_nan_false_is_clean(self, lint_tree, no_taint_config):
        findings = lint_tree(
            {
                "api/result.py": """\
                import json

                def to_wire(payload):
                    return json.dumps(payload, sort_keys=True, allow_nan=False)
                """
            },
            no_taint_config,
            rule="R004",
        )
        assert findings == []

    def test_float_free_literal_is_clean(self, lint_tree, no_taint_config):
        """``json.dumps({"op": "shutdown"})`` cannot carry a float."""
        findings = lint_tree(
            {
                "cluster/worker.py": """\
                import json

                def shutdown_line():
                    return json.dumps({"op": "shutdown", "retries": 3, "force": True})
                """
            },
            no_taint_config,
            rule="R004",
        )
        assert findings == []

    def test_literal_with_a_float_is_flagged(self, lint_tree, no_taint_config):
        findings = lint_tree(
            {
                "cluster/worker.py": """\
                import json

                def line():
                    return json.dumps({"timeout": 2.5})
                """
            },
            no_taint_config,
            rule="R004",
        )
        assert len(findings) == 1


class TestFrozenMutation:
    def test_setattr_outside_construction(self, lint_tree, no_taint_config):
        findings = lint_tree(
            {
                "api/spec.py": """\
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Spec:
                    distance: float

                    def rescale(self, factor):
                        object.__setattr__(self, "distance", self.distance * factor)
                """
            },
            no_taint_config,
            rule="R005",
        )
        assert len(findings) == 1
        assert "rescale" in findings[0].message

    def test_post_init_coercion_is_clean(self, lint_tree, no_taint_config):
        """The legitimate window: field coercion during construction."""
        findings = lint_tree(
            {
                "api/spec.py": """\
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Spec:
                    distance: float

                    def __post_init__(self):
                        object.__setattr__(self, "distance", float(self.distance))

                    def __init__(self, distance):
                        object.__setattr__(self, "distance", distance)
                """
            },
            no_taint_config,
            rule="R005",
        )
        assert findings == []

    def test_module_level_setattr_is_flagged(self, lint_tree, no_taint_config):
        findings = lint_tree(
            {
                "api/spec.py": """\
                SPEC = object()
                object.__setattr__(SPEC, "x", 1)
                """
            },
            no_taint_config,
            rule="R005",
        )
        assert len(findings) == 1
