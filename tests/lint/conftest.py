"""Fixture-tree plumbing for the ``repro.lint`` rule tests.

Each test builds a tiny package named ``repro`` under ``tmp_path`` (the
analyzer derives the package prefix from the directory name, so fixture
module names line up with the default ``repro.*`` config), runs the
real linter over it, and asserts on the findings of one rule.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import Baseline, LintConfig, run_lint


def build_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write ``files`` (relative paths -> source) as a ``repro`` package."""
    root = tmp_path / "repro"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").touch()
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        parent = path.parent
        while parent != root:
            init = parent / "__init__.py"
            if not init.exists():
                init.touch()
            parent = parent.parent
    return root


@pytest.fixture
def make_tree(tmp_path):
    """Write a fixture ``repro`` package and return its root path."""

    def make(files: dict[str, str]) -> Path:
        return build_tree(tmp_path, files)

    return make


@pytest.fixture
def lint_tree(tmp_path):
    """Build a fixture package and return its findings for one rule."""

    def run(files: dict[str, str], config: LintConfig, rule: str | None = None):
        root = build_tree(tmp_path, files)
        report = run_lint(root, config=config, baseline=Baseline())
        if rule is None:
            return report
        return [finding for finding in report.new if finding.rule == rule]

    return run


#: A config with no wire schema, so fixture trees for the other rules
#: never trip R003 on their scaffolding.
NO_WIRE = dict(
    protocol_module="repro.no_such_protocol",
    frames_module="repro.no_such_frames",
    wire_modules=(),
    dispatchers=(),
)


@pytest.fixture
def taint_config():
    """Taint rooted at ``repro.api.spec``; wire schema disabled."""
    return LintConfig(taint_roots=("repro.api.spec",), **NO_WIRE)


@pytest.fixture
def no_taint_config():
    """No taint roots and no wire schema: only R002/R004/R005 can fire."""
    return LintConfig(taint_roots=(), **NO_WIRE)
