"""Regression pins for the wire contracts the linter audits (satellite 6).

R003 flagged two reconciliations: ``cluster-status`` was declared in
the router instead of the protocol module, and the cluster front's
client-facing fold partial hand-rolled a record that dropped
``blob_hashes`` relative to the shared builder.  These tests pin the
reconciled state so the schema cannot silently fork again.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.service import protocol
from repro.service.protocol import CLUSTER_STATUS_OP, sweep_partial


class TestVerbDeclaration:
    def test_cluster_status_is_declared_in_the_protocol_module(self):
        assert CLUSTER_STATUS_OP == "cluster-status"
        assert "CLUSTER_STATUS_OP" in protocol.__all__

    def test_router_reexports_the_same_verb(self):
        from repro.cluster import router

        assert router.CLUSTER_STATUS_OP is CLUSTER_STATUS_OP


class TestUnifiedPartialSchema:
    def test_builder_omits_blob_hashes_when_none(self):
        """The client-forwarded record is the builder with None, not a fork."""
        worker_side = sweep_partial(
            None, fold={}, blob_hashes=["a" * 64], sources={}, records=1, errors=0
        )
        client_side = sweep_partial(
            None, fold={}, blob_hashes=None, sources={}, records=1, errors=0
        )
        assert "blob_hashes" in worker_side
        assert "blob_hashes" not in client_side
        assert set(worker_side) - set(client_side) == {"blob_hashes"}

    def test_empty_blob_hashes_still_ship(self):
        """A worker with zero fresh results still reports the key."""
        record = sweep_partial(
            None, fold={}, blob_hashes=[], sources={}, records=0, errors=0
        )
        assert record["blob_hashes"] == []

    def test_required_keys_are_stable(self):
        record = sweep_partial(
            7, fold={"n": 0}, blob_hashes=None, sources={"cache": 1}, records=1, errors=0
        )
        assert set(record) == {"ok", "op", "records", "errors", "sources", "fold", "id"}
        assert record["op"] == "partial"


class TestJsonOutputPurity:
    """``--json`` verbs must write one parseable document to stdout."""

    def test_suites_json_is_pure_stdout(self, capsys):
        assert main(["suites", "--json"]) == 0
        captured = capsys.readouterr()
        rows = json.loads(captured.out)
        assert rows and all("digest" in row for row in rows)

    def test_lint_json_is_pure_stdout(self, capsys):
        assert main(["lint", "--json"]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)
        assert captured.err == ""
