"""R003: the wire schema must agree across transports."""

from __future__ import annotations

from repro.lint import LintConfig

WIRE_CONFIG = LintConfig(
    taint_roots=(),
    protocol_module="repro.service.protocol",
    frames_module="repro.service.frames",
    wire_modules=(
        "repro.service.protocol",
        "repro.service.daemon",
    ),
    dispatchers=(
        ("repro.service.protocol", "handle_request"),
        ("repro.service.daemon", "_dispatch"),
    ),
)

PROTOCOL = """\
SOLVE_OP = "solve"

def handle_request(data):
    op = data.get("op")
    if op == SOLVE_OP:
        return {"ok": True, "op": SOLVE_OP, "result": 1}
    return {"ok": False, "op": "error"}
"""


class TestVerbTable:
    def test_handled_but_undeclared(self, lint_tree):
        """A dispatcher answering a verb the protocol never declared."""
        findings = lint_tree(
            {
                "service/protocol.py": PROTOCOL,
                "service/daemon.py": """\
                STATUS_OP = "status"

                def _dispatch(op, data):
                    if op == STATUS_OP:
                        return {"ok": True, "op": STATUS_OP}
                    return None
                """,
            },
            WIRE_CONFIG,
            rule="R003",
        )
        assert any(
            "'status'" in finding.message and "not declared" in finding.message
            for finding in findings
        )

    def test_declared_but_unhandled(self, lint_tree):
        findings = lint_tree(
            {
                "service/protocol.py": PROTOCOL + 'DEAD_OP = "dead"\n',
                "service/daemon.py": "def _dispatch(op, data):\n    return None\n",
            },
            WIRE_CONFIG,
            rule="R003",
        )
        assert any(
            "'dead'" in finding.message and "declared but" in finding.message
            for finding in findings
        )

    def test_agreeing_transports_are_clean(self, lint_tree):
        findings = lint_tree(
            {
                "service/protocol.py": PROTOCOL,
                "service/daemon.py": """\
                from .protocol import SOLVE_OP

                def _dispatch(op, data):
                    if op == SOLVE_OP:
                        return {"ok": True, "op": SOLVE_OP, "result": 2}
                    return None
                """,
            },
            WIRE_CONFIG,
            rule="R003",
        )
        assert findings == []


class TestResponseDivergence:
    def test_missing_key_across_transports(self, lint_tree):
        """A transport answering 'solve' without the declared result key."""
        findings = lint_tree(
            {
                "service/protocol.py": PROTOCOL,
                "service/daemon.py": """\
                from .protocol import SOLVE_OP

                def _dispatch(op, data):
                    if op == SOLVE_OP:
                        return {"ok": True, "op": SOLVE_OP}
                    return None
                """,
            },
            WIRE_CONFIG,
            rule="R003",
        )
        divergences = [f for f in findings if "diverges" in f.message]
        assert len(divergences) == 1
        assert "missing ['result']" in divergences[0].message
        assert divergences[0].path == "repro/service/daemon.py"

    def test_conditionally_added_keys_are_optional(self, lint_tree):
        """``response["id"] = ...`` in a branch must not count as drift."""
        findings = lint_tree(
            {
                "service/protocol.py": PROTOCOL,
                "service/daemon.py": """\
                from .protocol import SOLVE_OP

                def _dispatch(op, data):
                    if op == SOLVE_OP:
                        response = {"ok": True, "op": SOLVE_OP, "result": 2}
                        if data.get("id") is not None:
                            response["id"] = data["id"]
                        return response
                    return None
                """,
            },
            WIRE_CONFIG,
            rule="R003",
        )
        assert findings == []


FRAMES_HEAD = """\
def _encode_into(out, value):
    if value is None:
        out += b"N"
    elif isinstance(value, int):
        out += b"i"
    else:
        out += b"s"
"""

DECODER_MISSING_S = """\

def _decode_from(buf, at):
    tag = buf[at]
    if tag == 0x4E:
        return None
    if tag == 0x69:
        return 0
    raise ValueError(tag)
"""

DECODER_FULL = """\

def _decode_from(buf, at):
    tag = buf[at]
    if tag in (0x4E, 0x69, 0x73):
        return None
    raise ValueError(tag)
"""

SKIPPER_MISSING_S = """\

def _skip_from(buf, at):
    tag = buf[at]
    if tag in (0x4E, 0x69):
        return at + 1
    raise ValueError(tag)
"""

SKIPPER_FULL = """\

def _skip_from(buf, at):
    tag = buf[at]
    if tag in (0x4E, 0x69, 0x73):
        return at + 1
    raise ValueError(tag)
"""

NO_DISPATCH = "def _dispatch(op, data):\n    return None\n"


class TestCodecSymmetry:
    def test_encoded_tag_the_decoder_rejects(self, lint_tree):
        findings = lint_tree(
            {
                "service/protocol.py": PROTOCOL,
                "service/daemon.py": NO_DISPATCH,
                "service/frames.py": FRAMES_HEAD + DECODER_MISSING_S,
            },
            WIRE_CONFIG,
            rule="R003",
        )
        assert any(
            "'s'" in finding.message and "_decode_from does not accept" in finding.message
            for finding in findings
        )

    def test_decoded_tag_the_skipper_cannot_skip(self, lint_tree):
        findings = lint_tree(
            {
                "service/protocol.py": PROTOCOL,
                "service/daemon.py": NO_DISPATCH,
                "service/frames.py": FRAMES_HEAD + DECODER_FULL + SKIPPER_MISSING_S,
            },
            WIRE_CONFIG,
            rule="R003",
        )
        assert any("_skip_from cannot skip" in finding.message for finding in findings)

    def test_symmetric_codec_is_clean(self, lint_tree):
        findings = lint_tree(
            {
                "service/protocol.py": PROTOCOL,
                "service/daemon.py": NO_DISPATCH,
                "service/frames.py": FRAMES_HEAD + DECODER_FULL + SKIPPER_FULL,
            },
            WIRE_CONFIG,
            rule="R003",
        )
        assert findings == []
