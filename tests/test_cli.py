"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.api import SolveResult, spec_from_dict
from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_rendezvous_options(self):
        namespace = build_parser().parse_args(
            ["rendezvous", "--distance", "1.5", "--visibility", "0.3", "--speed", "0.7"]
        )
        assert namespace.command == "rendezvous"
        assert namespace.speed == pytest.approx(0.7)


class TestCommands:
    def test_feasibility_feasible(self, capsys):
        assert main(["feasibility", "--speed", "0.5"]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_feasibility_infeasible(self, capsys):
        assert main(["feasibility", "--chirality", "-1"]) == 0
        assert "infeasible" in capsys.readouterr().out

    def test_search_command(self, capsys):
        code = main(["search", "--distance", "1.2", "--bearing", "0.6", "--visibility", "0.3"])
        assert code == 0
        assert "Theorem 1 bound" in capsys.readouterr().out

    def test_rendezvous_command(self, capsys):
        code = main(
            ["rendezvous", "--distance", "1.4", "--visibility", "0.35", "--speed", "0.6"]
        )
        assert code == 0
        assert "measured time" in capsys.readouterr().out

    def test_rendezvous_infeasible_without_horizon_fails_cleanly(self, capsys):
        code = main(["rendezvous", "--distance", "1.4", "--visibility", "0.35"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_rendezvous_infeasible_with_horizon_runs(self, capsys):
        code = main(
            [
                "rendezvous",
                "--distance",
                "1.4",
                "--visibility",
                "0.35",
                "--allow-infeasible",
                "--horizon",
                "200",
            ]
        )
        assert code == 0
        assert "not solved" in capsys.readouterr().out

    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        assert "E01" in capsys.readouterr().out

    def test_experiments_single_quick_run(self, capsys, tmp_path):
        code = main(["experiments", "F01", "--quick", "--output", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "F01" in output and "summary written" in output

    def test_experiments_without_selection_is_an_error(self, capsys):
        assert main(["experiments"]) == 2

    def test_schedule_command(self, capsys):
        assert main(["schedule", "--rounds", "2", "--tau", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "tau = 0.5" in out

    def test_suites_command_lists_every_named_suite_with_sizes(self, capsys):
        from repro.workloads import spec_suite, spec_suite_names

        assert main(["suites"]) == 0
        out = capsys.readouterr().out
        for name in spec_suite_names():
            assert name in out
        assert f"{len(spec_suite('search-sweep')):>5} specs" in out

    def test_suites_command_json(self, capsys):
        from repro.workloads import spec_suite_names

        assert main(["suites", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["name"] for row in rows] == spec_suite_names()
        by_name = {row["name"]: row for row in rows}
        assert by_name["search-sweep-large"]["specs"] >= 500
        assert by_name["search-sweep"]["kinds"] == ["search"]

    def test_gather_command(self, capsys):
        code = main(
            [
                "gather",
                "--robot", "0,0,1.0,1.0,0,1",
                "--robot", "1.0,0.3,0.6,1.0,0,1",
                "--visibility", "0.4",
                "--horizon", "5000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pairwise gathering" in out and "met at" in out

    def test_gather_command_rejects_malformed_robot(self, capsys):
        code = main(["gather", "--robot", "0,0,1.0", "--visibility", "0.4"])
        assert code == 1
        assert "6 comma-separated fields" in capsys.readouterr().err


class TestSolveCommand:
    def test_solve_search_flags_json_envelope_round_trips(self, capsys):
        code = main(
            ["solve", "--kind", "search", "--distance", "1.2", "--visibility", "0.3", "--json"]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        result = SolveResult.from_dict(envelope)
        assert result.spec == spec_from_dict(envelope["spec"])
        assert result.solved is True
        assert result.bound_ratio is not None and result.bound_ratio < 1.0

    def test_solve_rendezvous_flags_human_summary(self, capsys):
        code = main(
            ["solve", "--kind", "rendezvous", "--distance", "1.4", "--visibility", "0.35",
             "--speed", "0.6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "measured time" in out and "specs/s" in out

    def test_solve_infeasible_auto_falls_back_to_analytic(self, capsys):
        code = main(
            ["solve", "--kind", "rendezvous", "--distance", "1.4", "--visibility", "0.35",
             "--json"]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["feasible"] is False
        assert envelope["provenance"]["backend"] == "analytic"

    def test_solve_spec_file_with_list_and_backend(self, capsys, tmp_path):
        specs = [
            {"schema_version": 1, "kind": "search", "distance": 1.2, "visibility": 0.3},
            {"schema_version": 1, "kind": "rendezvous", "distance": 1.4, "visibility": 0.35,
             "speed": 0.6},
        ]
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(json.dumps(specs), encoding="utf-8")
        code = main(
            ["solve", "--spec-file", str(spec_file), "--backend", "analytic", "--json"]
        )
        assert code == 0
        envelopes = json.loads(capsys.readouterr().out)
        assert len(envelopes) == 2
        assert all(e["provenance"]["backend"] == "analytic" for e in envelopes)
        assert all(SolveResult.from_dict(e).bound is not None for e in envelopes)

    def test_solve_single_element_list_file_stays_a_list(self, capsys, tmp_path):
        spec_file = tmp_path / "one.json"
        spec_file.write_text(
            json.dumps(
                [{"schema_version": 1, "kind": "search", "distance": 1.2, "visibility": 0.3}]
            ),
            encoding="utf-8",
        )
        code = main(["solve", "--spec-file", str(spec_file), "--backend", "analytic", "--json"])
        assert code == 0
        envelopes = json.loads(capsys.readouterr().out)
        assert isinstance(envelopes, list) and len(envelopes) == 1

    def test_solve_gathering_via_robot_flags(self, capsys):
        code = main(
            ["solve", "--kind", "gathering",
             "--robot", "0,0,1.0,1.0,0,1",
             "--robot", "1.0,0.3,0.6,1.0,0,1",
             "--visibility", "0.4", "--horizon", "5000", "--json"]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["spec"]["kind"] == "gathering"
        assert envelope["solved"] is True

    def test_solve_without_kind_or_file_is_an_error(self, capsys):
        assert main(["solve"]) == 1
        assert "spec-file" in capsys.readouterr().err

    def test_solve_unknown_backend_is_an_error(self, capsys):
        code = main(
            ["solve", "--kind", "search", "--distance", "1.0", "--visibility", "0.3",
             "--backend", "quantum"]
        )
        assert code == 1
        assert "unknown backend" in capsys.readouterr().err


class TestStoreFlagsAndCommands:
    def _populate(self, capsys, store: str) -> None:
        assert (
            main(
                ["solve", "--kind", "search", "--distance", "1.2", "--visibility", "0.3",
                 "--store", store]
            )
            == 0
        )
        capsys.readouterr()

    def test_solve_store_warm_run_reports_store_hit(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        self._populate(capsys, store)
        code = main(
            ["solve", "--kind", "search", "--distance", "1.2", "--visibility", "0.3",
             "--store", store]
        )
        assert code == 0
        assert "1 store hits" in capsys.readouterr().out

    def test_solve_json_keeps_stdout_parseable_stats_on_stderr(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        code = main(
            ["solve", "--kind", "search", "--distance", "1.2", "--visibility", "0.3",
             "--store", store, "--json"]
        )
        assert code == 0
        captured = capsys.readouterr()
        envelope = json.loads(captured.out)
        assert envelope["spec"]["kind"] == "search"
        assert "store hits" in captured.err

    def test_store_and_no_store_are_mutually_exclusive(self, capsys, tmp_path):
        code = main(
            ["solve", "--kind", "search", "--distance", "1.2", "--visibility", "0.3",
             "--store", str(tmp_path), "--no-store"]
        )
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_store_env_variable_provides_the_default(self, capsys, tmp_path, monkeypatch):
        store = str(tmp_path / "env-store")
        monkeypatch.setenv("REPRO_STORE", store)
        self._populate(capsys, store)
        code = main(
            ["solve", "--kind", "search", "--distance", "1.2", "--visibility", "0.3"]
        )
        assert code == 0
        assert "1 store hits" in capsys.readouterr().out

    def test_no_store_overrides_the_environment(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        code = main(
            ["solve", "--kind", "search", "--distance", "1.2", "--visibility", "0.3",
             "--no-store"]
        )
        assert code == 0
        assert not (tmp_path / "env-store").exists()

    def test_store_stats_renders_counts_and_aggregate(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        self._populate(capsys, store)
        assert main(["store", "stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 unique results" in out
        assert "Stored results by kind and backend" in out

    def test_store_stats_json(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        self._populate(capsys, store)
        assert main(["store", "stats", "--store", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["unique"] == 1
        assert payload["groups"][0]["kind"] == "search"

    def test_store_gc_export_import_round_trip(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        self._populate(capsys, store)
        assert main(["store", "gc", "--store", store]) == 0
        assert "compacted" in capsys.readouterr().out
        export_file = str(tmp_path / "warm.jsonl")
        assert main(["store", "export", "--store", store, "--file", export_file]) == 0
        assert "exported 1" in capsys.readouterr().out
        other = str(tmp_path / "other")
        assert main(["store", "import", "--store", other, "--file", export_file]) == 0
        assert "imported 1 new record(s)" in capsys.readouterr().out

    def test_store_command_requires_a_directory(self, capsys):
        assert main(["store", "stats"]) == 1
        assert "--store" in capsys.readouterr().err

    def test_store_stats_on_a_missing_directory_is_an_error(self, capsys, tmp_path):
        # A mistyped path must not be silently created as an empty store.
        missing = tmp_path / "repro-stroe"
        assert main(["store", "stats", "--store", str(missing)]) == 1
        assert "does not exist" in capsys.readouterr().err
        assert not missing.exists()

    def test_store_export_requires_a_file(self, capsys, tmp_path):
        assert main(["store", "export", "--store", str(tmp_path)]) == 1
        assert "--file" in capsys.readouterr().err

    def test_experiments_store_resume_and_expect_warm(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["experiments", "E01", "--quick", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "solved fresh" in out and "sweep total" in out
        code = main(
            ["experiments", "E01", "--quick", "--store", store, "--expect-warm"]
        )
        assert code == 0
        assert "fingerprints match previous run" in capsys.readouterr().out

    def test_experiments_expect_warm_without_a_store_errors_up_front(self, capsys):
        code = main(["experiments", "E02", "--quick", "--expect-warm"])
        assert code == 1
        err = capsys.readouterr().err
        assert "--store" in err and "expect-warm" in err

    def test_experiments_expect_warm_fails_on_a_cold_store(self, capsys, tmp_path):
        code = main(
            ["experiments", "E01", "--quick", "--store", str(tmp_path / "cold"),
             "--expect-warm"]
        )
        assert code == 1
        assert "solved fresh" in capsys.readouterr().err


class TestJsonFlags:
    def test_search_json(self, capsys):
        code = main(["search", "--distance", "1.2", "--visibility", "0.3", "--json"])
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["spec"]["kind"] == "search"
        assert envelope["solved"] is True

    def test_rendezvous_json(self, capsys):
        code = main(
            ["rendezvous", "--distance", "1.4", "--visibility", "0.35", "--speed", "0.6",
             "--json"]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["spec"]["kind"] == "rendezvous"
        assert envelope["measured_time"] is not None

    def test_feasibility_json(self, capsys):
        code = main(["feasibility", "--chirality", "-1", "--json"])
        assert code == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["feasible"] is False and verdict["reasons"]


class TestServeAndStreaming:
    def test_serve_parser_defaults(self):
        namespace = build_parser().parse_args(["serve"])
        assert namespace.command == "serve"
        assert namespace.host == "127.0.0.1" and namespace.port == 7767
        assert namespace.backend == "auto"
        assert namespace.max_inflight == 8 and namespace.queue_limit == 128

    def test_serve_rejects_non_positive_workers(self, capsys):
        assert main(["serve", "--workers", "0"]) == 1
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_stdin_jsonl_streams_one_response_per_request(self, capsys, monkeypatch):
        import io

        requests = [
            json.dumps({"op": "solve", "id": 1, "backend": "analytic",
                        "spec": {"schema_version": 1, "kind": "search",
                                 "distance": 1.2, "visibility": 0.3}}),
            json.dumps({"schema_version": 1, "kind": "search",
                        "distance": 1.2, "visibility": 0.3}),  # bare-spec duplicate
            json.dumps({"op": "health"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        code = main(["solve", "--stdin-jsonl", "--backend", "analytic", "--no-store"])
        assert code == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(lines) == 3
        assert lines[0]["ok"] and lines[0]["id"] == 1 and lines[0]["served_by"] == "solve"
        assert lines[1]["ok"] and lines[1]["served_by"] == "cache"  # duplicate hit the LRU
        assert lines[2]["health"]["status"] == "serving"
        assert "cache hits" in captured.err

    def test_stdin_jsonl_bad_request_sets_exit_code_but_keeps_streaming(
        self, capsys, monkeypatch
    ):
        import io

        requests = [
            "not json at all",
            json.dumps({"schema_version": 1, "kind": "search",
                        "distance": 1.2, "visibility": 0.3}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        code = main(["solve", "--stdin-jsonl", "--backend", "analytic", "--no-store"])
        assert code == 1
        lines = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert [line["ok"] for line in lines] == [False, True]

    def test_stdin_jsonl_conflicts_with_spec_file(self, capsys, tmp_path):
        spec_file = tmp_path / "specs.json"
        spec_file.write_text("[]", encoding="utf-8")
        code = main(["solve", "--stdin-jsonl", "--spec-file", str(spec_file)])
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_stdin_jsonl_uses_the_store(self, capsys, monkeypatch, tmp_path):
        import io

        line = json.dumps({"schema_version": 1, "kind": "search",
                           "distance": 1.5, "visibility": 0.3})
        monkeypatch.setattr("sys.stdin", io.StringIO(line + "\n"))
        assert main(["solve", "--stdin-jsonl", "--backend", "analytic",
                     "--store", str(tmp_path)]) == 0
        first = json.loads(capsys.readouterr().out.strip())
        assert first["served_by"] == "solve"
        monkeypatch.setattr("sys.stdin", io.StringIO(line + "\n"))
        assert main(["solve", "--stdin-jsonl", "--backend", "analytic",
                     "--store", str(tmp_path)]) == 0
        second = json.loads(capsys.readouterr().out.strip())
        assert second["served_by"] == "store"  # answered from the persisted tier
        assert (
            SolveResult.from_dict(second["result"]).fingerprint()
            == SolveResult.from_dict(first["result"]).fingerprint()
        )

    def test_stdin_jsonl_solve_error_sets_exit_code(self, capsys, monkeypatch):
        """Satellite regression: a line whose *solve* fails (backend raises,
        not just malformed JSON) must flip the exit code so shell pipelines
        see partial failure; per-line behavior is unchanged."""
        import io

        requests = [
            json.dumps({"op": "solve", "backend": "simulation",
                        "spec": {"schema_version": 1, "kind": "rendezvous",
                                 "distance": 1.4, "visibility": 0.3}}),  # infeasible
            json.dumps({"schema_version": 1, "kind": "search",
                        "distance": 1.2, "visibility": 0.3}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        code = main(["solve", "--stdin-jsonl", "--backend", "analytic", "--no-store"])
        assert code == 1
        lines = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert [line["ok"] for line in lines] == [False, True]
        assert lines[0]["error_type"] == "InfeasibleConfigurationError"

    def test_stdin_jsonl_all_lines_failing_exits_nonzero(self, capsys, monkeypatch):
        import io

        requests = [json.dumps({"op": "solve", "spec": {"kind": "search"}})] * 2
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        code = main(["solve", "--stdin-jsonl", "--backend", "analytic", "--no-store"])
        assert code == 1
        lines = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        assert [line["ok"] for line in lines] == [False, False]

    def test_experiments_progress_flag_streams_to_stderr(self, capsys, tmp_path):
        code = main(["experiments", "E01", "--quick", "--progress", "--no-store"])
        assert code == 0
        err = capsys.readouterr().err
        assert "E01" in err and "result(s)" in err


class TestServeSignals:
    """Satellite: SIGTERM (how a supervisor stops a daemon) must drain."""

    def _spawn_serve(self, tmp_path, *extra):
        import os
        import subprocess
        import sys
        import time
        from pathlib import Path

        import repro

        port_file = tmp_path / "serve.port"
        env = os.environ.copy()
        package_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            [package_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--backend", "analytic", "--port-file", str(port_file), *extra],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 60.0
        while not (port_file.exists() and port_file.read_text().strip()):
            assert process.poll() is None, "serve exited before binding"
            assert time.monotonic() < deadline, "serve never published its port"
            time.sleep(0.02)
        host, _, port = port_file.read_text().strip().rpartition(":")
        return process, host, int(port)

    def test_sigterm_drains_and_flushes_the_store(self, tmp_path):
        """A SIGTERM'd daemon exits 0 and publishes exactly one buffered
        store segment (the drain flush), losing nothing."""
        import os
        import signal

        from repro.api import ResultStore
        from repro.service import request_lines

        store_dir = tmp_path / "store"
        process, host, port = self._spawn_serve(tmp_path, "--store", str(store_dir))
        try:
            lines = [
                json.dumps({"op": "solve", "id": i,
                            "spec": {"schema_version": 1, "kind": "search",
                                     "distance": 1.0 + 0.1 * i, "visibility": 0.3}})
                for i in range(3)
            ]
            responses = [json.loads(line) for line in request_lines(host, port, lines)]
            assert all(response["ok"] for response in responses)
            # The serving runner buffers store writes: nothing published yet.
            assert list(store_dir.glob("segment-*.jsonl")) == []
            os.kill(process.pid, signal.SIGTERM)
            assert process.wait(timeout=30.0) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - only on failure
                process.kill()
        segments = list(store_dir.glob("segment-*.jsonl"))
        assert len(segments) == 1  # one drain flush, not one segment per request
        assert len(ResultStore(store_dir)) == 3

    def test_sigint_also_drains(self, tmp_path):
        import os
        import signal

        from repro.api import ResultStore
        from repro.service import request_lines

        store_dir = tmp_path / "store"
        process, host, port = self._spawn_serve(tmp_path, "--store", str(store_dir))
        try:
            (line,) = request_lines(host, port, [
                json.dumps({"spec": None, "op": "health"})
            ])
            assert json.loads(line)["ok"]
            (solve_line,) = request_lines(host, port, [
                json.dumps({"op": "solve",
                            "spec": {"schema_version": 1, "kind": "search",
                                     "distance": 1.5, "visibility": 0.3}})
            ])
            assert json.loads(solve_line)["ok"]
            os.kill(process.pid, signal.SIGINT)
            assert process.wait(timeout=30.0) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - only on failure
                process.kill()
        assert len(ResultStore(store_dir)) == 1


class TestSweepCommand:
    """``repro sweep``: one suite, three execution paths, one digest."""

    SUITE = "asymmetric-clock"  # smallest named suite (7 specs)

    def _local_digest(self):
        from repro.api.batch import BatchRunner
        from repro.experiments.manifest import fingerprint_digest
        from repro.workloads import spec_suite

        results, _ = BatchRunner(backend="analytic").run(spec_suite(self.SUITE))
        return fingerprint_digest(results)

    def test_sweep_parser_defaults(self):
        namespace = build_parser().parse_args(["sweep", self.SUITE])
        assert namespace.command == "sweep"
        assert namespace.suite == self.SUITE
        assert namespace.backend == "auto"
        assert namespace.connect is None
        assert not namespace.subscribe and not namespace.binary

    def test_local_sweep_matches_batch_runner_digest(self, capsys):
        code = main(["sweep", self.SUITE, "--backend", "analytic",
                     "--no-store", "--json"])
        assert code == 0
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["mode"] == "local"
        assert outcome["errors"] == 0
        assert outcome["total"] == 7
        assert outcome["fingerprint_digest"] == self._local_digest()

    def test_subscribe_and_per_request_paths_agree(self, capsys):
        from repro.service import AsyncReproServer

        expected = self._local_digest()
        server = AsyncReproServer(backend="analytic", host="127.0.0.1", port=0)
        server.serve_background()
        try:
            address = f"{server.host}:{server.port}"
            code = main(["sweep", self.SUITE, "--backend", "analytic",
                         "--connect", address, "--subscribe", "--json"])
            assert code == 0
            streamed = json.loads(capsys.readouterr().out)
            assert streamed["mode"] == "subscribe/json"
            assert streamed["errors"] == 0
            assert streamed["fingerprint_digest"] == expected

            code = main(["sweep", self.SUITE, "--backend", "analytic",
                         "--connect", address, "--json"])
            assert code == 0
            per_request = json.loads(capsys.readouterr().out)
            assert per_request["mode"] == "connect/json"
            assert per_request["fingerprint_digest"] == expected
            # The second pass replays the first pass's answers.
            assert per_request["sources"] == {"cache": 7}
        finally:
            server.stop()
        assert server.leaked_tasks == []

    def test_subscribe_requires_connect(self, capsys):
        assert main(["sweep", self.SUITE, "--subscribe"]) == 1
        assert "--connect" in capsys.readouterr().err

    def test_unknown_suite_fails_cleanly(self, capsys):
        assert main(["sweep", "no-such-suite"]) == 1
        assert "no-such-suite" in capsys.readouterr().err


class TestPortFilePublication:
    """Satellite: ``--port-file`` lands atomically on both transports."""

    _spawn_serve = TestServeSignals._spawn_serve

    @pytest.mark.parametrize("extra", [(), ("--async",)],
                             ids=["threaded", "asyncio"])
    def test_port_file_is_complete_and_leaves_no_temp(self, tmp_path, extra):
        import os
        import signal

        from repro.service import request_lines

        process, host, port = self._spawn_serve(tmp_path, *extra)
        try:
            content = (tmp_path / "serve.port").read_text(encoding="utf-8")
            assert content == f"{host}:{port}\n"
            # write-temp + rename: no partial or leftover temp files.
            assert list(tmp_path.glob("serve.port.*")) == []
            (line,) = request_lines(host, port, [json.dumps({"op": "health"})])
            assert json.loads(line)["ok"]
            os.kill(process.pid, signal.SIGTERM)
            assert process.wait(timeout=30.0) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - only on failure
                process.kill()

    def test_serve_parser_accepts_async(self):
        namespace = build_parser().parse_args(["serve", "--async"])
        assert namespace.use_async
        assert not build_parser().parse_args(["serve"]).use_async
