"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_rendezvous_options(self):
        namespace = build_parser().parse_args(
            ["rendezvous", "--distance", "1.5", "--visibility", "0.3", "--speed", "0.7"]
        )
        assert namespace.command == "rendezvous"
        assert namespace.speed == pytest.approx(0.7)


class TestCommands:
    def test_feasibility_feasible(self, capsys):
        assert main(["feasibility", "--speed", "0.5"]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_feasibility_infeasible(self, capsys):
        assert main(["feasibility", "--chirality", "-1"]) == 0
        assert "infeasible" in capsys.readouterr().out

    def test_search_command(self, capsys):
        code = main(["search", "--distance", "1.2", "--bearing", "0.6", "--visibility", "0.3"])
        assert code == 0
        assert "Theorem 1 bound" in capsys.readouterr().out

    def test_rendezvous_command(self, capsys):
        code = main(
            ["rendezvous", "--distance", "1.4", "--visibility", "0.35", "--speed", "0.6"]
        )
        assert code == 0
        assert "measured time" in capsys.readouterr().out

    def test_rendezvous_infeasible_without_horizon_fails_cleanly(self, capsys):
        code = main(["rendezvous", "--distance", "1.4", "--visibility", "0.35"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_rendezvous_infeasible_with_horizon_runs(self, capsys):
        code = main(
            [
                "rendezvous",
                "--distance",
                "1.4",
                "--visibility",
                "0.35",
                "--allow-infeasible",
                "--horizon",
                "200",
            ]
        )
        assert code == 0
        assert "not solved" in capsys.readouterr().out

    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        assert "E01" in capsys.readouterr().out

    def test_experiments_single_quick_run(self, capsys, tmp_path):
        code = main(["experiments", "F01", "--quick", "--output", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "F01" in output and "summary written" in output

    def test_experiments_without_selection_is_an_error(self, capsys):
        assert main(["experiments"]) == 2

    def test_schedule_command(self, capsys):
        assert main(["schedule", "--rounds", "2", "--tau", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "tau = 0.5" in out

    def test_gather_command(self, capsys):
        code = main(
            [
                "gather",
                "--robot", "0,0,1.0,1.0,0,1",
                "--robot", "1.0,0.3,0.6,1.0,0,1",
                "--visibility", "0.4",
                "--horizon", "5000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pairwise gathering" in out and "met at" in out

    def test_gather_command_rejects_malformed_robot(self, capsys):
        code = main(["gather", "--robot", "0,0,1.0", "--visibility", "0.4"])
        assert code == 1
        assert "6 comma-separated fields" in capsys.readouterr().err
