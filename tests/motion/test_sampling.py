"""Unit tests for trajectory sampling utilities."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidParameterError
from repro.geometry import ORIGIN, Vec2
from repro.motion import (
    TrajectoryBuilder,
    numeric_max_speed,
    numeric_path_length,
    positions_array,
    sample_positions,
    sample_times,
)


def _quarter_turn_walk():
    builder = TrajectoryBuilder()
    builder.move_to(Vec2(1.0, 0.0))
    builder.arc_around(ORIGIN, math.pi / 2)
    return builder.build()


class TestSampling:
    def test_sample_times_span_the_interval(self):
        times = sample_times(2.0, 5)
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(2.0)
        assert len(times) == 5

    def test_sample_times_needs_two_points(self):
        with pytest.raises(InvalidParameterError):
            sample_times(1.0, 1)

    def test_sample_positions_matches_position_queries(self):
        trajectory = _quarter_turn_walk()
        times = sample_times(trajectory.duration, 7)
        points = sample_positions(trajectory, times)
        assert points[0].is_close(trajectory.start)
        assert points[-1].is_close(trajectory.end)

    def test_positions_array_shape(self):
        trajectory = _quarter_turn_walk()
        array = positions_array(trajectory, sample_times(trajectory.duration, 10))
        assert array.shape == (10, 2)


class TestNumericCrossChecks:
    def test_numeric_path_length_converges_to_exact(self):
        trajectory = _quarter_turn_walk()
        assert numeric_path_length(trajectory, samples_per_segment=256) == pytest.approx(
            trajectory.path_length(), rel=1e-3
        )

    def test_numeric_max_speed_close_to_unit(self):
        trajectory = _quarter_turn_walk()
        assert numeric_max_speed(trajectory, samples_per_segment=256) == pytest.approx(1.0, rel=1e-2)
