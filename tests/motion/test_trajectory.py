"""Unit tests for finite and lazy trajectories."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.errors import TimeOutOfRangeError, TrajectoryError
from repro.geometry import Vec2
from repro.motion import ArcMotion, LazyTrajectory, LinearMotion, Trajectory, WaitMotion


def _l_shape() -> Trajectory:
    return Trajectory(
        [
            LinearMotion(Vec2(0.0, 0.0), Vec2(1.0, 0.0), 1.0),
            LinearMotion(Vec2(1.0, 0.0), Vec2(1.0, 2.0), 2.0),
            WaitMotion(Vec2(1.0, 2.0), 0.5),
        ]
    )


class TestTrajectory:
    def test_duration_is_sum_of_segment_durations(self):
        assert _l_shape().duration == pytest.approx(3.5)

    def test_path_length(self):
        assert _l_shape().path_length() == pytest.approx(3.0)

    def test_position_dispatches_to_the_right_segment(self):
        trajectory = _l_shape()
        assert trajectory.position(0.5).is_close(Vec2(0.5, 0.0))
        assert trajectory.position(2.0).is_close(Vec2(1.0, 1.0))
        assert trajectory.position(3.4).is_close(Vec2(1.0, 2.0))

    def test_position_at_exact_boundaries(self):
        trajectory = _l_shape()
        assert trajectory.position(1.0).is_close(Vec2(1.0, 0.0))
        assert trajectory.position(3.5).is_close(Vec2(1.0, 2.0))

    def test_empty_trajectory_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory([])

    def test_discontinuous_segments_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory(
                [
                    LinearMotion(Vec2(0.0, 0.0), Vec2(1.0, 0.0), 1.0),
                    LinearMotion(Vec2(5.0, 0.0), Vec2(6.0, 0.0), 1.0),
                ]
            )

    def test_query_outside_domain_raises(self):
        with pytest.raises(TimeOutOfRangeError):
            _l_shape().position(10.0)

    def test_max_speed(self):
        assert _l_shape().max_speed() == pytest.approx(1.0)

    def test_concatenation(self):
        first = _l_shape()
        second = Trajectory([LinearMotion(Vec2(1.0, 2.0), Vec2(0.0, 2.0), 1.0)])
        combined = first.followed_by(second)
        assert combined.duration == pytest.approx(4.5)
        assert combined.end.is_close(Vec2(0.0, 2.0))

    def test_window_returns_overlapping_segments(self):
        window = _l_shape().window(0.5, 1.5)
        assert len(window) == 2

    def test_stationary_factory(self):
        trajectory = Trajectory.stationary(Vec2(1.0, 1.0), 2.0)
        assert trajectory.position(1.0).is_close(Vec2(1.0, 1.0))

    def test_timed_segments_are_contiguous(self):
        times = list(_l_shape().timed_segments())
        for (_, end, _), (start, _, _) in zip(times, times[1:]):
            assert end == pytest.approx(start)


def _circle_stream():
    """An infinite stream of unit circles traversed at unit speed."""
    while True:
        yield ArcMotion(Vec2(0.0, 0.0), 1.0, 0.0, 2 * math.pi, 2 * math.pi)


class TestLazyTrajectory:
    def test_materialises_only_what_is_needed(self):
        lazy = LazyTrajectory(_circle_stream())
        lazy.position(1.0)
        assert lazy.materialised_segments == 1

    def test_position_far_in_the_future(self):
        lazy = LazyTrajectory(_circle_stream())
        point = lazy.position(10 * math.pi)
        assert point.distance_to(Vec2(0.0, 0.0)) == pytest.approx(1.0)
        assert lazy.materialised_segments == 5

    def test_finite_source_parks_at_the_end(self):
        lazy = LazyTrajectory(iter([LinearMotion(Vec2(0.0, 0.0), Vec2(1.0, 0.0), 1.0)]))
        assert lazy.position(5.0).is_close(Vec2(1.0, 0.0))
        assert lazy.exhausted

    def test_timed_segment_by_index(self):
        lazy = LazyTrajectory(_circle_stream())
        start, end, segment = lazy.timed_segment(2)
        assert start == pytest.approx(4 * math.pi)
        assert end == pytest.approx(6 * math.pi)
        assert isinstance(segment, ArcMotion)

    def test_timed_segment_beyond_finite_source_is_none(self):
        lazy = LazyTrajectory(iter([WaitMotion(Vec2(0.0, 0.0), 1.0)]))
        assert lazy.timed_segment(3) is None

    def test_segment_at_time(self):
        lazy = LazyTrajectory(_circle_stream())
        entry = lazy.segment_at(7.0)
        assert entry is not None
        start, end, _ = entry
        assert start <= 7.0 <= end

    def test_discontinuous_stream_rejected_on_materialisation(self):
        def broken():
            yield LinearMotion(Vec2(0.0, 0.0), Vec2(1.0, 0.0), 1.0)
            yield LinearMotion(Vec2(9.0, 9.0), Vec2(10.0, 9.0), 1.0)

        lazy = LazyTrajectory(broken())
        with pytest.raises(TrajectoryError):
            lazy.ensure_time(5.0)

    def test_max_speed_up_to(self):
        lazy = LazyTrajectory(
            iter(
                [
                    WaitMotion(Vec2(0.0, 0.0), 1.0),
                    LinearMotion(Vec2(0.0, 0.0), Vec2(2.0, 0.0), 1.0),
                ]
            )
        )
        assert lazy.max_speed_up_to(0.5) == pytest.approx(0.0)
        assert lazy.max_speed_up_to(2.0) == pytest.approx(2.0)

    def test_negative_time_rejected(self):
        lazy = LazyTrajectory(_circle_stream())
        with pytest.raises(TimeOutOfRangeError):
            lazy.position(-1.0)

    def test_window_over_lazy_prefix(self):
        lazy = LazyTrajectory(_circle_stream())
        window = lazy.window(0.0, 4 * math.pi)
        assert len(window) == 2
