"""Unit tests for local-to-world trajectory transforms (Lemma 4 in motion form)."""

from __future__ import annotations

import math

import pytest

from repro.geometry import ORIGIN, ReferenceFrame, Vec2
from repro.motion import (
    ArcMotion,
    LinearMotion,
    Trajectory,
    TrajectoryBuilder,
    WaitMotion,
    lazy_world_trajectory,
    transform_segment,
    transform_trajectory,
)


def _local_search_circle(delta: float) -> Trajectory:
    builder = TrajectoryBuilder()
    builder.move_to(Vec2(delta, 0.0))
    builder.full_circle_around(ORIGIN)
    builder.move_to(ORIGIN)
    return builder.build()


class TestSegmentTransforms:
    def test_wait_keeps_duration_scaled_by_time_unit(self):
        frame = ReferenceFrame(time_unit=0.5)
        world = transform_segment(WaitMotion(Vec2(1.0, 0.0), 4.0), frame)
        assert isinstance(world, WaitMotion)
        assert world.duration == pytest.approx(2.0)

    def test_linear_segment_is_rotated_and_scaled(self):
        frame = ReferenceFrame(speed=2.0, orientation=math.pi / 2)
        world = transform_segment(LinearMotion(Vec2(0.0, 0.0), Vec2(1.0, 0.0), 1.0), frame)
        assert isinstance(world, LinearMotion)
        assert world.end.is_close(Vec2(0.0, 2.0))

    def test_world_speed_equals_robot_speed(self):
        """A robot of speed v covers its own unit-length command at speed v."""
        frame = ReferenceFrame(speed=0.25, time_unit=2.0)
        world = transform_segment(LinearMotion(Vec2(0.0, 0.0), Vec2(1.0, 0.0), 1.0), frame)
        assert world.speed == pytest.approx(0.25)

    def test_arc_stays_an_arc_under_similarity(self):
        frame = ReferenceFrame(speed=0.5, orientation=1.0, chirality=-1)
        local = ArcMotion(Vec2(0.0, 0.0), 1.0, 0.3, math.pi, math.pi)
        world = transform_segment(local, frame)
        assert isinstance(world, ArcMotion)
        assert world.radius == pytest.approx(0.5)

    def test_mirrored_arc_flips_sweep_direction(self):
        frame = ReferenceFrame(chirality=-1)
        local = ArcMotion(Vec2(0.0, 0.0), 1.0, 0.0, math.pi / 2, 1.0)
        world = transform_segment(local, frame)
        assert world.sweep == pytest.approx(-math.pi / 2)

    def test_transform_agrees_with_pointwise_frame_mapping(self):
        frame = ReferenceFrame(
            origin=Vec2(1.0, -1.0), speed=0.7, time_unit=1.5, orientation=2.1, chirality=-1
        )
        local = ArcMotion(Vec2(0.5, 0.0), 0.5, 0.0, 2 * math.pi, math.pi)
        world = transform_segment(local, frame)
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            local_time = local.duration * fraction
            world_time = world.duration * fraction
            expected = frame.to_world_point(local.position(local_time))
            assert world.position(world_time).is_close(expected, 1e-9)


class TestTrajectoryTransforms:
    def test_durations_scale_by_time_unit(self):
        frame = ReferenceFrame(time_unit=3.0)
        local = _local_search_circle(1.0)
        world = transform_trajectory(local, frame)
        assert world.duration == pytest.approx(3.0 * local.duration)

    def test_path_length_scales_by_distance_unit(self):
        frame = ReferenceFrame(speed=0.5, time_unit=2.0)
        local = _local_search_circle(1.0)
        world = transform_trajectory(local, frame)
        assert world.path_length() == pytest.approx(local.path_length() * frame.distance_unit)

    def test_world_trajectory_starts_at_the_frame_origin(self):
        frame = ReferenceFrame(origin=Vec2(4.0, 4.0))
        world = transform_trajectory(_local_search_circle(1.0), frame)
        assert world.start.is_close(Vec2(4.0, 4.0))

    def test_lazy_world_trajectory_matches_eager_transform(self):
        frame = ReferenceFrame(origin=Vec2(1.0, 2.0), speed=0.8, orientation=0.4)
        local = _local_search_circle(0.5)
        eager = transform_trajectory(local, frame)
        lazy = lazy_world_trajectory(iter(local.segments), frame)
        for t in (0.0, 0.3, 1.1, eager.duration):
            assert lazy.position(t).is_close(eager.position(t), 1e-9)

    def test_reference_frame_transform_is_the_identity(self):
        frame = ReferenceFrame()
        local = _local_search_circle(1.25)
        world = transform_trajectory(local, frame)
        for t in (0.0, 1.0, 2.0, local.duration):
            assert world.position(t).is_close(local.position(t), 1e-12)
