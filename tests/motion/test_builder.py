"""Unit tests for the local-frame trajectory builder."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidParameterError
from repro.geometry import ORIGIN, Vec2
from repro.motion import ArcMotion, LinearMotion, TrajectoryBuilder, WaitMotion


class TestCommands:
    def test_move_to_emits_linear_segment_at_unit_speed(self):
        builder = TrajectoryBuilder()
        segment = builder.move_to(Vec2(3.0, 4.0))
        assert isinstance(segment, LinearMotion)
        assert segment.duration == pytest.approx(5.0)
        assert segment.speed == pytest.approx(1.0)

    def test_move_by_is_relative(self):
        builder = TrajectoryBuilder(Vec2(1.0, 1.0))
        builder.move_by(Vec2(1.0, 0.0))
        assert builder.position.is_close(Vec2(2.0, 1.0))

    def test_wait_keeps_position(self):
        builder = TrajectoryBuilder(Vec2(2.0, 2.0))
        segment = builder.wait(3.0)
        assert isinstance(segment, WaitMotion)
        assert builder.position.is_close(Vec2(2.0, 2.0))

    def test_negative_wait_rejected(self):
        with pytest.raises(InvalidParameterError):
            TrajectoryBuilder().wait(-1.0)

    def test_arc_around_unit_speed_duration(self):
        builder = TrajectoryBuilder(Vec2(2.0, 0.0))
        segment = builder.arc_around(ORIGIN, math.pi)
        assert isinstance(segment, ArcMotion)
        assert segment.duration == pytest.approx(2.0 * math.pi)
        assert builder.position.is_close(Vec2(-2.0, 0.0))

    def test_full_circle_returns_to_start(self):
        builder = TrajectoryBuilder(Vec2(1.0, 0.0))
        builder.full_circle_around(ORIGIN)
        assert builder.position.is_close(Vec2(1.0, 0.0))

    def test_clockwise_circle(self):
        builder = TrajectoryBuilder(Vec2(1.0, 0.0))
        segment = builder.full_circle_around(ORIGIN, counter_clockwise=False)
        assert segment.sweep == pytest.approx(-2 * math.pi)


class TestStateAndOutput:
    def test_elapsed_accumulates_durations(self):
        builder = TrajectoryBuilder()
        builder.move_to(Vec2(1.0, 0.0))
        builder.wait(2.0)
        assert builder.elapsed == pytest.approx(3.0)

    def test_build_produces_contiguous_trajectory(self):
        builder = TrajectoryBuilder()
        builder.move_to(Vec2(1.0, 0.0))
        builder.full_circle_around(ORIGIN)
        builder.move_to(ORIGIN)
        trajectory = builder.build()
        assert trajectory.segment_count() == 3
        assert trajectory.duration == pytest.approx(2.0 * (math.pi + 1.0))

    def test_drain_clears_accumulated_segments(self):
        builder = TrajectoryBuilder()
        builder.move_to(Vec2(1.0, 0.0))
        segments = list(builder.drain())
        assert len(segments) == 1
        assert len(builder) == 0
        # The cursor position is preserved across a drain.
        assert builder.position.is_close(Vec2(1.0, 0.0))

    def test_search_circle_shape(self):
        """The builder reproduces the exact SearchCircle(delta) walk of Algorithm 1."""
        delta = 0.75
        builder = TrajectoryBuilder()
        builder.move_to(Vec2(delta, 0.0))
        builder.full_circle_around(ORIGIN)
        builder.move_to(ORIGIN)
        trajectory = builder.build()
        assert trajectory.duration == pytest.approx(2.0 * (math.pi + 1.0) * delta)
        assert trajectory.path_length() == pytest.approx(2.0 * delta + 2.0 * math.pi * delta)
