"""Tests for the structure-of-arrays compiled trajectories."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms import SearchRound, TruncatedUniversalSearch
from repro.errors import TrajectoryError
from repro.geometry import Vec2
from repro.motion import (
    KIND_ARC,
    KIND_LINEAR,
    KIND_WAIT,
    ArcMotion,
    CompiledTrajectory,
    LazyTrajectory,
    LinearMotion,
    SegmentStreamCompiler,
    Trajectory,
    WaitMotion,
    compile_segments,
)


def _mixed_trajectory() -> Trajectory:
    return Trajectory(
        [
            LinearMotion(Vec2(0.0, 0.0), Vec2(1.0, 0.0), 2.0),
            ArcMotion(Vec2(0.0, 0.0), 1.0, 0.0, math.pi, 3.0),
            WaitMotion(Vec2(-1.0, 0.0), 1.5),
            LinearMotion(Vec2(-1.0, 0.0), Vec2(-1.0, -2.0), 4.0),
        ]
    )


class TestCompiledTrajectory:
    def test_kinds_and_layout(self):
        compiled = _mixed_trajectory().compile()
        assert list(compiled.kinds) == [KIND_LINEAR, KIND_ARC, KIND_WAIT, KIND_LINEAR]
        assert compiled.segment_count == 4
        assert compiled.t_begin == 0.0
        assert compiled.t_end == pytest.approx(10.5)

    def test_positions_match_the_scalar_segments(self):
        trajectory = _mixed_trajectory()
        compiled = trajectory.compile()
        times = np.linspace(0.0, trajectory.duration, 257)
        xs, ys = compiled.positions_at(times)
        for t, x, y in zip(times, xs, ys):
            expected = trajectory.position(float(t))
            assert math.isclose(x, expected.x, abs_tol=1e-12)
            assert math.isclose(y, expected.y, abs_tol=1e-12)

    def test_positions_match_on_a_real_search_round(self):
        trajectory = SearchRound(2).local_trajectory()
        compiled = trajectory.compile()
        times = np.linspace(0.0, trajectory.duration, 513)
        xs, ys = compiled.positions_at(times)
        for t, x, y in zip(times, xs, ys):
            expected = trajectory.position(float(t))
            assert math.isclose(x, expected.x, abs_tol=1e-9)
            assert math.isclose(y, expected.y, abs_tol=1e-9)

    def test_out_of_range_times_clamp_to_the_ends(self):
        compiled = _mixed_trajectory().compile()
        xs, ys = compiled.positions_at(np.array([-5.0, 1e9]))
        assert (xs[0], ys[0]) == (0.0, 0.0)
        assert xs[1] == pytest.approx(-1.0) and ys[1] == pytest.approx(-2.0)

    def test_end_position(self):
        compiled = _mixed_trajectory().compile()
        end = compiled.end_position()
        assert end.x == pytest.approx(-1.0) and end.y == pytest.approx(-2.0)

    def test_empty_sequence_rejected(self):
        with pytest.raises(TrajectoryError):
            CompiledTrajectory.from_segments([])

    def test_compile_segments_offsets_start_time(self):
        compiled = compile_segments(
            [WaitMotion(Vec2(1.0, 2.0), 3.0)], start_time=10.0
        )
        assert compiled.t_begin == 10.0
        assert compiled.t_end == 13.0
        position = compiled.position_at(11.0)
        assert (position.x, position.y) == (1.0, 2.0)


class TestLazyCompile:
    def test_prefix_covers_requested_time(self):
        lazy = LazyTrajectory(TruncatedUniversalSearch(3).segments())
        compiled = lazy.compile(up_to=30.0)
        assert compiled.t_end >= 30.0
        for t in np.linspace(0.0, 30.0, 64):
            expected = lazy.position(float(t))
            got = compiled.position_at(float(t))
            assert math.isclose(got.x, expected.x, abs_tol=1e-9)
            assert math.isclose(got.y, expected.y, abs_tol=1e-9)

    def test_finite_source_compiles_fully_past_its_end(self):
        lazy = LazyTrajectory(iter([WaitMotion(Vec2(0.0, 0.0), 2.0)]))
        compiled = lazy.compile(up_to=100.0)
        assert compiled.segment_count == 1
        assert compiled.t_end == pytest.approx(2.0)


class TestSegmentStreamCompiler:
    def test_chunks_partition_the_stream_in_order(self):
        segments = list(SearchRound(2).segments())
        compiler = SegmentStreamCompiler(iter(segments))
        chunks = []
        while True:
            chunk = compiler.next_chunk(max_segments=7)
            if chunk is None:
                break
            chunks.append(chunk)
        assert compiler.exhausted
        assert sum(len(chunk) for chunk in chunks) == len(segments)
        # Chunks tile the time axis contiguously.
        assert chunks[0].t_begin == 0.0
        for previous, current in zip(chunks, chunks[1:]):
            assert current.t_begin == pytest.approx(previous.t_end)
        total = sum(segment.duration for segment in segments)
        assert chunks[-1].t_end == pytest.approx(total)

    def test_until_time_bounds_compilation(self):
        compiler = SegmentStreamCompiler(TruncatedUniversalSearch(4).segments())
        chunk = compiler.next_chunk(max_segments=10_000, until_time=5.0)
        assert chunk.t_end >= 5.0
        # It must not have eaten the whole stream to answer a 5s window.
        assert not compiler.exhausted

    def test_final_position_of_finite_stream(self):
        compiler = SegmentStreamCompiler(iter([LinearMotion(Vec2(0, 0), Vec2(3, 4), 5.0)]))
        assert compiler.next_chunk() is not None
        assert compiler.next_chunk() is None
        final = compiler.final_position()
        assert (final.x, final.y) == (3.0, 4.0)
