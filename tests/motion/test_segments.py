"""Unit tests for the three motion primitives (linear, arc, wait)."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidParameterError, TimeOutOfRangeError
from repro.geometry import Vec2
from repro.motion import ArcMotion, LinearMotion, WaitMotion


class TestLinearMotion:
    def test_endpoints(self):
        segment = LinearMotion(Vec2(0.0, 0.0), Vec2(3.0, 4.0), 5.0)
        assert segment.start.is_close(Vec2(0.0, 0.0))
        assert segment.end.is_close(Vec2(3.0, 4.0))

    def test_position_interpolates_linearly(self):
        segment = LinearMotion(Vec2(0.0, 0.0), Vec2(2.0, 0.0), 4.0)
        assert segment.position(1.0).is_close(Vec2(0.5, 0.0))

    def test_speed_is_length_over_duration(self):
        segment = LinearMotion(Vec2(0.0, 0.0), Vec2(3.0, 4.0), 2.5)
        assert segment.speed == pytest.approx(2.0)

    def test_with_speed_constructor(self):
        segment = LinearMotion.with_speed(Vec2(0.0, 0.0), Vec2(0.0, 2.0), speed=0.5)
        assert segment.duration == pytest.approx(4.0)

    def test_path_length(self):
        assert LinearMotion(Vec2(0.0, 0.0), Vec2(3.0, 4.0), 5.0).path_length() == pytest.approx(5.0)

    def test_zero_duration_positive_length_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinearMotion(Vec2(0.0, 0.0), Vec2(1.0, 0.0), 0.0)

    def test_query_outside_domain_raises(self):
        segment = LinearMotion(Vec2(0.0, 0.0), Vec2(1.0, 0.0), 1.0)
        with pytest.raises(TimeOutOfRangeError):
            segment.position(2.0)

    def test_bounding_disc_contains_path(self):
        segment = LinearMotion(Vec2(0.0, 0.0), Vec2(2.0, 2.0), 1.0)
        center, radius = segment.bounding_center_radius()
        for fraction in (0.0, 0.25, 0.5, 1.0):
            assert center.distance_to(segment.position(fraction)) <= radius + 1e-12

    def test_distance_bounds(self):
        segment = LinearMotion(Vec2(0.0, 0.0), Vec2(2.0, 0.0), 1.0)
        probe = Vec2(1.0, 3.0)
        assert segment.min_distance_lower_bound(probe) <= 3.0 <= segment.max_distance_from(probe)


class TestArcMotion:
    def test_start_and_end_points(self):
        arc = ArcMotion(Vec2(0.0, 0.0), 1.0, 0.0, math.pi / 2, 1.0)
        assert arc.start.is_close(Vec2(1.0, 0.0))
        assert arc.end.is_close(Vec2(0.0, 1.0))

    def test_position_midway(self):
        arc = ArcMotion(Vec2(0.0, 0.0), 2.0, 0.0, math.pi, 2.0)
        assert arc.position(1.0).is_close(Vec2.polar(2.0, math.pi / 2))

    def test_path_length_is_radius_times_sweep(self):
        arc = ArcMotion(Vec2(0.0, 0.0), 2.0, 0.0, math.pi, 2.0)
        assert arc.path_length() == pytest.approx(2.0 * math.pi)

    def test_speed(self):
        arc = ArcMotion(Vec2(0.0, 0.0), 2.0, 0.0, math.pi, 2.0)
        assert arc.speed == pytest.approx(math.pi)

    def test_with_speed_constructor(self):
        arc = ArcMotion.with_speed(Vec2(0.0, 0.0), 1.0, 0.0, 2 * math.pi, speed=1.0)
        assert arc.duration == pytest.approx(2 * math.pi)

    def test_clockwise_sweep_moves_negative_y_first(self):
        arc = ArcMotion(Vec2(0.0, 0.0), 1.0, 0.0, -math.pi / 2, 1.0)
        assert arc.end.is_close(Vec2(0.0, -1.0))

    def test_all_points_stay_on_the_circle(self):
        arc = ArcMotion(Vec2(1.0, 1.0), 0.5, 0.3, 2 * math.pi, 3.0)
        for t in (0.0, 0.5, 1.0, 2.0, 3.0):
            assert arc.position(t).distance_to(Vec2(1.0, 1.0)) == pytest.approx(0.5)

    def test_bounding_disc_contains_arc(self):
        arc = ArcMotion(Vec2(0.0, 0.0), 1.0, 0.4, 1.1, 1.0)
        center, radius = arc.bounding_center_radius()
        for t in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert center.distance_to(arc.position(t)) <= radius + 1e-9

    def test_negative_radius_rejected(self):
        with pytest.raises(InvalidParameterError):
            ArcMotion(Vec2(0.0, 0.0), -1.0, 0.0, 1.0, 1.0)


class TestWaitMotion:
    def test_position_is_constant(self):
        wait = WaitMotion(Vec2(1.0, 2.0), 5.0)
        assert wait.position(0.0).is_close(Vec2(1.0, 2.0))
        assert wait.position(5.0).is_close(Vec2(1.0, 2.0))

    def test_zero_speed_and_length(self):
        wait = WaitMotion(Vec2(1.0, 2.0), 5.0)
        assert wait.speed == 0.0
        assert wait.path_length() == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(InvalidParameterError):
            WaitMotion(Vec2(0.0, 0.0), -1.0)

    def test_bounding_disc_is_a_point(self):
        center, radius = WaitMotion(Vec2(3.0, 3.0), 1.0).bounding_center_radius()
        assert center.is_close(Vec2(3.0, 3.0))
        assert radius == 0.0
