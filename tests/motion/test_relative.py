"""Unit tests for relative motion and the equivalent search trajectory."""

from __future__ import annotations

import math

import pytest

from repro.geometry import ORIGIN, Vec2, relative_matrix
from repro.motion import (
    EquivalentSearchTrajectory,
    RelativeMotion,
    Trajectory,
    TrajectoryBuilder,
    transform_trajectory,
)
from repro.robots import RobotAttributes


def _reference_walk() -> Trajectory:
    builder = TrajectoryBuilder()
    builder.move_to(Vec2(1.0, 0.0))
    builder.full_circle_around(ORIGIN)
    builder.move_to(ORIGIN)
    builder.wait(1.0)
    return builder.build()


class TestEquivalentSearchTrajectory:
    def test_identical_robots_give_the_zero_trajectory(self):
        matrix = relative_matrix(1.0, 0.0, 1)
        equivalent = EquivalentSearchTrajectory(_reference_walk(), matrix)
        for t in (0.0, 1.0, 3.0):
            assert equivalent.position(t).is_close(Vec2(0.0, 0.0))

    def test_scaled_rotation_case_matches_mu_scaling(self):
        """With chi = +1 the equivalent trajectory is a scaled rotation of S(t) (Lemma 6)."""
        attributes = RobotAttributes(speed=0.5, orientation=1.0)
        matrix = relative_matrix(attributes.speed, attributes.orientation, attributes.chirality)
        walk = _reference_walk()
        equivalent = EquivalentSearchTrajectory(walk, matrix)
        mu = math.sqrt(0.25 - 2 * 0.5 * math.cos(1.0) + 1)
        for t in (0.3, 1.5, 4.0):
            assert equivalent.position(t).norm() == pytest.approx(mu * walk.position(t).norm())

    def test_distance_to_target(self):
        matrix = relative_matrix(0.5, 0.0, 1)
        equivalent = EquivalentSearchTrajectory(_reference_walk(), matrix)
        target = Vec2(0.25, 0.0)
        # At t = 1 the reference robot is at (1, 0) hence the equivalent
        # searcher is at (0.5, 0).
        assert equivalent.distance_to_target(1.0, target) == pytest.approx(0.25)

    def test_max_speed_bound(self):
        matrix = relative_matrix(0.5, math.pi, 1)
        equivalent = EquivalentSearchTrajectory(_reference_walk(), matrix)
        assert equivalent.max_speed_up_to(2.0) <= matrix.operator_norm() + 1e-9


class TestRelativeMotion:
    def test_gap_between_parked_robots_is_constant(self):
        first = Trajectory.stationary(Vec2(0.0, 0.0), 5.0)
        second = Trajectory.stationary(Vec2(3.0, 4.0), 5.0)
        relative = RelativeMotion(first, second)
        assert relative.gap(0.0) == pytest.approx(5.0)
        assert relative.gap(5.0) == pytest.approx(5.0)

    def test_within_visibility(self):
        first = Trajectory.stationary(Vec2(0.0, 0.0), 5.0)
        second = Trajectory.stationary(Vec2(0.0, 0.4), 5.0)
        relative = RelativeMotion(first, second)
        assert relative.within(1.0, 0.5)
        assert not relative.within(1.0, 0.3)

    def test_gap_matches_the_reduction_for_equal_clocks(self):
        """|S(t) - S'(t) - d| computed two ways must agree (Section 3 reduction)."""
        attributes = RobotAttributes(speed=0.6, orientation=2.0, chirality=-1)
        separation = Vec2(1.3, -0.4)
        walk = _reference_walk()
        world_reference = walk
        world_other = transform_trajectory(walk, attributes.frame(separation))
        relative = RelativeMotion(world_reference, world_other)
        matrix = relative_matrix(attributes.speed, attributes.orientation, attributes.chirality)
        equivalent = EquivalentSearchTrajectory(walk, matrix)
        for t in (0.0, 0.7, 2.2, 5.0):
            direct = relative.gap(t)
            via_reduction = equivalent.position(t).distance_to(separation)
            assert direct == pytest.approx(via_reduction, abs=1e-9)
