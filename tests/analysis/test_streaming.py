"""Tests for the streaming envelope aggregation path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import EnvelopeAggregate, StreamingStats, fold_envelopes
from repro.api import ResultStore, SearchProblem, solve


class TestStreamingStats:
    def test_matches_numpy_on_a_reference_sample(self):
        values = [0.3, 1.7, 2.2, 5.9, 3.1, 0.01, 4.4]
        stats = StreamingStats()
        for value in values:
            stats.push(value)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.std == pytest.approx(np.std(values))
        assert stats.minimum == min(values) and stats.maximum == max(values)
        assert "n=7" in stats.describe()

    def test_merge_equals_single_pass(self):
        values = [1.0, 2.0, 3.0, 10.0, -4.0, 0.5]
        left, right, whole = StreamingStats(), StreamingStats(), StreamingStats()
        for value in values[:3]:
            left.push(value)
        for value in values[3:]:
            right.push(value)
        for value in values:
            whole.push(value)
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean)
        assert left.std == pytest.approx(whole.std)
        assert left.minimum == whole.minimum and left.maximum == whole.maximum

    def test_merge_into_empty(self):
        empty, other = StreamingStats(), StreamingStats()
        other.push(2.0)
        empty.merge(other)
        assert empty.count == 1 and empty.mean == 2.0
        other.merge(StreamingStats())  # merging an empty one is a no-op
        assert other.count == 1

    def test_empty_describe(self):
        assert StreamingStats().describe() == "n=0"


class TestFoldEnvelopes:
    def _envelopes(self, count: int):
        for index in range(count):
            spec = SearchProblem(distance=1.0 + 0.2 * index, visibility=0.3)
            yield solve(spec, backend="simulation").to_dict()

    def test_groups_by_kind_and_backend(self):
        aggregate = fold_envelopes(self._envelopes(3))
        assert aggregate.total == 3
        ((kind, backend),) = aggregate.groups
        assert kind == "search" and backend == "simulation"
        group = aggregate.groups[(kind, backend)]
        assert group.solved == 3 and group.measured_time.count == 3

    def test_folds_a_store_scan_stream(self, tmp_path):
        with ResultStore(tmp_path) as store:
            for envelope in self._envelopes(2):
                store.put_envelope("simulation", envelope)
        store = ResultStore(tmp_path)
        aggregate = fold_envelopes(envelope for _, envelope in store.scan())
        assert aggregate.total == 2
        table = aggregate.to_table()
        assert len(table) == 1
        assert table.column("results") == [2]

    def test_continues_an_existing_aggregate(self):
        aggregate = fold_envelopes(self._envelopes(1))
        aggregate = fold_envelopes(self._envelopes(2), aggregate)
        assert aggregate.total == 3

    def test_tolerates_minimal_envelopes(self):
        aggregate = EnvelopeAggregate()
        aggregate.push({"solved": None})
        assert aggregate.groups[("?", "?")].bound_only == 1
