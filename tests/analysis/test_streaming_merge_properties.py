"""Distributed-fold properties: merged partials equal the single stream.

The ``sweep --fold`` path folds each shard's completions into an
:class:`EnvelopeAggregate` on the worker and merges the partial
aggregates at the router.  These tests pin the algebra that makes that
sound: for *every* split of an envelope stream into per-shard partials,
merging the partials (in any order) must equal folding the whole stream
in one pass -- counters exactly, running moments to float tolerance --
and the wire forms must round-trip losslessly.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.streaming import (
    EnvelopeAggregate,
    GroupAggregate,
    StreamingStats,
    fold_envelopes,
)

_ENVELOPES = st.lists(
    st.fixed_dictionaries(
        {
            "spec": st.fixed_dictionaries(
                {"kind": st.sampled_from(["search", "rendezvous"])}
            ),
            "provenance": st.fixed_dictionaries(
                {"backend": st.sampled_from(["analytic", "vectorized", "montecarlo"])}
            ),
            "solved": st.sampled_from([True, False, None]),
            "feasible": st.sampled_from([True, False]),
            "measured_time": st.one_of(
                st.none(),
                st.floats(
                    min_value=1e-6, max_value=1e4, allow_nan=False, allow_infinity=False
                ),
            ),
            "bound_ratio": st.one_of(
                st.none(),
                st.floats(
                    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
                ),
            ),
        }
    ),
    max_size=40,
)


def _assert_stats_close(left: StreamingStats, right: StreamingStats) -> None:
    assert left.count == right.count
    assert left.mean == pytest.approx(right.mean, rel=1e-9, abs=1e-12)
    assert left.std == pytest.approx(right.std, rel=1e-6, abs=1e-9)
    assert left.minimum == right.minimum
    assert left.maximum == right.maximum


def _split(items: list, boundaries: list[int]) -> list[list]:
    cuts = sorted(set(b % (len(items) + 1) for b in boundaries))
    parts = []
    previous = 0
    for cut in cuts + [len(items)]:
        parts.append(items[previous:cut])
        previous = cut
    return parts


class TestMergedPartialsEqualSingleFold:
    @settings(max_examples=200, deadline=None)
    @given(envelopes=_ENVELOPES, boundaries=st.lists(st.integers(), max_size=5))
    def test_every_split_merges_to_the_single_stream_fold(self, envelopes, boundaries):
        whole = fold_envelopes(envelopes)
        merged = EnvelopeAggregate()
        for part in _split(envelopes, boundaries):
            merged.merge(fold_envelopes(part))
        assert merged.total == whole.total
        assert set(merged.groups) == set(whole.groups)
        for key, group in merged.groups.items():
            reference = whole.groups[key]
            assert (group.count, group.solved, group.unsolved) == (
                reference.count,
                reference.solved,
                reference.unsolved,
            )
            assert (group.bound_only, group.infeasible) == (
                reference.bound_only,
                reference.infeasible,
            )
            _assert_stats_close(group.measured_time, reference.measured_time)
            _assert_stats_close(group.bound_ratio, reference.bound_ratio)

    @settings(max_examples=100, deadline=None)
    @given(envelopes=_ENVELOPES, boundaries=st.lists(st.integers(), max_size=5))
    def test_merge_through_the_wire_equals_in_process_merge(self, envelopes, boundaries):
        direct = EnvelopeAggregate()
        shipped = EnvelopeAggregate()
        for part in _split(envelopes, boundaries):
            partial = fold_envelopes(part)
            direct.merge(partial)
            shipped.merge(EnvelopeAggregate.from_wire(partial.to_wire()))
        assert shipped.to_wire() == direct.to_wire()

    def test_merge_leaves_the_other_aggregate_untouched(self):
        envelope = {
            "spec": {"kind": "search"},
            "provenance": {"backend": "analytic"},
            "solved": True,
            "measured_time": 1.5,
        }
        partial = fold_envelopes([envelope])
        before = partial.to_wire()
        merged = EnvelopeAggregate()
        merged.merge(partial)
        merged.merge(partial)
        assert partial.to_wire() == before
        assert merged.total == 2


class TestWireRoundTrips:
    @settings(max_examples=200, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
            ),
            max_size=30,
        )
    )
    def test_streaming_stats_wire_is_lossless(self, values):
        stats = StreamingStats()
        for value in values:
            stats.push(value)
        restored = StreamingStats.from_wire(stats.to_wire())
        assert restored == stats

    def test_empty_stats_wire_restores_sentinel_extrema(self):
        wire = StreamingStats().to_wire()
        assert wire == {"count": 0, "mean": 0.0, "m2": 0.0, "min": None, "max": None}
        restored = StreamingStats.from_wire(wire)
        assert restored.minimum == math.inf
        assert restored.maximum == -math.inf

    def test_group_wire_round_trip(self):
        group = GroupAggregate(kind="search", backend="vectorized")
        group.push({"solved": True, "measured_time": 2.0, "bound_ratio": 0.5})
        group.push({"solved": False, "feasible": False, "measured_time": 4.0})
        restored = GroupAggregate.from_wire(group.to_wire())
        assert restored == group

    def test_envelope_wire_groups_are_sorted_by_key(self):
        aggregate = fold_envelopes(
            [
                {"spec": {"kind": "search"}, "provenance": {"backend": "b"}},
                {"spec": {"kind": "rendezvous"}, "provenance": {"backend": "a"}},
                {"spec": {"kind": "search"}, "provenance": {"backend": "a"}},
            ]
        )
        wire = aggregate.to_wire()
        keys = [(group["kind"], group["backend"]) for group in wire["groups"]]
        assert keys == sorted(keys)
        assert EnvelopeAggregate.from_wire(wire).to_wire() == wire
