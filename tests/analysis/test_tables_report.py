"""Unit tests for the table formatter and the experiment report container."""

from __future__ import annotations

import pytest

from repro.analysis import CheckResult, ExperimentReport, Table, combine_markdown
from repro.errors import ExperimentError, InvalidParameterError


class TestTable:
    def test_add_row_by_sequence_and_mapping(self):
        table = Table(columns=["a", "b"])
        table.add_row([1, 2.5])
        table.add_row({"a": 3, "b": 4.0})
        assert len(table) == 2
        assert table.column("a") == [1, 3]

    def test_wrong_row_length_rejected(self):
        table = Table(columns=["a", "b"])
        with pytest.raises(InvalidParameterError):
            table.add_row([1])

    def test_unknown_column_rejected(self):
        table = Table(columns=["a"])
        with pytest.raises(InvalidParameterError):
            table.column("missing")

    def test_markdown_rendering(self):
        table = Table(columns=["name", "value"], title="demo")
        table.add_row(["pi", 3.14159])
        markdown = table.to_markdown()
        assert "| name | value |" in markdown
        assert "### demo" in markdown
        assert "3.14159" in markdown

    def test_text_rendering_aligns_columns(self):
        table = Table(columns=["long column name", "x"])
        table.add_row(["v", 1.0])
        text = table.to_text()
        assert "long column name" in text

    def test_csv_rendering_keeps_raw_values(self):
        table = Table(columns=["x"], precision=2)
        table.add_row([1.23456789])
        assert "1.23456789" in table.to_csv()

    def test_boolean_formatting(self):
        table = Table(columns=["ok"])
        table.add_row([True])
        assert "yes" in table.to_text()

    def test_empty_columns_rejected(self):
        with pytest.raises(InvalidParameterError):
            Table(columns=[])


class TestExperimentReport:
    def _report(self) -> ExperimentReport:
        report = ExperimentReport(experiment_id="E99", title="demo", paper_reference="nowhere")
        table = Table(columns=["x"])
        table.add_row([1.0])
        report.add_table(table)
        report.add_note("a note")
        return report

    def test_all_passed_tracks_checks(self):
        report = self._report()
        report.add_check("first", True)
        assert report.all_passed
        report.add_check("second", False, "oops")
        assert not report.all_passed
        assert len(report.failed_checks()) == 1

    def test_require_success_raises_on_failure(self):
        report = self._report()
        report.add_check("bad", False)
        with pytest.raises(ExperimentError):
            report.require_success()

    def test_markdown_contains_sections(self):
        report = self._report()
        report.add_check("ok", True)
        markdown = report.to_markdown()
        assert "## E99: demo" in markdown
        assert "a note" in markdown
        assert "[PASS] ok" in markdown

    def test_text_rendering(self):
        text = self._report().to_text()
        assert "E99" in text and "paper reference" in text

    def test_write_artifacts(self, tmp_path):
        report = self._report()
        written = report.write_artifacts(tmp_path)
        assert any(path.suffix == ".md" for path in written)
        assert any(path.suffix == ".csv" for path in written)
        for path in written:
            assert path.exists()

    def test_combine_markdown(self):
        combined = combine_markdown([self._report(), self._report()])
        assert combined.count("## E99") == 2

    def test_check_result_describe(self):
        assert CheckResult(name="x", passed=True).describe().startswith("[PASS]")
        assert "detail" in CheckResult(name="x", passed=False, detail="detail").describe()
