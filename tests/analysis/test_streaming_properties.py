"""Algebraic properties of StreamingStats.merge and the envelope helpers.

The montecarlo backend folds trial times through merged single-observation
accumulators, so the envelope's determinism rests on ``merge`` behaving
like a well-defined monoid operation: merging in any grouping (and with
empties) must agree with a single sequential pass to float tolerance.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis import StreamingStats, percentile, summarize_trials


def _samples(seed: int, count: int) -> list[float]:
    rng = random.Random(seed)
    scale = 10.0 ** rng.uniform(-3, 3)
    return [rng.gauss(0.0, 1.0) * scale + rng.uniform(-5, 5) for _ in range(count)]


def _fold(values) -> StreamingStats:
    stats = StreamingStats()
    for value in values:
        stats.push(value)
    return stats


def _assert_close(left: StreamingStats, right: StreamingStats) -> None:
    assert left.count == right.count
    assert left.mean == pytest.approx(right.mean, rel=1e-9, abs=1e-12)
    assert left.std == pytest.approx(right.std, rel=1e-6, abs=1e-9)
    assert left.minimum == right.minimum
    assert left.maximum == right.maximum


class TestMergeProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_merge_is_commutative(self, seed):
        a_values = _samples(seed, 17)
        b_values = _samples(seed + 100, 5)
        ab, ba = _fold(a_values), _fold(b_values)
        ab.merge(_fold(b_values))
        ba.merge(_fold(a_values))
        _assert_close(ab, ba)

    @pytest.mark.parametrize("seed", range(8))
    def test_merge_is_associative(self, seed):
        chunks = [_samples(seed + i * 31, 3 + i * 7) for i in range(3)]
        left = _fold(chunks[0])
        left.merge(_fold(chunks[1]))
        left.merge(_fold(chunks[2]))
        inner = _fold(chunks[1])
        inner.merge(_fold(chunks[2]))
        right = _fold(chunks[0])
        right.merge(inner)
        _assert_close(left, right)

    @pytest.mark.parametrize("seed", range(8))
    def test_empty_is_the_identity(self, seed):
        values = _samples(seed, 9)
        left = _fold(values)
        left.merge(StreamingStats())
        _assert_close(left, _fold(values))
        right = StreamingStats()
        right.merge(_fold(values))
        _assert_close(right, _fold(values))

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("split", [0, 1, 10, 20])
    def test_merge_equals_single_pass(self, seed, split):
        values = _samples(seed, 20)
        merged = _fold(values[:split])
        merged.merge(_fold(values[split:]))
        _assert_close(merged, _fold(values))

    @pytest.mark.parametrize("seed", range(4))
    def test_single_observation_fold_matches_push(self, seed):
        """Exactly the montecarlo fold: merge a chain of n=1 accumulators."""
        values = _samples(seed, 13)
        chained = StreamingStats()
        for value in values:
            chained.merge(_fold([value]))
        _assert_close(chained, _fold(values))

    def test_merging_two_empties_stays_empty(self):
        stats = StreamingStats()
        stats.merge(StreamingStats())
        assert stats.count == 0
        assert stats.to_dict() == {"count": 0, "mean": 0.0, "std": 0.0, "min": None, "max": None}


class TestToDict:
    def test_empty_extrema_are_json_safe(self):
        payload = StreamingStats().to_dict()
        assert payload["min"] is None and payload["max"] is None
        assert not any(
            isinstance(v, float) and not math.isfinite(v) for v in payload.values()
        )

    def test_populated_payload(self):
        payload = _fold([1.0, 3.0]).to_dict()
        assert payload == {"count": 2, "mean": 2.0, "std": 1.0, "min": 1.0, "max": 3.0}


class TestPercentile:
    def test_interpolates_linearly(self):
        values = [0.0, 10.0]
        assert percentile(values, 0.5) == pytest.approx(5.0)
        assert percentile(values, 0.9) == pytest.approx(9.0)

    def test_endpoints(self):
        values = [1.0, 2.0, 7.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 7.0

    def test_single_value(self):
        assert percentile([4.2], 0.37) == 4.2

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestSummarizeTrials:
    def test_empty_envelope_is_none_filled(self):
        envelope = summarize_trials([])
        assert envelope["count"] == 0
        assert envelope["mean"] is None and envelope["p50"] is None
        assert envelope["ci95_halfwidth"] == 0.0

    def test_envelope_is_order_insensitive_in_value(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        a = summarize_trials(values)
        b = summarize_trials(list(reversed(values)))
        assert a["p50"] == b["p50"] == 3.0
        assert a["mean"] == pytest.approx(b["mean"])

    def test_ci_is_symmetric_about_the_mean(self):
        envelope = summarize_trials([1.0, 2.0, 3.0, 4.0])
        half = envelope["ci95_halfwidth"]
        assert envelope["ci95_low"] == pytest.approx(envelope["mean"] - half)
        assert envelope["ci95_high"] == pytest.approx(envelope["mean"] + half)
        assert half == pytest.approx(1.96 * envelope["std"] / math.sqrt(4))
