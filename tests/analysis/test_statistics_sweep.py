"""Unit tests for statistics helpers, sweeps and competitive ratios."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    ParameterSweep,
    geometric_grid,
    geometric_mean,
    linear_grid,
    log_log_slope,
    offline_rendezvous_optimum,
    offline_search_optimum,
    rendezvous_competitive_ratio,
    scaling_fit,
    search_competitive_ratio,
    summarize,
)
from repro.errors import InvalidParameterError
from repro.robots import RobotAttributes


class TestSummaries:
    def test_summarize_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(InvalidParameterError):
            summarize([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(InvalidParameterError):
            geometric_mean([1.0, 0.0])


class TestFits:
    def test_log_log_slope_of_a_power_law(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [x**2 for x in xs]
        assert log_log_slope(xs, ys) == pytest.approx(2.0)

    def test_log_log_slope_needs_matching_lengths(self):
        with pytest.raises(InvalidParameterError):
            log_log_slope([1.0], [1.0, 2.0])

    def test_scaling_fit_recovers_the_constant(self):
        difficulties = [4.0, 8.0, 16.0, 64.0]
        constant = 3.7
        times = [constant * math.log2(x) * x for x in difficulties]
        fitted, error = scaling_fit(difficulties, times)
        assert fitted == pytest.approx(constant, rel=1e-9)
        assert error == pytest.approx(0.0, abs=1e-12)

    def test_scaling_fit_rejects_easy_difficulties(self):
        with pytest.raises(InvalidParameterError):
            scaling_fit([0.5, 2.0], [1.0, 2.0])


class TestGridsAndSweeps:
    def test_linear_grid_endpoints(self):
        grid = linear_grid(0.0, 1.0, 5)
        assert grid[0] == 0.0 and grid[-1] == pytest.approx(1.0)

    def test_geometric_grid_ratio(self):
        grid = geometric_grid(1.0, 8.0, 4)
        assert grid == pytest.approx([1.0, 2.0, 4.0, 8.0])

    def test_geometric_grid_rejects_non_positive(self):
        with pytest.raises(InvalidParameterError):
            geometric_grid(0.0, 1.0, 3)

    def test_sweep_size_and_points(self):
        sweep = ParameterSweep(axes={"a": [1, 2], "b": [10, 20, 30]}, fixed={"c": "x"})
        assert sweep.size == 6
        points = list(sweep)
        assert len(points) == 6
        assert all(point["c"] == "x" for point in points)
        assert {point["a"] for point in points} == {1, 2}

    def test_sweep_rejects_empty_axis(self):
        with pytest.raises(InvalidParameterError):
            ParameterSweep(axes={"a": []})

    def test_sweep_describe(self):
        sweep = ParameterSweep(axes={"a": [1, 2]})
        assert "2 points" in sweep.describe()


class TestCompetitiveRatios:
    def test_offline_search_optimum(self):
        assert offline_search_optimum(2.0, 0.5) == pytest.approx(1.5)

    def test_offline_rendezvous_optimum_uses_combined_speed(self):
        optimum = offline_rendezvous_optimum(2.0, 0.5, RobotAttributes(speed=0.5))
        assert optimum == pytest.approx(1.0)

    def test_ratios_are_at_least_one_for_reasonable_algorithms(self):
        assert search_competitive_ratio(15.0, 2.0, 0.5) == pytest.approx(10.0)
        assert rendezvous_competitive_ratio(3.0, 2.0, 0.5, RobotAttributes()) >= 1.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(InvalidParameterError):
            offline_search_optimum(-1.0, 0.5)
