"""Unit tests for Algorithm 7 (wait-and-search rendezvous)."""

from __future__ import annotations

import itertools

import pytest

from repro.algorithms import (
    TruncatedWaitAndSearch,
    WaitAndSearchRendezvous,
    search_all_duration,
)
from repro.core import inactive_phase_start, round_duration, search_all_time
from repro.errors import InvalidParameterError
from repro.geometry import Vec2
from repro.motion import WaitMotion


class TestSearchAllDuration:
    def test_matches_equation_one(self):
        import math

        for n in (1, 2, 5):
            assert search_all_duration(n) == pytest.approx(12 * (math.pi + 1) * n * 2**n)

    def test_agrees_with_the_schedule_module(self):
        for n in (1, 3, 6):
            assert search_all_duration(n) == pytest.approx(search_all_time(n))

    def test_invalid_round_rejected(self):
        with pytest.raises(InvalidParameterError):
            search_all_duration(0)


class TestAlgorithmSeven:
    def test_round_one_starts_with_the_inactive_wait(self):
        first_segment = next(iter(WaitAndSearchRendezvous().segments()))
        assert isinstance(first_segment, WaitMotion)
        assert first_segment.duration == pytest.approx(2.0 * search_all_duration(1))

    def test_waits_anchor_at_the_origin(self):
        first_segment = next(iter(WaitAndSearchRendezvous().segments()))
        assert first_segment.start.is_close(Vec2(0.0, 0.0))

    def test_truncated_round_duration(self):
        one_round = TruncatedWaitAndSearch(1).duration()
        assert one_round == pytest.approx(round_duration(1))

    def test_truncated_total_matches_schedule_prefix(self):
        for rounds in (1, 2, 3):
            assert TruncatedWaitAndSearch(rounds).duration() == pytest.approx(
                inactive_phase_start(rounds + 1)
            )

    def test_prefix_of_infinite_version_matches_truncation(self):
        finite = list(TruncatedWaitAndSearch(2).segments())
        prefix = list(itertools.islice(WaitAndSearchRendezvous().segments(), len(finite)))
        assert [s.duration for s in prefix] == pytest.approx([s.duration for s in finite])

    def test_active_phase_is_forward_then_reverse(self):
        """In round 2 the waits appear in order: round-1 wait, round-2 wait (forward),
        then round-2 wait, round-1 wait (reverse)."""
        segments = TruncatedWaitAndSearch(2).segments()
        waits = [s.duration for s in segments if isinstance(s, WaitMotion)]
        # Skip the two inactive-phase waits (rounds 1 and 2 openers).
        from repro.algorithms import terminal_wait_duration

        round_waits = [w for w in waits if w not in (
            pytest.approx(2 * search_all_duration(1)), pytest.approx(2 * search_all_duration(2)))]
        expected_round2_active = [
            terminal_wait_duration(1),
            terminal_wait_duration(2),
            terminal_wait_duration(2),
            terminal_wait_duration(1),
        ]
        # Round 1 active phase contributes Search(1) twice at the start.
        assert round_waits[:2] == pytest.approx([terminal_wait_duration(1)] * 2)
        assert round_waits[2:] == pytest.approx(expected_round2_active)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            WaitAndSearchRendezvous(first_round=0)
        with pytest.raises(InvalidParameterError):
            TruncatedWaitAndSearch(0)
