"""Unit tests for the baseline searchers and the algorithm registry."""

from __future__ import annotations

import itertools

import pytest

from repro.algorithms import (
    ConcentricCoverageSearch,
    DiagonalHedgingSearch,
    ExpandingSquareSearch,
    SearchCircle,
    algorithm_names,
    create_algorithm,
    register_algorithm,
)
from repro.errors import InvalidParameterError
from repro.geometry import Vec2
from repro.motion import LazyTrajectory
from repro.simulation import SearchInstance, fixed_horizon, simulate_search


class TestConcentricCoverage:
    def test_circle_radii_are_odd_multiples_of_visibility(self):
        baseline = ConcentricCoverageSearch(0.2)
        assert baseline.circle_radius(0) == pytest.approx(0.2)
        assert baseline.circle_radius(3) == pytest.approx(1.4)

    def test_finds_a_target_it_is_built_for(self):
        instance = SearchInstance(target=Vec2(1.1, 0.6), visibility=0.25)
        outcome = simulate_search(
            ConcentricCoverageSearch(instance.visibility), instance, fixed_horizon(200.0)
        )
        assert outcome.solved

    def test_invalid_visibility_rejected(self):
        with pytest.raises(InvalidParameterError):
            ConcentricCoverageSearch(0.0)


class TestExpandingSquare:
    def test_ring_half_sides_grow_linearly(self):
        baseline = ExpandingSquareSearch(0.5)
        assert baseline.ring_half_side(0) == pytest.approx(0.5)
        assert baseline.ring_half_side(2) == pytest.approx(1.5)

    def test_trajectory_is_continuous(self):
        lazy = LazyTrajectory(ExpandingSquareSearch(0.5).segments())
        # Materialising two rings must not raise a continuity error.
        assert lazy.ensure_segments(16)

    def test_finds_a_target(self):
        instance = SearchInstance(target=Vec2(-0.9, 0.8), visibility=0.3)
        outcome = simulate_search(
            ExpandingSquareSearch(instance.visibility), instance, fixed_horizon(300.0)
        )
        assert outcome.solved


class TestDiagonalHedging:
    def test_is_infinite_and_parameter_free(self):
        baseline = DiagonalHedgingSearch()
        assert not baseline.is_finite
        assert len(list(itertools.islice(baseline.segments(), 10))) == 10

    def test_finds_a_target_without_knowing_r(self):
        instance = SearchInstance(target=Vec2(0.9, 0.7), visibility=0.2)
        outcome = simulate_search(DiagonalHedgingSearch(), instance, fixed_horizon(2000.0))
        assert outcome.solved


class TestRegistry:
    def test_paper_algorithms_are_registered(self):
        names = algorithm_names()
        for expected in ("universal-search", "wait-and-search", "search-circle"):
            assert expected in names

    def test_create_with_parameters(self):
        algorithm = create_algorithm("search-circle", delta=2.0)
        assert isinstance(algorithm, SearchCircle)
        assert algorithm.delta == pytest.approx(2.0)

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            create_algorithm("does-not-exist")

    def test_bad_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            create_algorithm("search-circle", wrong_parameter=1.0)

    def test_custom_registration(self):
        register_algorithm("custom-circle", lambda: SearchCircle(0.5))
        algorithm = create_algorithm("custom-circle")
        assert isinstance(algorithm, SearchCircle)
