"""Unit tests for Algorithms 3-6 (Search(k), Algorithm 4, SearchAll, SearchAllRev)."""

from __future__ import annotations

import itertools

import pytest

from repro.algorithms import (
    SearchAll,
    SearchAllRev,
    SearchRound,
    TruncatedUniversalSearch,
    UniversalSearch,
    annulus_granularity,
    annulus_inner_radius,
    annulus_outer_radius,
    terminal_wait_duration,
)
from repro.core import search_round_duration, universal_search_prefix_duration
from repro.errors import InvalidParameterError
from repro.geometry import Vec2
from repro.motion import WaitMotion


class TestSubRoundGeometry:
    def test_annuli_are_contiguous(self):
        k = 3
        for j in range(2 * k - 1):
            assert annulus_outer_radius(k, j) == pytest.approx(annulus_inner_radius(k, j + 1))

    def test_first_annulus_starts_at_two_to_minus_k(self):
        assert annulus_inner_radius(4, 0) == pytest.approx(2.0**-4)

    def test_last_annulus_reaches_two_to_k(self):
        k = 4
        assert annulus_outer_radius(k, 2 * k - 1) == pytest.approx(2.0**k)

    def test_difficulty_ratio_is_constant_within_a_round(self):
        """The design invariant: delta_{j,k}^2 / rho_{j,k} = 2^{k+1} for every j."""
        for k in (1, 2, 3, 5):
            for j in range(2 * k):
                ratio = annulus_inner_radius(k, j) ** 2 / annulus_granularity(k, j)
                assert ratio == pytest.approx(2.0 ** (k + 1))

    def test_invalid_subround_rejected(self):
        with pytest.raises(InvalidParameterError):
            annulus_inner_radius(2, 4)
        with pytest.raises(InvalidParameterError):
            annulus_granularity(0, 0)


class TestSearchRound:
    def test_duration_matches_lemma2(self):
        for k in (1, 2, 3, 4):
            assert SearchRound(k).duration() == pytest.approx(search_round_duration(k))

    def test_ends_with_the_calibrated_wait(self):
        segments = list(SearchRound(2).segments())
        assert isinstance(segments[-1], WaitMotion)
        assert segments[-1].duration == pytest.approx(terminal_wait_duration(2))

    def test_round_returns_to_the_origin(self):
        trajectory = SearchRound(2).local_trajectory()
        assert trajectory.end.is_close(Vec2(0.0, 0.0))

    def test_sub_rounds_listing(self):
        sub_rounds = SearchRound(2).sub_rounds()
        assert len(sub_rounds) == 4
        inner, outer, granularity = sub_rounds[0]
        assert inner == pytest.approx(0.25)
        assert outer == pytest.approx(0.5)
        assert granularity == pytest.approx(2.0**-7)

    def test_invalid_round_rejected(self):
        with pytest.raises(InvalidParameterError):
            SearchRound(0)


class TestUniversalSearch:
    def test_is_infinite(self):
        assert not UniversalSearch().is_finite

    def test_prefix_matches_truncated_version(self):
        infinite = UniversalSearch()
        truncated = TruncatedUniversalSearch(2)
        finite_segments = list(truncated.segments())
        prefix = list(itertools.islice(infinite.segments(), len(finite_segments)))
        assert len(prefix) == len(finite_segments)
        for a, b in zip(prefix, finite_segments):
            assert type(a) is type(b)
            assert a.duration == pytest.approx(b.duration)

    def test_truncated_duration_matches_closed_form(self):
        for k in (1, 2, 3):
            assert TruncatedUniversalSearch(k).duration() == pytest.approx(
                universal_search_prefix_duration(k)
            )

    def test_each_call_to_segments_is_a_fresh_iterator(self):
        algorithm = UniversalSearch()
        first = list(itertools.islice(algorithm.segments(), 5))
        second = list(itertools.islice(algorithm.segments(), 5))
        assert [s.duration for s in first] == pytest.approx([s.duration for s in second])

    def test_invalid_first_round_rejected(self):
        with pytest.raises(InvalidParameterError):
            UniversalSearch(first_round=0)


class TestSearchAll:
    def test_search_all_is_the_truncated_algorithm4(self):
        assert SearchAll(3).duration() == pytest.approx(TruncatedUniversalSearch(3).duration())

    def test_forward_and_reverse_have_equal_duration(self):
        for n in (1, 2, 3):
            assert SearchAll(n).duration() == pytest.approx(SearchAllRev(n).duration())

    def test_reverse_runs_rounds_in_descending_order(self):
        """The first wait encountered in SearchAllRev(3) is round 3's wait."""
        for segment in SearchAllRev(3).segments():
            if isinstance(segment, WaitMotion):
                assert segment.duration == pytest.approx(terminal_wait_duration(3))
                break

    def test_forward_runs_rounds_in_ascending_order(self):
        for segment in SearchAll(3).segments():
            if isinstance(segment, WaitMotion):
                assert segment.duration == pytest.approx(terminal_wait_duration(1))
                break

    def test_invalid_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            SearchAll(0)
        with pytest.raises(InvalidParameterError):
            SearchAllRev(-1)
