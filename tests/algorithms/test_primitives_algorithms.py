"""Unit tests for Algorithms 1-2 (SearchCircle, SearchAnnulus)."""

from __future__ import annotations

import math

import pytest

from repro.algorithms import SearchAnnulus, SearchCircle, annulus_circle_radii
from repro.core import search_annulus_duration, search_circle_duration
from repro.errors import InvalidParameterError
from repro.geometry import Vec2
from repro.motion import ArcMotion, LinearMotion


class TestSearchCircle:
    def test_emits_three_segments(self):
        segments = list(SearchCircle(1.0).segments())
        assert len(segments) == 3
        assert isinstance(segments[0], LinearMotion)
        assert isinstance(segments[1], ArcMotion)
        assert isinstance(segments[2], LinearMotion)

    def test_starts_and_ends_at_the_origin(self):
        trajectory = SearchCircle(0.7).local_trajectory()
        assert trajectory.start.is_close(Vec2(0.0, 0.0))
        assert trajectory.end.is_close(Vec2(0.0, 0.0))

    def test_duration_matches_lemma2(self):
        for delta in (0.25, 1.0, 3.0):
            assert SearchCircle(delta).duration() == pytest.approx(search_circle_duration(delta))

    def test_circle_has_the_requested_radius(self):
        segments = list(SearchCircle(2.5).segments())
        arc = segments[1]
        assert isinstance(arc, ArcMotion)
        assert arc.radius == pytest.approx(2.5)
        assert abs(arc.sweep) == pytest.approx(2 * math.pi)

    def test_non_positive_radius_rejected(self):
        with pytest.raises(InvalidParameterError):
            SearchCircle(0.0)

    def test_every_point_of_the_walk_is_within_delta_of_the_origin(self):
        trajectory = SearchCircle(1.0).local_trajectory()
        for i in range(64):
            t = trajectory.duration * i / 63
            assert trajectory.position(t).norm() <= 1.0 + 1e-9


class TestAnnulusRadii:
    def test_radii_span_inner_to_outer(self):
        radii = annulus_circle_radii(0.5, 1.0, 0.125)
        assert radii[0] == pytest.approx(0.5)
        assert radii[-1] == pytest.approx(1.0)

    def test_radii_step_is_twice_the_granularity(self):
        radii = annulus_circle_radii(0.5, 1.0, 0.125)
        for smaller, larger in zip(radii, radii[1:]):
            assert larger - smaller == pytest.approx(0.25)

    def test_count_uses_the_ceiling(self):
        # (delta2 - delta1) / (2 rho) = 2.5 -> 3 + 1 circles.
        radii = annulus_circle_radii(0.0, 1.0, 0.2)
        assert len(radii) == 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            annulus_circle_radii(1.0, 0.5, 0.1)
        with pytest.raises(InvalidParameterError):
            annulus_circle_radii(0.5, 1.0, 0.0)


class TestSearchAnnulus:
    def test_duration_matches_lemma2(self):
        cases = [(0.5, 1.0, 0.125), (0.25, 2.0, 0.0625)]
        for delta1, delta2, rho in cases:
            assert SearchAnnulus(delta1, delta2, rho).duration() == pytest.approx(
                search_annulus_duration(delta1, delta2, rho)
            )

    def test_coverage_every_annulus_point_is_approached(self):
        """Correctness claim of Algorithm 2: every annulus point comes within rho."""
        delta1, delta2, rho = 0.5, 1.0, 0.125
        algorithm = SearchAnnulus(delta1, delta2, rho)
        radii = algorithm.circle_radii()
        # Radial coverage: every radius in [delta1, delta2] is within rho of
        # a traced circle (the trajectory visits the full circle, so radial
        # distance is the only degree of freedom).
        for i in range(101):
            radius = delta1 + (delta2 - delta1) * i / 100
            assert min(abs(radius - r) for r in radii) <= rho + 1e-12

    def test_zero_inner_radius_is_allowed(self):
        trajectory = SearchAnnulus(0.0, 0.5, 0.125).local_trajectory()
        assert trajectory.duration > 0.0

    def test_trajectory_is_continuous_and_closed(self):
        trajectory = SearchAnnulus(0.5, 1.0, 0.25).local_trajectory()
        assert trajectory.start.is_close(Vec2(0.0, 0.0))
        assert trajectory.end.is_close(Vec2(0.0, 0.0))
