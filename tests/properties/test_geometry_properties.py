"""Property-based tests for the geometry substrate (hypothesis)."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    LinearMap2,
    ReferenceFrame,
    Vec2,
    attribute_matrix,
    mu_factor,
    normalize_angle,
    normalize_signed_angle,
    qr_factor_relative,
    relative_matrix,
    rotation,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
angles = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
speeds = st.floats(min_value=0.05, max_value=20.0, allow_nan=False, allow_infinity=False)
chiralities = st.sampled_from([1, -1])
vectors = st.builds(Vec2, finite_floats, finite_floats)


class TestVectorProperties:
    @given(vectors, vectors)
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(vectors, angles)
    def test_rotation_preserves_norm(self, v, angle):
        assert math.isclose(v.rotated(angle).norm(), v.norm(), rel_tol=1e-9, abs_tol=1e-9)

    @given(vectors, vectors)
    def test_dot_product_symmetry(self, a, b):
        assert math.isclose(a.dot(b), b.dot(a), rel_tol=1e-12, abs_tol=1e-9)

    @given(vectors)
    def test_perpendicular_is_orthogonal_and_same_length(self, v):
        p = v.perpendicular()
        assert math.isclose(p.norm(), v.norm(), rel_tol=1e-12, abs_tol=1e-12)
        assert abs(p.dot(v)) <= 1e-6 * max(1.0, v.norm_squared())


class TestAngleProperties:
    @given(angles)
    def test_normalize_angle_is_idempotent(self, angle):
        once = normalize_angle(angle)
        assert math.isclose(normalize_angle(once), once, abs_tol=1e-12)

    @given(angles)
    def test_normalized_angles_preserve_direction(self, angle):
        original = Vec2.polar(1.0, angle)
        reduced = Vec2.polar(1.0, normalize_angle(angle))
        assert original.is_close(reduced, 1e-9)

    @given(angles)
    def test_signed_normalization_range(self, angle):
        value = normalize_signed_angle(angle)
        assert -math.pi < value <= math.pi


class TestAttributeTransformProperties:
    @given(speeds, angles, chiralities, vectors)
    def test_attribute_map_scales_norms_by_the_speed(self, speed, orientation, chirality, v):
        image = attribute_matrix(speed, orientation, chirality).apply(v)
        assert math.isclose(image.norm(), speed * v.norm(), rel_tol=1e-9, abs_tol=1e-6)

    @given(speeds, angles, chiralities)
    def test_attribute_map_determinant_is_signed_speed_squared(self, speed, orientation, chirality):
        determinant = attribute_matrix(speed, orientation, chirality).determinant()
        assert math.isclose(determinant, chirality * speed * speed, rel_tol=1e-9)

    @given(speeds, angles)
    def test_mu_is_the_distance_between_unit_images(self, speed, orientation):
        """mu = |T e - e| for any unit vector e when chi = +1."""
        matrix = attribute_matrix(speed, orientation, 1)
        e = Vec2(1.0, 0.0)
        assert math.isclose(
            (matrix.apply(e) - e).norm(), mu_factor(speed, orientation), rel_tol=1e-9, abs_tol=1e-9
        )

    @settings(max_examples=200)
    @given(speeds, angles, chiralities)
    def test_qr_factorisation_properties(self, speed, orientation, chirality):
        if mu_factor(speed, orientation) < 1e-6:
            return  # the factorisation is undefined in the degenerate case
        phi_matrix, upper = qr_factor_relative(speed, orientation, chirality)
        assert phi_matrix.is_rotation(1e-6)
        assert abs(upper.c) <= 1e-9
        reconstructed = phi_matrix @ upper
        assert reconstructed.is_close(relative_matrix(speed, orientation, chirality), 1e-6)

    @given(speeds, angles, chiralities, vectors)
    def test_relative_map_is_identity_minus_attribute_map(self, speed, orientation, chirality, v):
        lhs = relative_matrix(speed, orientation, chirality).apply(v)
        rhs = v - attribute_matrix(speed, orientation, chirality).apply(v)
        assert lhs.is_close(rhs, 1e-6)


class TestFrameProperties:
    @given(
        st.builds(Vec2, finite_floats, finite_floats),
        speeds,
        st.floats(min_value=0.05, max_value=20.0),
        angles,
        chiralities,
        vectors,
    )
    def test_world_local_round_trip(self, origin, speed, time_unit, orientation, chirality, point):
        frame = ReferenceFrame(
            origin=origin,
            speed=speed,
            time_unit=time_unit,
            orientation=orientation,
            chirality=chirality,
        )
        recovered = frame.to_local_point(frame.to_world_point(point))
        assert recovered.is_close(point, 1e-6 * max(1.0, point.norm()))

    @given(speeds, st.floats(min_value=0.05, max_value=20.0), st.floats(min_value=0.0, max_value=1e3))
    def test_time_round_trip(self, speed, time_unit, duration):
        frame = ReferenceFrame(speed=speed, time_unit=time_unit)
        assert math.isclose(
            frame.to_local_duration(frame.to_world_duration(duration)), duration, rel_tol=1e-12, abs_tol=1e-12
        )


class TestRotationComposition:
    @given(angles, angles, vectors)
    def test_rotations_compose_additively(self, first, second, v):
        composed = rotation(first) @ rotation(second)
        assert composed.apply(v).is_close(rotation(first + second).apply(v), 1e-6)
