"""Property-based tests for the event detector and the feasibility test."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import classify_feasibility, is_feasible
from repro.geometry import Vec2
from repro.robots import RobotAttributes
from repro.simulation import find_first_crossing

speeds = st.floats(min_value=0.1, max_value=5.0, allow_nan=False, allow_infinity=False)
clocks = st.floats(min_value=0.1, max_value=5.0, allow_nan=False, allow_infinity=False)
angles = st.floats(min_value=0.0, max_value=2.0 * math.pi, exclude_max=True, allow_nan=False)
chiralities = st.sampled_from([1, -1])


class TestDetectorProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        st.floats(min_value=-3.0, max_value=3.0),
        st.floats(min_value=0.2, max_value=3.0),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_planted_linear_crossing_is_always_found(self, offset, slope, threshold):
        """gap(t) = |offset + t*slope... actually a planted V-shape is always detected."""
        dip_time = 2.0 + abs(offset)

        def gap(t: float) -> float:
            return abs(t - dip_time) * slope

        result = find_first_crossing(gap, 0.0, dip_time + 5.0, slope, threshold, time_tolerance=1e-9)
        assert result.found
        # The first crossing of the V-shape is at dip_time - threshold/slope
        # (or immediately, when the threshold is generous enough).
        expected = max(dip_time - threshold / slope, 0.0)
        assert math.isclose(result.time, expected, rel_tol=1e-4, abs_tol=1e-4)

    @settings(max_examples=80, deadline=None)
    @given(
        st.floats(min_value=0.3, max_value=5.0),
        st.floats(min_value=0.01, max_value=0.29),
    )
    def test_no_false_positive_when_the_function_stays_above(self, floor, threshold):
        def gap(t: float) -> float:
            return floor + 0.5 * math.sin(3.0 * t) ** 2

        result = find_first_crossing(gap, 0.0, 20.0, 3.0, threshold, time_tolerance=1e-6)
        assert not result.found

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=4.0), min_size=2, max_size=6))
    def test_reported_crossing_never_precedes_the_true_first_crossing(self, dips):
        """With several dips the detector reports (approximately) the earliest one."""
        dip_times = sorted(3.0 * (i + 1) for i in range(len(dips)))
        threshold = 0.05

        def gap(t: float) -> float:
            return min(abs(t - dip) for dip in dip_times) + 0.0

        result = find_first_crossing(gap, 0.0, dip_times[-1] + 2.0, 1.0, threshold, time_tolerance=1e-9)
        assert result.found
        assert result.time >= dip_times[0] - threshold - 1e-6
        assert result.time <= dip_times[0] + threshold + 1e-6


class TestFeasibilityProperties:
    @settings(max_examples=200)
    @given(speeds, clocks, angles, chiralities)
    def test_characterisation_matches_the_theorem_formula(self, speed, clock, angle, chirality):
        attributes = RobotAttributes(speed=speed, time_unit=clock, orientation=angle, chirality=chirality)
        expected = (
            not math.isclose(speed, 1.0, rel_tol=0.0, abs_tol=1e-12)
            or not math.isclose(clock, 1.0, rel_tol=0.0, abs_tol=1e-12)
            or (chirality == 1 and not math.isclose(angle, 0.0, abs_tol=1e-12) and not math.isclose(angle, 2 * math.pi, abs_tol=1e-12))
        )
        assert is_feasible(attributes) == expected

    @settings(max_examples=100)
    @given(speeds, clocks, angles)
    def test_verdict_reasons_are_consistent_with_the_flag(self, speed, clock, angle):
        verdict = classify_feasibility(RobotAttributes(speed=speed, time_unit=clock, orientation=angle))
        assert verdict.reasons
        if verdict.feasible:
            assert any(
                "differ" in reason for reason in verdict.reasons
            ), verdict.reasons

    @settings(max_examples=100)
    @given(angles)
    def test_mirror_only_configurations_are_always_infeasible(self, angle):
        attributes = RobotAttributes(orientation=angle, chirality=-1)
        assert not is_feasible(attributes)
