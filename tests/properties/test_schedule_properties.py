"""Property-based tests for the schedule, overlap and bound formulas."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    active_phase_start,
    decompose_tau,
    guaranteed_discovery_round,
    inactive_phase_start,
    lemma13_round_bound,
    measured_overlap,
    round_duration,
    search_all_time,
    theorem1_search_bound,
    theorem3_time_bound,
)

rounds = st.integers(min_value=1, max_value=20)
taus = st.floats(min_value=0.02, max_value=0.98, allow_nan=False, allow_infinity=False)
distances = st.floats(min_value=0.2, max_value=8.0, allow_nan=False, allow_infinity=False)
visibilities = st.floats(min_value=0.01, max_value=1.0, allow_nan=False, allow_infinity=False)


class TestScheduleFormulaProperties:
    @given(rounds)
    def test_phase_boundaries_are_ordered(self, n):
        assert inactive_phase_start(n) < active_phase_start(n) < inactive_phase_start(n + 1)

    @given(rounds)
    def test_round_is_split_evenly_between_phases(self, n):
        inactive = active_phase_start(n) - inactive_phase_start(n)
        active = inactive_phase_start(n + 1) - active_phase_start(n)
        assert math.isclose(inactive, active, rel_tol=1e-12)
        assert math.isclose(inactive + active, round_duration(n), rel_tol=1e-12)

    @given(rounds)
    def test_search_all_time_is_increasing(self, n):
        assert search_all_time(n + 1) > search_all_time(n)

    @given(taus, rounds)
    def test_measured_overlap_fits_inside_both_phases(self, tau, k):
        window = measured_overlap(k, k, tau)
        assert 0.0 <= window.amount <= min(2.0 * search_all_time(k), tau * 2.0 * search_all_time(k)) + 1e-9


class TestTauDecompositionProperties:
    @given(taus)
    def test_round_trip(self, tau):
        decomposition = decompose_tau(tau)
        assert math.isclose(decomposition.tau, tau, rel_tol=1e-9)
        assert 0.5 <= decomposition.t < 1.0
        assert decomposition.a >= 0


class TestBoundProperties:
    @settings(max_examples=100, deadline=None)
    @given(distances, visibilities)
    def test_search_bound_is_at_least_the_direct_travel_time(self, distance, visibility):
        if distance <= visibility:
            return
        bound = theorem1_search_bound(distance, visibility)
        assert bound >= distance - visibility

    @settings(max_examples=100, deadline=None)
    @given(distances, visibilities)
    def test_guaranteed_round_covers_the_instance(self, distance, visibility):
        k = guaranteed_discovery_round(distance, visibility)
        covered = any(
            2.0 ** (-k + j + 1) >= distance and 2.0 ** (-3 * k + 2 * j - 1) <= visibility
            for j in range(2 * k)
        )
        assert covered

    @settings(max_examples=60, deadline=None)
    @given(distances, visibilities, st.floats(min_value=0.05, max_value=0.95))
    def test_theorem3_bound_is_finite_and_at_least_the_schedule_prefix(self, distance, visibility, tau):
        if distance <= visibility:
            return
        bound = theorem3_time_bound(distance, visibility, tau)
        assert not math.isnan(bound) and bound > 0.0
        n = guaranteed_discovery_round(distance, visibility)
        # The bound must at least allow one full active phase of round n.
        assert bound >= inactive_phase_start(n + 1)
        # The bound is mathematically finite everywhere, and representable
        # whenever I(k*+1) ~ (2k*-2) 2^(k*+1) 24(pi+1) stays inside
        # float64 range -- the *product* overflows from k* ~ 1006, before
        # 2^k* itself does, so the guard is conservative.  A tau whose
        # Lemma 13 decomposition has t -> 1 makes k* ~ (a+1) t/(1-t)
        # astronomically large and the time saturates to inf.
        if lemma13_round_bound(tau, n) < 1000:
            assert math.isfinite(bound)

    def test_theorem3_bound_saturates_instead_of_overflowing(self):
        # Regression: t = tau * 2^a = 0.99785... puts k* ~ 1400, whose
        # schedule time exceeds float64 range; this used to raise
        # OverflowError mid-formula.
        bound = theorem3_time_bound(1.0, 0.5, 0.24946286322965355)
        assert bound == math.inf

    def test_schedule_formulas_raise_loudly_instead_of_silent_inf(self):
        # Differences of schedule times (phase durations, overlaps) would
        # decay inf - inf -> nan, so the formulas refuse to saturate --
        # both where 2^n itself overflows (n >= 1024) and where only the
        # *product* does (n ~ 1007..1023, where float multiplication
        # silently yields inf).
        for n in (1010, 2000):
            with pytest.raises(OverflowError):
                inactive_phase_start(n)
            with pytest.raises(OverflowError):
                active_phase_start(n)
