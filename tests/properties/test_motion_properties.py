"""Property-based tests for trajectories and the frame transform."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import ORIGIN, ReferenceFrame, Vec2
from repro.motion import TrajectoryBuilder, transform_trajectory

# Subnormal coordinates/waits produce segments whose duration is a few
# denormal ulps; length/duration then quantizes to multiples of 0.5 and
# no additive tolerance can absorb it.  The invariants under test are
# about geometry, not denormal arithmetic.
coordinates = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False,
    allow_subnormal=False,
)
points = st.builds(Vec2, coordinates, coordinates)
radii = st.floats(min_value=0.05, max_value=5.0, allow_nan=False, allow_infinity=False)
waits = st.floats(
    min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False,
    allow_subnormal=False,
)
speeds = st.floats(min_value=0.1, max_value=5.0, allow_nan=False, allow_infinity=False)
angles = st.floats(min_value=-7.0, max_value=7.0, allow_nan=False, allow_infinity=False)
chiralities = st.sampled_from([1, -1])


@st.composite
def random_walks(draw):
    """A random but valid local-frame trajectory built from mixed commands."""
    builder = TrajectoryBuilder(ORIGIN)
    commands = draw(st.integers(min_value=1, max_value=6))
    for _ in range(commands):
        kind = draw(st.sampled_from(["move", "wait", "circle"]))
        if kind == "move":
            builder.move_to(draw(points))
        elif kind == "wait":
            builder.wait(draw(waits))
        else:
            radius = draw(radii)
            builder.move_to(Vec2(radius, 0.0))
            builder.full_circle_around(ORIGIN)
    return builder.build()


class TestTrajectoryInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_walks())
    def test_positions_stay_within_the_travelled_distance(self, trajectory):
        """|S(t) - S(0)| can never exceed the elapsed time (unit local speed)."""
        for fraction in (0.0, 0.17, 0.5, 0.83, 1.0):
            t = trajectory.duration * fraction
            displacement = trajectory.position(t).distance_to(trajectory.start)
            assert displacement <= t + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(random_walks())
    def test_local_speed_never_exceeds_one(self, trajectory):
        assert trajectory.max_speed() <= 1.0 + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(random_walks())
    def test_path_length_at_most_duration(self, trajectory):
        assert trajectory.path_length() <= trajectory.duration + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(random_walks(), st.floats(min_value=0.0, max_value=1.0))
    def test_adjacent_samples_satisfy_the_lipschitz_bound(self, trajectory, fraction):
        t0 = trajectory.duration * fraction
        t1 = min(trajectory.duration, t0 + 0.25)
        gap = trajectory.position(t0).distance_to(trajectory.position(t1))
        assert gap <= (t1 - t0) + 1e-6


class TestFrameTransformInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_walks(), speeds, speeds, angles, chiralities, points)
    def test_transformed_positions_match_pointwise_mapping(
        self, trajectory, speed, time_unit, orientation, chirality, origin
    ):
        frame = ReferenceFrame(
            origin=origin, speed=speed, time_unit=time_unit, orientation=orientation, chirality=chirality
        )
        world = transform_trajectory(trajectory, frame)
        assert math.isclose(world.duration, trajectory.duration * time_unit, rel_tol=1e-9, abs_tol=1e-9)
        for fraction in (0.0, 0.33, 0.71, 1.0):
            local_time = trajectory.duration * fraction
            world_time = world.duration * fraction
            expected = frame.to_world_point(trajectory.position(local_time))
            actual = world.position(world_time)
            assert actual.is_close(expected, 1e-6 * max(1.0, expected.norm()))

    @settings(max_examples=60, deadline=None)
    @given(random_walks(), speeds, speeds)
    def test_world_speed_is_the_robot_speed(self, trajectory, speed, time_unit):
        frame = ReferenceFrame(speed=speed, time_unit=time_unit)
        world = transform_trajectory(trajectory, frame)
        assert world.max_speed() <= speed + 1e-9
