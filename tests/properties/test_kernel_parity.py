"""Property-based parity: the vectorized kernel vs the scalar engine.

The acceptance bar for the kernel is that *every* event time it reports
agrees with the scalar reference implementation within ``TIME_TOLERANCE``
-- not just on the curated suites, but across randomly drawn instances.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import UniversalSearch
from repro.constants import TIME_TOLERANCE
from repro.core import rendezvous_time_bound, theorem1_search_bound
from repro.geometry import Vec2
from repro.robots import RobotAttributes
from repro.simulation import (
    RendezvousInstance,
    SearchInstance,
    bound_multiple_horizon,
    kernel_simulate_rendezvous,
    kernel_simulate_search,
    simulate_rendezvous,
    simulate_search,
    simulate_search_batch,
)
from repro.workloads import InstanceGenerator

distances = st.floats(min_value=0.3, max_value=3.5, allow_nan=False)
visibilities = st.floats(min_value=0.08, max_value=0.6, allow_nan=False)
bearings = st.floats(min_value=0.0, max_value=2.0 * math.pi, exclude_max=True, allow_nan=False)
speeds = st.floats(min_value=0.25, max_value=2.5, allow_nan=False).filter(
    lambda v: abs(v - 1.0) > 1e-3
)
orientations = st.floats(min_value=0.0, max_value=2.0 * math.pi, exclude_max=True)


class TestSearchParity:
    @settings(max_examples=30, deadline=None)
    @given(distances, visibilities, bearings)
    def test_random_search_instances_agree_within_tolerance(
        self, distance, visibility, bearing
    ):
        instance = SearchInstance(target=Vec2.polar(distance, bearing), visibility=visibility)
        horizon = bound_multiple_horizon(
            theorem1_search_bound(instance.distance, instance.visibility), 1.25
        )
        scalar = simulate_search(UniversalSearch(), instance, horizon)
        kernel = kernel_simulate_search(UniversalSearch(), instance, horizon)
        assert kernel.solved == scalar.solved
        if scalar.solved:
            assert abs(kernel.event.time - scalar.event.time) <= TIME_TOLERANCE

    def test_random_suite_as_one_batch_agrees_within_tolerance(self):
        instances = InstanceGenerator(seed=1234).search_suite(20)
        horizons = [
            bound_multiple_horizon(
                theorem1_search_bound(i.distance, i.visibility), 1.25
            )
            for i in instances
        ]
        scalar = [
            simulate_search(UniversalSearch(), instance, horizon)
            for instance, horizon in zip(instances, horizons)
        ]
        batch = simulate_search_batch(UniversalSearch(), instances, horizons)
        for reference, kernel in zip(scalar, batch):
            assert kernel.solved == reference.solved
            assert abs(kernel.event.time - reference.event.time) <= TIME_TOLERANCE


class TestRendezvousParity:
    @settings(max_examples=12, deadline=None)
    @given(distances, speeds, orientations, bearings)
    def test_random_feasible_rendezvous_agree_within_tolerance(
        self, distance, speed, orientation, bearing
    ):
        instance = RendezvousInstance(
            separation=Vec2.polar(distance, bearing),
            visibility=0.4,
            attributes=RobotAttributes(speed=speed, orientation=orientation),
        )
        bound = rendezvous_time_bound(instance)
        horizon = bound_multiple_horizon(bound, 1.25)
        scalar = simulate_rendezvous(UniversalSearch(), instance, horizon)
        kernel = kernel_simulate_rendezvous(UniversalSearch(), instance, horizon)
        assert kernel.solved == scalar.solved
        if scalar.solved:
            assert abs(kernel.event.time - scalar.event.time) <= TIME_TOLERANCE
