"""Unit tests for repro.geometry.angles."""

from __future__ import annotations

import math

import pytest

from repro.geometry import (
    TWO_PI,
    angle_difference,
    is_zero_angle,
    normalize_angle,
    normalize_signed_angle,
)


class TestNormalizeAngle:
    def test_angles_in_range_are_unchanged(self):
        assert normalize_angle(1.23) == pytest.approx(1.23)

    def test_negative_angles_wrap_up(self):
        assert normalize_angle(-math.pi / 2) == pytest.approx(3 * math.pi / 2)

    def test_large_angles_wrap_down(self):
        assert normalize_angle(5 * math.pi) == pytest.approx(math.pi)

    def test_result_is_always_in_range(self):
        for angle in (-100.0, -7.3, 0.0, 6.28318, 123.456):
            assert 0.0 <= normalize_angle(angle) < TWO_PI

    def test_two_pi_maps_to_zero(self):
        assert normalize_angle(TWO_PI) == pytest.approx(0.0, abs=1e-12)


class TestSignedAngle:
    def test_signed_range(self):
        for angle in (-10.0, -3.0, 0.0, 3.0, 10.0):
            value = normalize_signed_angle(angle)
            assert -math.pi < value <= math.pi

    def test_pi_stays_pi(self):
        assert normalize_signed_angle(math.pi) == pytest.approx(math.pi)

    def test_slightly_more_than_pi_becomes_negative(self):
        assert normalize_signed_angle(math.pi + 0.1) == pytest.approx(-math.pi + 0.1)


class TestAngleDifference:
    def test_difference_is_antisymmetric(self):
        assert angle_difference(1.0, 2.5) == pytest.approx(-angle_difference(2.5, 1.0))

    def test_difference_across_the_wrap(self):
        assert angle_difference(0.1, TWO_PI - 0.1) == pytest.approx(0.2)


class TestIsZeroAngle:
    def test_exact_zero(self):
        assert is_zero_angle(0.0)

    def test_multiples_of_two_pi(self):
        assert is_zero_angle(4 * math.pi)
        assert is_zero_angle(-2 * math.pi)

    def test_nonzero_angle(self):
        assert not is_zero_angle(0.5)

    def test_tolerance_is_respected(self):
        assert is_zero_angle(1e-13)
        assert not is_zero_angle(1e-3)
