"""Unit tests for repro.geometry.transforms (Lemmas 4-5 algebra)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.geometry import (
    LinearMap2,
    Vec2,
    attribute_matrix,
    identity,
    mu_factor,
    qr_factor_relative,
    reflection_x,
    relative_matrix,
    rotation,
    scaling,
)


class TestLinearMap2:
    def test_identity_leaves_vectors_unchanged(self):
        v = Vec2(1.2, -3.4)
        assert identity().apply(v).is_close(v)

    def test_composition_matches_numpy(self):
        a = LinearMap2(1.0, 2.0, 3.0, 4.0)
        b = LinearMap2(-1.0, 0.5, 2.0, 1.5)
        composed = a @ b
        expected = a.to_array() @ b.to_array()
        assert np.allclose(composed.to_array(), expected)

    def test_determinant(self):
        assert LinearMap2(1.0, 2.0, 3.0, 4.0).determinant() == pytest.approx(-2.0)

    def test_inverse_times_original_is_identity(self):
        m = LinearMap2(2.0, 1.0, 1.0, 3.0)
        assert (m @ m.inverse()).is_close(identity())

    def test_singular_matrix_cannot_be_inverted(self):
        with pytest.raises(InvalidParameterError):
            LinearMap2(1.0, 2.0, 2.0, 4.0).inverse()

    def test_transpose(self):
        m = LinearMap2(1.0, 2.0, 3.0, 4.0)
        assert m.transpose().is_close(LinearMap2(1.0, 3.0, 2.0, 4.0))

    def test_operator_norm_of_scaling(self):
        assert scaling(3.0).operator_norm() == pytest.approx(3.0)

    def test_smallest_singular_value_of_scaling(self):
        assert scaling(0.5).smallest_singular_value() == pytest.approx(0.5)

    def test_rotation_is_orthogonal_with_unit_determinant(self):
        m = rotation(0.7)
        assert m.is_orthogonal()
        assert m.is_rotation()

    def test_reflection_is_orthogonal_but_not_a_rotation(self):
        m = reflection_x()
        assert m.is_orthogonal()
        assert not m.is_rotation()

    def test_from_array_rejects_wrong_shape(self):
        with pytest.raises(InvalidParameterError):
            LinearMap2.from_array(np.zeros((3, 3)))


class TestAttributeMatrix:
    """Lemma 4: S'(t) = v R(phi) diag(1, chi) S(t)."""

    def test_reference_attributes_give_identity(self):
        assert attribute_matrix(1.0, 0.0, 1).is_close(identity())

    def test_speed_scales_uniformly(self):
        m = attribute_matrix(0.5, 0.0, 1)
        assert m.apply(Vec2(2.0, 4.0)).is_close(Vec2(1.0, 2.0))

    def test_orientation_rotates(self):
        m = attribute_matrix(1.0, math.pi / 2, 1)
        assert m.apply(Vec2(1.0, 0.0)).is_close(Vec2(0.0, 1.0))

    def test_negative_chirality_mirrors_before_rotating(self):
        m = attribute_matrix(1.0, 0.0, -1)
        assert m.apply(Vec2(1.0, 1.0)).is_close(Vec2(1.0, -1.0))

    def test_determinant_sign_tracks_chirality(self):
        assert attribute_matrix(0.8, 1.0, 1).determinant() > 0.0
        assert attribute_matrix(0.8, 1.0, -1).determinant() < 0.0

    def test_invalid_speed_rejected(self):
        with pytest.raises(InvalidParameterError):
            attribute_matrix(0.0, 0.0, 1)

    def test_invalid_chirality_rejected(self):
        with pytest.raises(InvalidParameterError):
            attribute_matrix(1.0, 0.0, 2)


class TestRelativeMatrix:
    """Definition 1: T_circ = I - T."""

    def test_identical_robots_give_zero_matrix(self):
        m = relative_matrix(1.0, 0.0, 1)
        assert m.is_close(LinearMap2(0.0, 0.0, 0.0, 0.0))

    def test_relative_matrix_is_identity_minus_attribute_matrix(self):
        v, phi, chi = 0.7, 1.1, -1
        expected = identity().subtract(attribute_matrix(v, phi, chi))
        assert relative_matrix(v, phi, chi).is_close(expected)

    def test_mirrored_equal_speed_matrix_is_rank_deficient(self):
        m = relative_matrix(1.0, 0.9, -1)
        assert abs(m.determinant()) < 1e-12


class TestMuFactor:
    def test_matches_formula(self):
        v, phi = 0.6, 1.2
        assert mu_factor(v, phi) == pytest.approx(math.sqrt(v * v - 2 * v * math.cos(phi) + 1))

    def test_zero_exactly_when_identical(self):
        assert mu_factor(1.0, 0.0) == 0.0
        assert mu_factor(1.0, 0.1) > 0.0
        assert mu_factor(0.99, 0.0) > 0.0

    def test_maximum_over_orientation_is_one_plus_speed(self):
        v = 0.4
        assert mu_factor(v, math.pi) == pytest.approx(1.0 + v)

    def test_rejects_non_positive_speed(self):
        with pytest.raises(InvalidParameterError):
            mu_factor(-1.0, 0.0)


class TestQrFactorisation:
    """Lemma 5: T_circ = Phi T'_circ with Phi a rotation."""

    @pytest.mark.parametrize("speed", [0.3, 0.8, 1.5])
    @pytest.mark.parametrize("orientation", [0.2, 1.0, math.pi, 5.5])
    @pytest.mark.parametrize("chirality", [1, -1])
    def test_factorisation_reconstructs_the_relative_matrix(self, speed, orientation, chirality):
        phi_matrix, upper = qr_factor_relative(speed, orientation, chirality)
        assert (phi_matrix @ upper).is_close(relative_matrix(speed, orientation, chirality), 1e-9)

    @pytest.mark.parametrize("chirality", [1, -1])
    def test_phi_is_a_proper_rotation(self, chirality):
        phi_matrix, _ = qr_factor_relative(0.7, 2.0, chirality)
        assert phi_matrix.is_rotation()

    def test_upper_factor_is_triangular_with_mu_in_the_corner(self):
        speed, orientation = 0.7, 2.0
        _, upper = qr_factor_relative(speed, orientation, 1)
        assert upper.c == pytest.approx(0.0)
        assert upper.a == pytest.approx(mu_factor(speed, orientation))

    def test_equal_chirality_upper_factor_is_mu_times_identity(self):
        speed, orientation = 0.6, 1.3
        _, upper = qr_factor_relative(speed, orientation, 1)
        mu = mu_factor(speed, orientation)
        assert upper.is_close(scaling(mu), 1e-9)

    def test_mirrored_second_diagonal_is_one_minus_v_squared_over_mu(self):
        speed, orientation = 0.6, 1.3
        _, upper = qr_factor_relative(speed, orientation, -1)
        mu = mu_factor(speed, orientation)
        assert upper.d == pytest.approx((1.0 - speed * speed) / mu)

    def test_degenerate_case_rejected(self):
        with pytest.raises(InvalidParameterError):
            qr_factor_relative(1.0, 0.0, 1)
