"""Unit tests for repro.geometry.primitives."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidParameterError
from repro.geometry import Annulus, Circle, Disc, Vec2


class TestCircle:
    def test_distance_from_inside_point(self):
        circle = Circle(Vec2(0.0, 0.0), 2.0)
        assert circle.distance_to(Vec2(1.0, 0.0)) == pytest.approx(1.0)

    def test_distance_from_outside_point(self):
        circle = Circle(Vec2(0.0, 0.0), 2.0)
        assert circle.distance_to(Vec2(5.0, 0.0)) == pytest.approx(3.0)

    def test_point_at_angle(self):
        circle = Circle(Vec2(1.0, 1.0), 2.0)
        assert circle.point_at(math.pi / 2).is_close(Vec2(1.0, 3.0))

    def test_circumference(self):
        assert Circle(Vec2(0.0, 0.0), 1.0).circumference() == pytest.approx(2 * math.pi)

    def test_negative_radius_rejected(self):
        with pytest.raises(InvalidParameterError):
            Circle(Vec2(0.0, 0.0), -1.0)


class TestDisc:
    def test_contains_boundary_point(self):
        disc = Disc(Vec2(0.0, 0.0), 1.0)
        assert disc.contains(Vec2(1.0, 0.0))

    def test_excludes_outside_point(self):
        disc = Disc(Vec2(0.0, 0.0), 1.0)
        assert not disc.contains(Vec2(1.1, 0.0))

    def test_tolerance_inflates_the_disc(self):
        disc = Disc(Vec2(0.0, 0.0), 1.0)
        assert disc.contains(Vec2(1.05, 0.0), tolerance=0.1)

    def test_area(self):
        assert Disc(Vec2(0.0, 0.0), 2.0).area() == pytest.approx(4 * math.pi)


class TestAnnulus:
    def test_contains_points_between_radii(self):
        annulus = Annulus(Vec2(0.0, 0.0), 1.0, 2.0)
        assert annulus.contains(Vec2(1.5, 0.0))
        assert not annulus.contains(Vec2(0.5, 0.0))
        assert not annulus.contains(Vec2(2.5, 0.0))

    def test_width_and_area(self):
        annulus = Annulus(Vec2(0.0, 0.0), 1.0, 3.0)
        assert annulus.width() == pytest.approx(2.0)
        assert annulus.area() == pytest.approx(math.pi * 8.0)

    def test_inverted_radii_rejected(self):
        with pytest.raises(InvalidParameterError):
            Annulus(Vec2(0.0, 0.0), 2.0, 1.0)

    def test_coverage_by_evenly_spaced_circles(self):
        annulus = Annulus(Vec2(0.0, 0.0), 1.0, 2.0)
        radii = [1.0, 1.5, 2.0]
        assert annulus.covered_by_circles(radii, granularity=0.25)

    def test_coverage_fails_when_circles_too_sparse(self):
        annulus = Annulus(Vec2(0.0, 0.0), 1.0, 2.0)
        assert not annulus.covered_by_circles([1.0, 2.0], granularity=0.25)

    def test_coverage_fails_when_boundary_unreached(self):
        annulus = Annulus(Vec2(0.0, 0.0), 1.0, 2.0)
        assert not annulus.covered_by_circles([1.4, 1.6], granularity=0.15)

    def test_paper_annulus_is_covered_by_its_own_circles(self):
        """The radii and granularity of Algorithm 2 really cover the annulus."""
        delta1, delta2, rho = 0.5, 1.0, 0.0625
        steps = math.ceil((delta2 - delta1) / (2 * rho))
        radii = [delta1 + 2 * i * rho for i in range(steps + 1)]
        annulus = Annulus(Vec2(0.0, 0.0), delta1, delta2)
        assert annulus.covered_by_circles(radii, granularity=rho)
