"""Unit tests for repro.geometry.frame."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidParameterError
from repro.geometry import GLOBAL_FRAME, ReferenceFrame, Vec2


class TestValidation:
    def test_non_positive_speed_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReferenceFrame(speed=0.0)

    def test_non_positive_time_unit_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReferenceFrame(time_unit=-1.0)

    def test_bad_chirality_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReferenceFrame(chirality=0)

    def test_non_finite_orientation_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReferenceFrame(orientation=float("inf"))


class TestDistanceUnit:
    def test_distance_unit_is_speed_times_time_unit(self):
        frame = ReferenceFrame(speed=0.5, time_unit=3.0)
        assert frame.distance_unit == pytest.approx(1.5)

    def test_reference_frame_has_unit_distance(self):
        assert GLOBAL_FRAME.distance_unit == pytest.approx(1.0)


class TestSpaceConversions:
    def test_world_point_adds_origin(self):
        frame = ReferenceFrame(origin=Vec2(2.0, 3.0))
        assert frame.to_world_point(Vec2(1.0, 0.0)).is_close(Vec2(3.0, 3.0))

    def test_orientation_rotates_displacements(self):
        frame = ReferenceFrame(orientation=math.pi / 2)
        assert frame.to_world_displacement(Vec2(1.0, 0.0)).is_close(Vec2(0.0, 1.0))

    def test_chirality_mirrors_displacements(self):
        frame = ReferenceFrame(chirality=-1)
        assert frame.to_world_displacement(Vec2(0.0, 1.0)).is_close(Vec2(0.0, -1.0))

    def test_speed_scales_displacements(self):
        frame = ReferenceFrame(speed=2.0)
        assert frame.to_world_displacement(Vec2(1.0, 0.0)).is_close(Vec2(2.0, 0.0))

    def test_round_trip_world_local(self):
        frame = ReferenceFrame(
            origin=Vec2(1.0, -2.0), speed=0.7, time_unit=1.3, orientation=0.9, chirality=-1
        )
        point = Vec2(0.3, 0.8)
        assert frame.to_local_point(frame.to_world_point(point)).is_close(point, 1e-9)


class TestTimeConversions:
    def test_world_duration_scales_by_time_unit(self):
        frame = ReferenceFrame(time_unit=0.5)
        assert frame.to_world_duration(4.0) == pytest.approx(2.0)

    def test_local_duration_is_inverse(self):
        frame = ReferenceFrame(time_unit=0.5)
        assert frame.to_local_duration(frame.to_world_duration(3.3)) == pytest.approx(3.3)

    def test_negative_durations_rejected(self):
        with pytest.raises(InvalidParameterError):
            GLOBAL_FRAME.to_world_duration(-1.0)


class TestHelpers:
    def test_with_origin_keeps_attributes(self):
        frame = ReferenceFrame(speed=0.7, orientation=1.0).with_origin(Vec2(5.0, 5.0))
        assert frame.origin == Vec2(5.0, 5.0)
        assert frame.speed == pytest.approx(0.7)

    def test_is_reference_detects_the_global_frame(self):
        assert GLOBAL_FRAME.is_reference()
        assert not ReferenceFrame(speed=0.9).is_reference()
