"""Unit tests for repro.geometry.distance."""

from __future__ import annotations

import math

import pytest

from repro.geometry import (
    Vec2,
    point_arc_distance,
    point_segment_closest_point,
    point_segment_distance,
    segment_segment_distance,
)


class TestPointSegment:
    def test_closest_point_is_projection_when_inside(self):
        closest = point_segment_closest_point(Vec2(1.0, 1.0), Vec2(0.0, 0.0), Vec2(2.0, 0.0))
        assert closest.is_close(Vec2(1.0, 0.0))

    def test_closest_point_clamps_to_endpoint(self):
        closest = point_segment_closest_point(Vec2(5.0, 1.0), Vec2(0.0, 0.0), Vec2(2.0, 0.0))
        assert closest.is_close(Vec2(2.0, 0.0))

    def test_distance_to_interior(self):
        assert point_segment_distance(Vec2(1.0, 2.0), Vec2(0.0, 0.0), Vec2(2.0, 0.0)) == pytest.approx(2.0)

    def test_distance_to_degenerate_segment(self):
        assert point_segment_distance(Vec2(1.0, 1.0), Vec2(0.0, 0.0), Vec2(0.0, 0.0)) == pytest.approx(
            math.sqrt(2.0)
        )


class TestPointArc:
    def test_full_circle_distance_is_radial(self):
        distance = point_arc_distance(Vec2(3.0, 0.0), Vec2(0.0, 0.0), 1.0, 0.0, 2 * math.pi)
        assert distance == pytest.approx(2.0)

    def test_point_inside_angular_window(self):
        # Quarter arc from angle 0 to pi/2; the point at bearing pi/4 is in range.
        point = Vec2.polar(2.0, math.pi / 4)
        distance = point_arc_distance(point, Vec2(0.0, 0.0), 1.0, 0.0, math.pi / 2)
        assert distance == pytest.approx(1.0)

    def test_point_outside_angular_window_uses_endpoints(self):
        # Quarter arc from 0 to pi/2; the point at bearing pi is closest to the arc start/end.
        point = Vec2.polar(1.0, math.pi)
        distance = point_arc_distance(point, Vec2(0.0, 0.0), 1.0, 0.0, math.pi / 2)
        expected = min(point.distance_to(Vec2(1.0, 0.0)), point.distance_to(Vec2(0.0, 1.0)))
        assert distance == pytest.approx(expected)

    def test_clockwise_sweep(self):
        # Arc from angle 0 sweeping -pi/2 (clockwise) covers bearing -pi/4.
        point = Vec2.polar(3.0, -math.pi / 4)
        distance = point_arc_distance(point, Vec2(0.0, 0.0), 1.0, 0.0, -math.pi / 2)
        assert distance == pytest.approx(2.0)

    def test_center_point(self):
        assert point_arc_distance(Vec2(0.0, 0.0), Vec2(0.0, 0.0), 1.5, 0.3, 1.0) == pytest.approx(1.5)


class TestSegmentSegment:
    def test_crossing_segments_have_zero_distance(self):
        assert segment_segment_distance(
            Vec2(-1.0, 0.0), Vec2(1.0, 0.0), Vec2(0.0, -1.0), Vec2(0.0, 1.0)
        ) == pytest.approx(0.0)

    def test_parallel_segments(self):
        assert segment_segment_distance(
            Vec2(0.0, 0.0), Vec2(1.0, 0.0), Vec2(0.0, 1.0), Vec2(1.0, 1.0)
        ) == pytest.approx(1.0)

    def test_collinear_disjoint_segments(self):
        assert segment_segment_distance(
            Vec2(0.0, 0.0), Vec2(1.0, 0.0), Vec2(3.0, 0.0), Vec2(4.0, 0.0)
        ) == pytest.approx(2.0)
