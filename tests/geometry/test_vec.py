"""Unit tests for repro.geometry.vec."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry import ORIGIN, UNIT_X, UNIT_Y, Vec2, centroid


class TestConstruction:
    def test_polar_zero_angle_lies_on_x_axis(self):
        assert Vec2.polar(2.0, 0.0).is_close(Vec2(2.0, 0.0))

    def test_polar_quarter_turn_lies_on_y_axis(self):
        assert Vec2.polar(3.0, math.pi / 2).is_close(Vec2(0.0, 3.0))

    def test_from_iterable_accepts_lists(self):
        assert Vec2.from_iterable([1.5, -2.0]) == Vec2(1.5, -2.0)

    def test_from_iterable_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Vec2.from_iterable([1.0, 2.0, 3.0])


class TestAlgebra:
    def test_addition_and_subtraction_are_inverse(self):
        a, b = Vec2(1.0, 2.0), Vec2(-0.5, 4.0)
        assert (a + b - b).is_close(a)

    def test_scalar_multiplication_commutes(self):
        v = Vec2(1.0, -3.0)
        assert (2.5 * v) == (v * 2.5)

    def test_division_by_scalar(self):
        assert (Vec2(2.0, 4.0) / 2.0) == Vec2(1.0, 2.0)

    def test_negation(self):
        assert -Vec2(1.0, -2.0) == Vec2(-1.0, 2.0)

    def test_dot_product_of_orthogonal_vectors_is_zero(self):
        assert UNIT_X.dot(UNIT_Y) == 0.0

    def test_cross_product_sign(self):
        assert UNIT_X.cross(UNIT_Y) == pytest.approx(1.0)
        assert UNIT_Y.cross(UNIT_X) == pytest.approx(-1.0)


class TestMetric:
    def test_norm_matches_hypot(self):
        assert Vec2(3.0, 4.0).norm() == pytest.approx(5.0)

    def test_norm_squared_avoids_sqrt(self):
        assert Vec2(3.0, 4.0).norm_squared() == pytest.approx(25.0)

    def test_distance_is_symmetric(self):
        a, b = Vec2(0.0, 1.0), Vec2(2.0, -1.0)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_normalized_has_unit_length(self):
        assert Vec2(5.0, -7.0).normalized().norm() == pytest.approx(1.0)

    def test_normalizing_zero_vector_raises(self):
        with pytest.raises(ZeroDivisionError):
            ORIGIN.normalized()

    def test_angle_of_unit_y(self):
        assert UNIT_Y.angle() == pytest.approx(math.pi / 2)


class TestTransformations:
    def test_rotation_by_quarter_turn(self):
        assert UNIT_X.rotated(math.pi / 2).is_close(UNIT_Y)

    def test_rotation_preserves_norm(self):
        v = Vec2(2.3, -1.1)
        assert v.rotated(1.234).norm() == pytest.approx(v.norm())

    def test_reflection_flips_y(self):
        assert Vec2(1.0, 2.0).reflected_x() == Vec2(1.0, -2.0)

    def test_perpendicular_is_orthogonal(self):
        v = Vec2(3.0, -2.0)
        assert v.dot(v.perpendicular()) == pytest.approx(0.0)

    def test_lerp_endpoints(self):
        a, b = Vec2(0.0, 0.0), Vec2(2.0, 4.0)
        assert a.lerp(b, 0.0).is_close(a)
        assert a.lerp(b, 1.0).is_close(b)

    def test_lerp_midpoint(self):
        assert Vec2(0.0, 0.0).lerp(Vec2(2.0, 4.0), 0.5).is_close(Vec2(1.0, 2.0))


class TestInterop:
    def test_to_array_round_trip(self):
        v = Vec2(1.25, -3.5)
        assert np.allclose(v.to_array(), [1.25, -3.5])

    def test_iteration_and_indexing(self):
        v = Vec2(1.0, 2.0)
        assert list(v) == [1.0, 2.0]
        assert v[0] == 1.0 and v[1] == 2.0
        assert len(v) == 2

    def test_is_finite_detects_nan(self):
        assert Vec2(1.0, 2.0).is_finite()
        assert not Vec2(float("nan"), 0.0).is_finite()

    def test_vectors_are_hashable(self):
        assert len({Vec2(1.0, 2.0), Vec2(1.0, 2.0), Vec2(3.0, 4.0)}) == 2


class TestCentroid:
    def test_centroid_of_two_points_is_midpoint(self):
        assert centroid([Vec2(0.0, 0.0), Vec2(2.0, 2.0)]).is_close(Vec2(1.0, 1.0))

    def test_centroid_of_empty_sequence_raises(self):
        with pytest.raises(ValueError):
            centroid([])
