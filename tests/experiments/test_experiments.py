"""Tests of the experiment registry and quick runs of every experiment.

The full experiments are exercised by the benchmark harness; the tests here
run each experiment in ``quick`` mode (reduced workloads) and assert that
every check it reports passes -- this is the "the paper's claims hold on the
reproduction" safety net that runs with the ordinary test suite.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentReport
from repro.errors import ExperimentError
from repro.experiments import experiment_ids, get_experiment, run_all, run_experiment, write_summary


class TestRegistry:
    def test_all_expected_ids_are_registered(self):
        ids = experiment_ids()
        for expected in ("E01", "E02", "E06", "E09", "E11", "E14", "F01", "F03"):
            assert expected in ids
        assert len(ids) == 17

    def test_lookup_is_case_insensitive(self):
        assert get_experiment("e01").experiment_id == "E01"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("E99")

    def test_entries_carry_metadata(self):
        entry = get_experiment("E04")
        assert "Theorem 2" in entry.paper_reference


@pytest.mark.parametrize("experiment_id", [eid for eid in experiment_ids()])
def test_quick_run_passes_all_checks(experiment_id):
    report = run_experiment(experiment_id, quick=True)
    assert isinstance(report, ExperimentReport)
    assert report.tables, f"{experiment_id} produced no tables"
    assert report.checks, f"{experiment_id} recorded no checks"
    failing = [check.describe() for check in report.failed_checks()]
    assert not failing, f"{experiment_id} failed: {failing}"


class TestRunAll:
    def test_selected_subset(self):
        reports = run_all(quick=True, ids=["E02", "F01"])
        assert [report.experiment_id for report in reports] == ["E02", "F01"]

    def test_summary_writing(self, tmp_path):
        reports = run_all(quick=True, ids=["E02"])
        path = write_summary(reports, tmp_path / "summary.md")
        assert path.exists()
        assert "E02" in path.read_text()

    def test_artifacts_directory(self, tmp_path):
        run_all(quick=True, ids=["F01"], output_dir=tmp_path)
        assert (tmp_path / "f01.md").exists()
        assert (tmp_path / "figure1.svg").exists()
