"""Tests for the resumable experiment pipeline (shared runner + store)."""

from __future__ import annotations

import json

from repro.api import BatchRunner, ResultStore
from repro.experiments import (
    RunManifest,
    run_all_resumable,
    shared_runner,
    solve_specs,
)
from repro.experiments.manifest import MANIFEST_NAME
from repro.workloads import as_specs, search_random_suite


class TestSharedRunner:
    def test_solve_specs_reuses_the_ambient_runner_lru(self):
        specs = as_specs(search_random_suite(count=4, seed=11))
        with shared_runner(BatchRunner()) as runner:
            solve_specs(specs, backend="analytic")
            solve_specs(specs, backend="analytic")
            assert runner.cache_len == len(specs)
        # Second call hit the LRU: cache holds exactly one entry per spec.

    def test_explicit_runner_wins_over_ambient(self):
        specs = as_specs(search_random_suite(count=3, seed=11))
        explicit = BatchRunner()
        with shared_runner(BatchRunner()) as ambient:
            solve_specs(specs, backend="analytic", runner=explicit)
            assert explicit.cache_len == len(specs)
            assert ambient.cache_len == 0

    def test_solve_specs_without_context_builds_a_throwaway_runner(self):
        specs = as_specs(search_random_suite(count=2, seed=11))
        results = solve_specs(specs, backend="analytic")
        assert len(results) == len(specs)


class TestResumableRunAll:
    def test_second_pass_is_fully_warm_with_matching_fingerprints(self, tmp_path):
        store = tmp_path / "store"
        ids = ["E01", "E03"]
        _, first = run_all_resumable(quick=True, ids=ids, store=store)
        assert first.fresh_solves > 0
        assert first.store_hits == 0

        _, second = run_all_resumable(quick=True, ids=ids, store=store)
        assert second.fully_warm
        assert second.fresh_solves == 0
        assert second.store_hits == first.fresh_solves
        assert not second.fingerprint_mismatches
        for entry in second.entries:
            assert entry.fingerprint_match is True
            assert entry.missing_before == 0
        assert "fingerprints match previous run" in second.describe()

    def test_manifest_records_spec_hashes_per_experiment(self, tmp_path):
        store = tmp_path / "store"
        run_all_resumable(quick=True, ids=["E01"], store=store)
        manifest_path = store / MANIFEST_NAME
        assert manifest_path.exists()
        data = json.loads(manifest_path.read_text(encoding="utf-8"))
        entry = data["experiments"]["E01:quick"]
        assert entry["quick"] is True
        assert entry["spec_hashes"] and entry["fingerprint_digest"]
        # Every recorded hash is present in the store.
        opened = ResultStore(store)
        assert all(opened.contains(b, h) for b, h in entry["spec_hashes"])

    def test_quick_and_full_modes_do_not_answer_for_each_other(self, tmp_path):
        manifest = RunManifest(tmp_path / "m.json")
        manifest.record(
            "E01", quick=True, pairs=[("vectorized", "abc")], fingerprint="d1"
        )
        assert manifest.entry("E01", quick=True) is not None
        assert manifest.entry("E01", quick=False) is None

    def test_manifest_load_tolerates_corrupt_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{not json", encoding="utf-8")
        manifest = RunManifest.load(path)
        assert manifest.entries == {}

    def test_interrupted_sweep_resumes_incrementally(self, tmp_path):
        store = tmp_path / "store"
        # "Interrupted" run: only E01 completed.
        run_all_resumable(quick=True, ids=["E01"], store=store)
        # The repeated full selection re-solves only what is missing.
        _, summary = run_all_resumable(quick=True, ids=["E01", "E03"], store=store)
        by_id = {entry.experiment_id: entry for entry in summary.entries}
        assert by_id["E01"].fresh_solves == 0
        assert by_id["E01"].store_hits > 0
        assert by_id["E03"].fresh_solves > 0

    def test_run_all_without_store_still_shares_one_runner(self):
        reports, summary = run_all_resumable(quick=True, ids=["E02", "F01"])
        assert [report.experiment_id for report in reports] == ["E02", "F01"]
        assert summary.store_path is None
