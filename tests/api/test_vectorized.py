"""Tests for the vectorized backend and its batch routing."""

from __future__ import annotations

import pytest

from repro.api import (
    BatchRunner,
    GatheringMember,
    GatheringProblem,
    RendezvousProblem,
    SearchProblem,
    VectorizedBackend,
    backend_names,
    solve,
)
from repro.constants import TIME_TOLERANCE
from repro.errors import InfeasibleConfigurationError
from repro.workloads import spec_suite

SEARCH = SearchProblem(distance=1.2, visibility=0.3, bearing=0.6)
FEASIBLE_RV = RendezvousProblem(distance=1.4, visibility=0.35, speed=0.6)
INFEASIBLE_RV = RendezvousProblem(distance=1.4, visibility=0.35)


class TestRegistration:
    def test_vectorized_is_registered(self):
        assert "vectorized" in backend_names()

    def test_cli_backend_flag_accepts_vectorized(self):
        from repro.cli import main

        assert (
            main(
                [
                    "solve",
                    "--kind",
                    "search",
                    "--distance",
                    "1.2",
                    "--visibility",
                    "0.3",
                    "--backend",
                    "vectorized",
                    "--json",
                ]
            )
            == 0
        )


class TestSingleSpecEnvelopes:
    def test_search_matches_the_simulation_backend(self):
        kernel = solve(SEARCH, backend="vectorized")
        scalar = solve(SEARCH, backend="simulation")
        assert kernel.solved is True
        assert abs(kernel.measured_time - scalar.measured_time) <= TIME_TOLERANCE
        assert kernel.bound == scalar.bound
        assert kernel.algorithm == scalar.algorithm
        assert kernel.details["guaranteed_round"] == scalar.details["guaranteed_round"]
        assert kernel.provenance.backend == "vectorized"
        assert kernel.provenance.fidelity == "measured"

    def test_rendezvous_matches_the_simulation_backend(self):
        kernel = solve(FEASIBLE_RV, backend="vectorized")
        scalar = solve(FEASIBLE_RV, backend="simulation")
        assert kernel.solved is True
        assert abs(kernel.measured_time - scalar.measured_time) <= TIME_TOLERANCE
        assert kernel.feasible is True
        assert kernel.details["verdict"] == scalar.details["verdict"]

    def test_infeasible_rendezvous_raises_like_the_engine(self):
        with pytest.raises(InfeasibleConfigurationError):
            solve(INFEASIBLE_RV, backend="vectorized")

    def test_infeasible_with_horizon_runs_to_horizon(self):
        spec = RendezvousProblem(
            distance=1.4, visibility=0.35, horizon=200.0, allow_infeasible=True
        )
        result = solve(spec, backend="vectorized")
        assert result.solved is False
        assert result.feasible is False

    def test_gathering_falls_back_to_the_scalar_engine(self):
        spec = GatheringProblem(
            members=(
                GatheringMember(x=0.0, y=0.0),
                GatheringMember(x=1.0, y=0.3, speed=0.6),
            ),
            visibility=0.4,
        )
        kernel = solve(spec, backend="vectorized")
        scalar = solve(spec, backend="simulation")
        assert kernel.provenance.backend == "simulation"  # honest fallback
        assert kernel.solved == scalar.solved

    def test_result_round_trips_through_json(self):
        from repro.api import SolveResult

        result = solve(SEARCH, backend="vectorized")
        assert SolveResult.from_json(result.to_json()).fingerprint() == result.fingerprint()


class TestBatchRouting:
    def test_batch_runner_uses_the_batch_path(self):
        specs = spec_suite("search-sweep")[:8]
        runner = BatchRunner(backend="vectorized")
        results, stats = runner.run(specs)
        assert stats.solved_in_batch == len({s.canonical_hash() for s in specs})
        assert stats.solved_in_pool == 0
        assert all(result.solved for result in results)
        assert [result.spec for result in results] == specs

    def test_batched_and_single_results_have_equal_fingerprints(self):
        spec = SearchProblem(distance=1.6, visibility=0.25, bearing=1.2)
        single = solve(spec, backend="vectorized")
        batched = VectorizedBackend().solve_specs([spec, SEARCH])[0]
        assert batched.fingerprint() == single.fingerprint()

    def test_mixed_batch_keeps_input_order(self):
        specs = [SEARCH, FEASIBLE_RV, SearchProblem(distance=0.9, visibility=0.25, bearing=2.1)]
        results = VectorizedBackend().solve_specs(specs)
        assert [result.spec for result in results] == specs
        assert all(result.solved for result in results)

    def test_cache_hits_on_the_second_run(self):
        specs = spec_suite("search-sweep")[:6]
        runner = BatchRunner(backend="vectorized")
        _, cold = runner.run(specs)
        _, warm = runner.run(specs)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(specs)

    def test_auto_routes_search_batches_through_the_kernel(self):
        specs = [SEARCH, FEASIBLE_RV, SearchProblem(distance=0.9, visibility=0.25, bearing=2.1)]
        results, stats = BatchRunner(backend="auto").run(specs)
        # Only the search group goes through the kernel; the rendezvous
        # spec solves per spec.
        assert stats.solved_in_batch == 2
        assert results[0].provenance.backend == "vectorized"
        assert results[1].provenance.backend == "simulation"
        assert results[2].provenance.backend == "vectorized"

    def test_mixed_workload_batches_search_and_pools_the_rest(self):
        specs = [
            SEARCH,
            SearchProblem(distance=0.9, visibility=0.25, bearing=2.1),
            RendezvousProblem(distance=1.1, visibility=0.35, speed=0.6),
            RendezvousProblem(distance=1.3, visibility=0.35, speed=0.6),
        ]
        _, stats = BatchRunner(backend="auto", processes=2).run(specs)
        assert stats.solved_in_batch == 2
        assert stats.solved_in_pool == 2
        assert stats.processes == 2

    def test_auto_routes_search_consistently_for_singles_and_batches(self):
        # Singles and batches must pick the same solver so the same spec
        # always produces the same result fingerprint under "auto".
        single = solve(SEARCH, backend="auto")
        assert single.provenance.backend == "vectorized"
        batched = BatchRunner(backend="auto").solve_many(
            [SEARCH, SearchProblem(distance=0.9, visibility=0.25, bearing=2.1)]
        )[0]
        assert batched.fingerprint() == single.fingerprint()

    def test_auto_single_rendezvous_still_uses_the_scalar_engine(self):
        result = solve(FEASIBLE_RV, backend="auto")
        assert result.provenance.backend == "simulation"

    def test_explicit_pool_still_engages_when_nothing_is_batchable(self):
        # A rendezvous-only workload has no search group for the kernel,
        # so an explicitly requested pool must not be silently dropped.
        specs = [
            RendezvousProblem(distance=1.0 + 0.1 * i, visibility=0.35, speed=0.6)
            for i in range(3)
        ]
        _, stats = BatchRunner(backend="auto", processes=2).run(specs)
        assert stats.solved_in_pool == len(specs)
        assert stats.solved_in_batch == 0

    def test_vectorized_event_times_match_simulation_across_a_suite(self):
        specs = spec_suite("search-sweep")
        kernel_results = BatchRunner(backend="vectorized").solve_many(specs)
        scalar_results = BatchRunner(backend="simulation").solve_many(specs)
        for kernel, scalar in zip(kernel_results, scalar_results):
            assert abs(kernel.measured_time - scalar.measured_time) <= TIME_TOLERANCE
