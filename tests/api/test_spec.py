"""Tests for the facade's spec wire format: round-trips, hashing, validation."""

from __future__ import annotations

import json
import math

import pytest

from repro.api import (
    SCHEMA_VERSION,
    GatheringMember,
    GatheringProblem,
    RendezvousProblem,
    SearchProblem,
    spec_from_dict,
    spec_from_json,
    spec_kinds,
)
from repro.errors import InvalidParameterError
from repro.gathering import GatheringInstance
from repro.simulation import RendezvousInstance, SearchInstance
from repro.workloads import search_sweep_suite, symmetric_clock_suite


def _example_specs():
    return [
        SearchProblem(distance=1.2, visibility=0.3, bearing=0.6),
        RendezvousProblem(distance=1.4, visibility=0.35, speed=0.6),
        RendezvousProblem(
            distance=1.1,
            visibility=0.45,
            bearing=2.5,
            time_unit=0.5,
            orientation=1.0,
            chirality=-1,
            horizon=500.0,
            allow_infeasible=True,
        ),
        GatheringProblem(
            members=(
                GatheringMember(x=0.0, y=0.0),
                GatheringMember(x=1.0, y=0.3, speed=0.6),
            ),
            visibility=0.4,
            horizon=5000.0,
        ),
    ]


class TestJsonRoundTrip:
    @pytest.mark.parametrize("spec", _example_specs(), ids=lambda s: s.kind)
    def test_spec_to_json_from_json_equal_hash(self, spec):
        restored = spec_from_json(spec.to_json())
        assert restored == spec
        assert restored.canonical_hash() == spec.canonical_hash()
        assert restored.seed() == spec.seed()

    def test_envelope_carries_schema_version_and_kind(self):
        data = SearchProblem(distance=1.0, visibility=0.2).to_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["kind"] == "search"

    def test_int_and_float_spellings_hash_equally(self):
        assert (
            SearchProblem(distance=2, visibility=1).canonical_hash()
            == SearchProblem(distance=2.0, visibility=1.0).canonical_hash()
        )

    def test_key_order_does_not_change_the_hash(self):
        spec = RendezvousProblem(distance=1.4, visibility=0.35, speed=0.6)
        shuffled = dict(reversed(list(spec.to_dict().items())))
        assert spec_from_dict(shuffled).canonical_hash() == spec.canonical_hash()

    def test_different_specs_hash_differently(self):
        a = SearchProblem(distance=1.0, visibility=0.2)
        b = SearchProblem(distance=1.0, visibility=0.25)
        assert a.canonical_hash() != b.canonical_hash()
        assert a.seed() != b.seed()

    def test_gathering_members_round_trip_as_nested_payloads(self):
        spec = _example_specs()[3]
        data = json.loads(spec.to_json())
        assert isinstance(data["members"], list)
        assert spec_from_dict(data) == spec


class TestParsing:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown spec kind"):
            spec_from_dict({"schema_version": SCHEMA_VERSION, "kind": "teleport"})

    def test_missing_schema_version_rejected(self):
        with pytest.raises(InvalidParameterError, match="schema_version"):
            spec_from_dict({"kind": "search", "distance": 1.0, "visibility": 0.2})

    def test_future_schema_version_rejected(self):
        with pytest.raises(InvalidParameterError, match="schema_version"):
            spec_from_dict(
                {"schema_version": 999, "kind": "search", "distance": 1.0, "visibility": 0.2}
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown field"):
            spec_from_dict(
                {
                    "schema_version": SCHEMA_VERSION,
                    "kind": "search",
                    "distance": 1.0,
                    "visibility": 0.2,
                    "warp": 9,
                }
            )

    def test_invalid_json_text_rejected(self):
        with pytest.raises(InvalidParameterError, match="invalid spec JSON"):
            spec_from_json("{not json")

    def test_spec_kinds_lists_solvable_kinds(self):
        assert spec_kinds() == ["gathering", "rendezvous", "search"]


class TestValidation:
    def test_negative_distance_rejected(self):
        with pytest.raises(InvalidParameterError):
            SearchProblem(distance=-1.0, visibility=0.2)

    def test_zero_visibility_rejected(self):
        with pytest.raises(InvalidParameterError):
            RendezvousProblem(distance=1.0, visibility=0.0)

    def test_bad_chirality_rejected(self):
        with pytest.raises(InvalidParameterError):
            RendezvousProblem(distance=1.0, visibility=0.2, chirality=0)

    def test_non_numeric_field_rejected(self):
        with pytest.raises(InvalidParameterError):
            SearchProblem(distance="fast", visibility=0.2)

    def test_gathering_needs_two_members(self):
        with pytest.raises(InvalidParameterError):
            GatheringProblem(members=(GatheringMember(x=0.0, y=0.0),), visibility=0.3)


class TestInstanceBridge:
    def test_search_to_instance(self):
        spec = SearchProblem(distance=1.2, visibility=0.3, bearing=0.6)
        instance = spec.to_instance()
        assert isinstance(instance, SearchInstance)
        assert instance.distance == pytest.approx(1.2)

    def test_rendezvous_to_instance_carries_attributes(self):
        spec = RendezvousProblem(distance=1.4, visibility=0.35, speed=0.6, chirality=-1)
        instance = spec.to_instance()
        assert isinstance(instance, RendezvousInstance)
        assert instance.attributes.speed == pytest.approx(0.6)
        assert instance.attributes.chirality == -1

    def test_gathering_to_instance(self):
        instance = _example_specs()[3].to_instance()
        assert isinstance(instance, GatheringInstance)
        assert instance.size == 2

    def test_from_instance_round_trip_is_bit_exact(self):
        # Exact components matter: a polar round trip perturbs the distance
        # by an ulp and the round-ceiling bound formulas amplify that.
        for original in search_sweep_suite()[:6]:
            rebuilt = SearchProblem.from_instance(original).to_instance()
            assert rebuilt.target.x == original.target.x
            assert rebuilt.target.y == original.target.y
            assert rebuilt.distance == original.distance
        for original in symmetric_clock_suite()[:4]:
            rebuilt = RendezvousProblem.from_instance(original).to_instance()
            assert rebuilt.separation.x == original.separation.x
            assert rebuilt.separation.y == original.separation.y
            assert rebuilt.distance == original.distance
            assert rebuilt.attributes == original.attributes

    def test_exact_components_survive_json_round_trip(self):
        spec = RendezvousProblem.from_instance(symmetric_clock_suite()[0])
        restored = spec_from_json(spec.to_json())
        assert restored == spec
        assert restored.to_instance().separation == spec.to_instance().separation

    def test_lone_component_rejected(self):
        with pytest.raises(InvalidParameterError, match="together"):
            SearchProblem(visibility=0.3, target_x=1.0)

    def test_component_distance_conflict_rejected(self):
        with pytest.raises(InvalidParameterError, match="contradicts"):
            RendezvousProblem(
                visibility=0.3, distance=5.0, separation_x=1.0, separation_y=0.0
            )

    def test_component_bearing_conflict_rejected(self):
        with pytest.raises(InvalidParameterError, match="bearing.*contradicts"):
            SearchProblem(visibility=0.3, bearing=2.0, target_x=1.0, target_y=0.0)

    def test_consistent_redundant_polar_fields_accepted(self):
        spec = SearchProblem(
            visibility=0.3,
            distance=1.0,
            bearing=math.pi / 2,
            target_x=0.0,
            target_y=1.0,
        )
        assert spec.to_instance().target.y == 1.0

    def test_missing_distance_and_components_rejected(self):
        with pytest.raises(InvalidParameterError, match="required"):
            SearchProblem(visibility=0.3)

    def test_describe_mentions_the_numbers(self):
        text = SearchProblem(distance=1.2, visibility=0.3).describe()
        assert "1.2" in text and "0.3" in text
