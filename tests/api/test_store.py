"""Tests for the persistent content-addressed result store.

Durability contract: concurrent multiprocess writers land all envelopes
exactly once; truncated/corrupt trailing records are skipped with a
warning on reopen, never a crash; warm replays through the store are
fingerprint-identical to cold solves.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.api import (
    BatchRunner,
    ResultStore,
    SearchProblem,
    solve,
)
from repro.api.spec import SCHEMA_VERSION
from repro.errors import InvalidParameterError


def _spec(index: int) -> SearchProblem:
    return SearchProblem(distance=0.8 + 0.1 * index, visibility=0.25, bearing=0.3)


def _solved(index: int):
    return solve(_spec(index), backend="analytic")


class TestPutGet:
    def test_round_trip_marks_from_store(self, tmp_path):
        store = ResultStore(tmp_path)
        result = _solved(0)
        assert store.put("analytic", result) is True
        fetched = store.get("analytic", _spec(0))
        assert fetched is not None
        assert fetched.provenance.from_store is True
        assert result.provenance.from_store is False
        # from_store is fingerprint-neutral: stored == solved.
        assert fetched.fingerprint() == result.fingerprint()

    def test_duplicate_put_is_refused(self, tmp_path):
        store = ResultStore(tmp_path)
        result = _solved(0)
        assert store.put("analytic", result) is True
        assert store.put("analytic", result) is False
        assert len(store) == 1

    def test_get_respects_backend_namespace(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("analytic", _solved(0))
        assert store.get("analytic", _spec(0)) is not None
        assert store.get("simulation", _spec(0)) is None
        assert store.contains("analytic", _spec(0).canonical_hash())
        assert not store.contains("simulation", _spec(0).canonical_hash())

    def test_pending_records_are_readable_before_flush(self, tmp_path):
        store = ResultStore(tmp_path, flush_every=1000)
        store.put("analytic", _solved(0))
        assert store.stats().pending == 1
        assert store.get("analytic", _spec(0)) is not None
        assert sum(1 for _ in store.scan()) == 1

    def test_flush_publishes_one_segment(self, tmp_path):
        store = ResultStore(tmp_path, flush_every=1000)
        for index in range(3):
            store.put("analytic", _solved(index))
        segment = store.flush()
        assert segment is not None and segment.exists()
        assert store.flush() is None  # idle flush is a no-op
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 3

    def test_auto_flush_at_threshold(self, tmp_path):
        store = ResultStore(tmp_path, flush_every=2)
        store.put("analytic", _solved(0))
        store.put("analytic", _solved(1))
        assert store.stats().pending == 0
        assert len(list(tmp_path.glob("segment-*.jsonl"))) == 1

    def test_context_manager_flushes(self, tmp_path):
        with ResultStore(tmp_path, flush_every=1000) as store:
            store.put("analytic", _solved(0))
        assert len(ResultStore(tmp_path)) == 1

    def test_invalid_flush_every_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            ResultStore(tmp_path, flush_every=0)


class TestTolerantReads:
    def test_truncated_trailing_record_skipped_with_warning(self, tmp_path):
        with ResultStore(tmp_path) as store:
            for index in range(3):
                store.put("analytic", _solved(index))
        (segment,) = tmp_path.glob("segment-*.jsonl")
        # Simulate a writer killed mid-append: a half-written last line.
        with segment.open("a", encoding="utf-8") as handle:
            handle.write('{"schema_version": 1, "backend": "analytic", "spec_')
        with pytest.warns(UserWarning, match="corrupt/truncated"):
            reopened = ResultStore(tmp_path)
        assert len(reopened) == 3
        assert reopened.stats().skipped_lines == 1

    def test_corrupt_middle_line_skipped_others_survive(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put("analytic", _solved(0))
        (segment,) = tmp_path.glob("segment-*.jsonl")
        good_line = segment.read_text(encoding="utf-8").strip()
        segment.write_text(
            "not json at all\n" + good_line + "\n", encoding="utf-8"
        )
        with pytest.warns(UserWarning):
            reopened = ResultStore(tmp_path)
        assert reopened.get("analytic", _spec(0)) is not None

    def test_foreign_schema_version_skipped(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put("analytic", _solved(0))
        (segment,) = tmp_path.glob("segment-*.jsonl")
        record = json.loads(segment.read_text(encoding="utf-8"))
        record["schema_version"] = SCHEMA_VERSION + 99
        foreign = json.dumps(record, separators=(",", ":"))
        segment.write_text(
            segment.read_text(encoding="utf-8") + foreign + "\n", encoding="utf-8"
        )
        with pytest.warns(UserWarning):
            reopened = ResultStore(tmp_path)
        assert len(reopened) == 1

    def test_malformed_stored_envelope_returns_none(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put("analytic", _solved(0))
        (segment,) = tmp_path.glob("segment-*.jsonl")
        record = json.loads(segment.read_text(encoding="utf-8"))
        record["result"]["spec"] = {"schema_version": 1, "kind": "search"}  # invalid
        segment.write_text(
            json.dumps(record, separators=(",", ":")) + "\n", encoding="utf-8"
        )
        store = ResultStore(tmp_path)
        with pytest.warns(UserWarning, match="malformed"):
            assert store.get("analytic", _spec(0)) is None

    def test_malformed_envelope_heals_after_a_fresh_solve(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put("analytic", _solved(0))
        (segment,) = tmp_path.glob("segment-*.jsonl")
        record = json.loads(segment.read_text(encoding="utf-8"))
        record["result"]["spec"] = {"schema_version": 1, "kind": "search"}  # invalid
        segment.write_text(
            json.dumps(record, separators=(",", ":")) + "\n", encoding="utf-8"
        )
        # The damaged record is evicted on read, the key accepts a
        # fresh solve, and last-record-wins (publication-ordered segment
        # sequence numbers) makes the replacement stick across reopen.
        with ResultStore(tmp_path) as store:
            with pytest.warns(UserWarning, match="malformed"):
                assert store.get("analytic", _spec(0)) is None
            assert store.put("analytic", _solved(0)) is True
        healed = ResultStore(tmp_path).get("analytic", _spec(0))
        assert healed is not None and healed.provenance.from_store is True


class TestScanStatsGc:
    def test_scan_streams_and_filters_by_backend(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put("analytic", _solved(0))
            store.put("simulation", solve(_spec(0), backend="simulation"))
        store = ResultStore(tmp_path)
        assert sum(1 for _ in store.scan()) == 2
        keys = [key for key, _ in store.scan(backend="analytic")]
        assert len(keys) == 1 and keys[0].backend == "analytic"

    def test_stats_counts_duplicates_across_segments(self, tmp_path):
        with ResultStore(tmp_path) as first:
            first.put("analytic", _solved(0))
        # A second writer process recording the same key lands it in its
        # own segment; simulate by cloning the published one.
        (segment,) = tmp_path.glob("segment-*.jsonl")
        clone = segment.with_name(segment.name.replace("segment-", "segment-9"))
        clone.write_bytes(segment.read_bytes())
        reopened = ResultStore(tmp_path)
        stats = reopened.stats()
        assert stats.records == 2 and stats.unique == 1 and stats.duplicates == 1
        assert "1 unique" in stats.describe()

    def test_gc_compacts_to_one_segment(self, tmp_path):
        for index in range(3):
            with ResultStore(tmp_path) as store:
                store.put("analytic", _solved(index))
        store = ResultStore(tmp_path)
        assert store.stats().segments == 3
        kept, removed = store.gc()
        assert kept == 3 and removed == 3
        assert store.stats().segments == 1
        assert len(ResultStore(tmp_path)) == 3

    def test_gc_keeps_records_published_by_other_handles(self, tmp_path):
        handle_a = ResultStore(tmp_path)
        handle_a.put("analytic", _solved(0))
        handle_a.flush()
        # Another process/handle publishes after A's last scan.
        with ResultStore(tmp_path) as handle_b:
            handle_b.put("analytic", _solved(1))
        kept, _ = handle_a.gc()
        assert kept == 2
        reopened = ResultStore(tmp_path)
        assert reopened.get("analytic", _spec(0)) is not None
        assert reopened.get("analytic", _spec(1)) is not None

    def test_export_includes_records_from_other_handles(self, tmp_path):
        handle_a = ResultStore(tmp_path)
        handle_a.put("analytic", _solved(0))
        handle_a.flush()
        with ResultStore(tmp_path) as handle_b:
            handle_b.put("analytic", _solved(1))
        assert handle_a.export(tmp_path / "warm.jsonl") == 2

    def test_refresh_picks_up_new_segments(self, tmp_path):
        store = ResultStore(tmp_path)
        with ResultStore(tmp_path) as other:
            other.put("analytic", _solved(0))
        assert len(store) == 0
        assert store.refresh() == 1
        assert store.get("analytic", _spec(0)) is not None


class TestExportImport:
    def test_round_trip_and_idempotent_merge(self, tmp_path):
        source_dir = tmp_path / "source"
        target_dir = tmp_path / "target"
        with ResultStore(source_dir) as store:
            for index in range(4):
                store.put("analytic", _solved(index))
        export_file = tmp_path / "warm.jsonl"
        assert ResultStore(source_dir).export(export_file) == 4

        target = ResultStore(target_dir)
        assert target.import_file(export_file) == 4
        assert target.import_file(export_file) == 0  # merge is idempotent
        assert len(ResultStore(target_dir)) == 4

    def test_import_skips_corrupt_lines_with_warning(self, tmp_path):
        with ResultStore(tmp_path / "src") as store:
            store.put("analytic", _solved(0))
        export_file = tmp_path / "warm.jsonl"
        ResultStore(tmp_path / "src").export(export_file)
        export_file.write_text(
            export_file.read_text(encoding="utf-8") + "garbage\n", encoding="utf-8"
        )
        target = ResultStore(tmp_path / "dst")
        with pytest.warns(UserWarning, match="importing"):
            assert target.import_file(export_file) == 1

    def test_import_skips_parseable_record_with_unusable_envelope(self, tmp_path):
        # The record passes the outer-format check but its envelope has
        # no provenance; the import must skip it, keep the good lines,
        # and still flush what it accepted.
        export_file = tmp_path / "warm.jsonl"
        bad = json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "backend": "analytic",
                "spec_hash": "abc",
                "result": {},
            }
        )
        good_store = ResultStore(tmp_path / "src")
        good_store.put("analytic", _solved(0))
        good_store.export(export_file)
        export_file.write_text(
            bad + "\n" + export_file.read_text(encoding="utf-8"), encoding="utf-8"
        )
        target = ResultStore(tmp_path / "dst")
        with pytest.warns(UserWarning, match="importing"):
            assert target.import_file(export_file) == 1
        assert len(ResultStore(tmp_path / "dst")) == 1

    def test_import_missing_file_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(InvalidParameterError):
            store.import_file(tmp_path / "nope.jsonl")

    def test_put_envelope_without_provenance_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(InvalidParameterError):
            store.put_envelope("analytic", {"solved": True})


def _worker_write(payload: tuple[str, int]) -> int:
    """One writer process: solve its own slice and record it."""
    directory, offset = payload
    with ResultStore(directory) as store:
        for index in range(offset, offset + 4):
            store.put("analytic", _solved(index))
    return offset


class TestConcurrentWriters:
    def test_multiprocess_writers_land_all_envelopes_exactly_once(self, tmp_path):
        workers = 3
        with multiprocessing.Pool(workers) as pool:
            pool.map(_worker_write, [(str(tmp_path), 4 * w) for w in range(workers)])
        store = ResultStore(tmp_path)
        stats = store.stats()
        assert stats.unique == 4 * workers
        assert stats.records == 4 * workers  # disjoint slices: no duplicates
        assert stats.duplicates == 0 and stats.skipped_lines == 0
        for index in range(4 * workers):
            assert store.get("analytic", _spec(index)) is not None

    def test_overlapping_writers_deduplicate_on_read(self, tmp_path):
        workers = 3
        # Every worker writes the SAME slice; determinism makes the
        # duplicates byte-identical, and indexing keeps exactly one.
        with multiprocessing.Pool(workers) as pool:
            pool.map(_worker_write, [(str(tmp_path), 0) for _ in range(workers)])
        store = ResultStore(tmp_path)
        stats = store.stats()
        assert stats.unique == 4
        assert stats.records == 4 * workers
        assert stats.duplicates == 4 * (workers - 1)


class TestWarmReplayThroughRunner:
    def test_warm_replay_fingerprints_bit_identical_to_cold(self, tmp_path):
        specs = [_spec(index) for index in range(5)]
        cold_runner = BatchRunner(backend="simulation", store=tmp_path)
        cold, cold_stats = cold_runner.run(specs)
        assert cold_stats.solved_from_store == 0

        warm_runner = BatchRunner(backend="simulation", store=tmp_path)
        warm, warm_stats = warm_runner.run(specs)
        assert warm_stats.solved_from_store == len(specs)
        assert warm_stats.solved_fresh == 0
        assert warm_stats.hit_rate == 1.0
        assert [r.fingerprint() for r in warm] == [r.fingerprint() for r in cold]
        assert all(r.provenance.from_store for r in warm)
        assert not any(r.provenance.from_store for r in cold)
