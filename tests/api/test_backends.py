"""Tests for the backend registry and the SolveResult envelope."""

from __future__ import annotations

import math

import pytest

from repro.api import (
    AnalyticBackend,
    GatheringMember,
    GatheringProblem,
    RendezvousProblem,
    SearchProblem,
    SimulationBackend,
    SolveResult,
    SolverBackend,
    backend_names,
    create_backend,
    register_backend,
    solve,
)
from repro.api.backends import _REGISTRY
from repro.core import rendezvous_time_bound, solve_search, theorem1_search_bound
from repro.errors import InfeasibleConfigurationError, InvalidParameterError


SEARCH = SearchProblem(distance=1.2, visibility=0.3, bearing=0.6)
FEASIBLE_RV = RendezvousProblem(distance=1.4, visibility=0.35, speed=0.6)
INFEASIBLE_RV = RendezvousProblem(distance=1.4, visibility=0.35)


class TestAnalyticBackend:
    def test_search_bound_matches_theorem1(self):
        result = solve(SEARCH, backend="analytic")
        assert result.bound == pytest.approx(theorem1_search_bound(1.2, 0.3))
        assert result.solved is None and result.measured_time is None
        assert result.feasible is True
        assert result.details["guaranteed_round"] >= 1
        assert result.provenance.backend == "analytic"
        assert result.provenance.fidelity == "bound"

    def test_rendezvous_bound_matches_engine(self):
        result = solve(FEASIBLE_RV, backend="analytic")
        assert result.bound == pytest.approx(rendezvous_time_bound(FEASIBLE_RV.to_instance()))
        assert result.feasible is True

    def test_infeasible_rendezvous_reports_without_raising(self):
        result = solve(INFEASIBLE_RV, backend="analytic")
        assert result.feasible is False
        assert result.bound is None
        assert "infeasible" in result.details["verdict"]

    def test_gathering_feasibility(self):
        spec = GatheringProblem(
            members=(GatheringMember(x=0.0, y=0.0), GatheringMember(x=1.0, y=0.3, speed=0.6)),
            visibility=0.4,
        )
        result = solve(spec, backend="analytic")
        assert result.feasible is True
        assert result.details["infeasible_pairs"] == []


class TestSimulationBackend:
    def test_search_matches_engine_entry_point(self):
        result = solve(SEARCH, backend="simulation")
        report = solve_search(SEARCH.to_instance())
        assert result.solved is True
        assert result.measured_time == pytest.approx(report.time)
        assert result.bound == pytest.approx(report.bound)
        assert result.bound_ratio is not None and result.bound_ratio < 1.0
        assert result.algorithm == report.algorithm_name

    def test_from_instance_specs_match_the_engine_exactly(self):
        # Regression guard: the facade must reproduce the engine's numbers
        # bit for bit for specs converted from instances (E01/E04 parity).
        from repro.core import solve_rendezvous
        from repro.workloads import symmetric_clock_suite

        instance = symmetric_clock_suite()[0]
        result = solve(RendezvousProblem.from_instance(instance), backend="simulation")
        report = solve_rendezvous(instance)
        assert result.bound == report.bound
        assert result.measured_time == report.time

    def test_rendezvous_measures_below_bound(self):
        result = solve(FEASIBLE_RV, backend="simulation")
        assert result.solved is True
        assert result.bound_ratio < 1.0
        assert result.details["segments_processed"] > 0

    def test_infeasible_without_horizon_raises_like_the_engine(self):
        with pytest.raises(InfeasibleConfigurationError):
            solve(INFEASIBLE_RV, backend="simulation")

    def test_infeasible_with_horizon_runs_to_horizon(self):
        spec = RendezvousProblem(
            distance=1.4, visibility=0.35, horizon=200.0, allow_infeasible=True
        )
        result = solve(spec, backend="simulation")
        assert result.solved is False
        assert result.measured_time is None
        assert "not solved" in result.summary()

    def test_gathering_simulation(self):
        spec = GatheringProblem(
            members=(GatheringMember(x=0.0, y=0.0), GatheringMember(x=1.0, y=0.3, speed=0.6)),
            visibility=0.4,
            horizon=5000.0,
        )
        result = solve(spec, backend="simulation")
        assert result.solved is True
        assert result.measured_time is not None and result.measured_time > 0.0
        assert result.details["pairs_met"] == 1


class TestAutoBackend:
    def test_feasible_spec_gets_simulated(self):
        result = solve(FEASIBLE_RV, backend="auto")
        assert result.provenance.backend == "simulation"
        assert result.solved is True

    def test_infeasible_spec_falls_back_to_analytic(self):
        result = solve(INFEASIBLE_RV, backend="auto")
        assert result.provenance.backend == "analytic"
        assert result.feasible is False

    def test_infeasible_with_permitted_horizon_still_simulates(self):
        spec = RendezvousProblem(
            distance=1.4, visibility=0.35, horizon=200.0, allow_infeasible=True
        )
        result = solve(spec, backend="auto")
        assert result.provenance.backend == "simulation"
        assert result.solved is False

    def test_infeasible_with_horizon_but_not_allowed_falls_back(self):
        # horizon alone is not permission: the simulation backend would
        # raise, so auto must stay total and answer analytically.
        spec = RendezvousProblem(distance=1.4, visibility=0.35, horizon=100.0)
        result = solve(spec, backend="auto")
        assert result.provenance.backend == "analytic"
        assert result.feasible is False


class TestRegistry:
    def test_builtin_names_registered(self):
        assert {"analytic", "simulation", "auto"} <= set(backend_names())

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown backend"):
            create_backend("quantum")

    def test_backend_instance_accepted_directly(self):
        result = solve(SEARCH, backend=AnalyticBackend())
        assert result.provenance.backend == "analytic"

    def test_custom_backend_dispatches_by_name(self):
        class EchoBackend(SolverBackend):
            name = "echo"
            fidelity = "bound"

            def _solve(self, spec):
                return {
                    "feasible": None,
                    "solved": None,
                    "measured_time": None,
                    "bound": 42.0,
                    "algorithm": None,
                    "details": {},
                }

        register_backend("echo", EchoBackend)
        try:
            result = solve(SEARCH, backend="echo")
            assert result.bound == 42.0
            assert result.provenance.backend == "echo"
        finally:
            _REGISTRY.pop("echo", None)

    def test_unsolvable_spec_kind_rejected_with_clear_error(self):
        member = GatheringMember(x=0.0, y=0.0)  # a spec kind no backend solves alone
        with pytest.raises(InvalidParameterError, match="cannot solve"):
            AnalyticBackend()._solve(member)
        with pytest.raises(InvalidParameterError, match="cannot solve"):
            SimulationBackend()._solve(member)


class TestResultEnvelope:
    def test_json_round_trip_preserves_fingerprint(self):
        result = solve(FEASIBLE_RV, backend="simulation")
        restored = SolveResult.from_dict(result.to_dict())
        assert restored.fingerprint() == result.fingerprint()
        assert restored.spec == result.spec
        assert restored.bound_ratio == pytest.approx(result.bound_ratio)

    def test_provenance_records_spec_hash_and_seed(self):
        result = solve(SEARCH, backend="analytic")
        assert result.provenance.spec_hash == SEARCH.canonical_hash()
        assert result.provenance.seed == SEARCH.seed()
        assert result.provenance.wall_time >= 0.0

    def test_summary_mentions_backend_and_bound(self):
        text = solve(SEARCH, backend="simulation").summary()
        assert "Theorem 1 bound" in text
        assert "simulation backend" in text

    def test_fingerprints_stable_across_reruns(self):
        first = solve(SEARCH, backend="simulation")
        second = solve(SEARCH, backend="simulation")
        assert first.fingerprint() == second.fingerprint()
