"""Golden-hash regression: adding fault models must not move any old hash.

The ``fault_model`` field joined the spec schema with the faults
subsystem.  Because the canonical payload omits it when unset, every
pre-fault spec must keep its exact canonical JSON, canonical hash,
derived seed and store key.  The hex digests below were recorded on the
spec schema *before* the field existed; if any of them moves, cache
keys, store files and cluster shard routing silently diverge between
library versions -- treat a failure here as a wire-format break, not as
a test to update.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.api import (
    GatheringMember,
    GatheringProblem,
    RendezvousProblem,
    ResultStore,
    SearchProblem,
    solve,
    spec_from_json,
)
from repro.experiments import fingerprint_digest
from repro.faults import FaultModel
from repro.workloads import spec_suite

GOLDEN_SEARCH_HASH = "a8e7271502ed7b05f8ac6473b2e9d302a1f9b9510deaa2bc0b1d41e76531f958"
GOLDEN_SEARCH_JSON = (
    '{"bearing":0.8,"distance":1.5,"kind":"search","schema_version":1,'
    '"target_x":null,"target_y":null,"visibility":0.3}'
)
GOLDEN_RENDEZVOUS_HASH = "0e2274315e43167a0e6d7d71bb932304a50328156512467f722cbbef0e6f0ebf"
GOLDEN_GATHERING_HASH = "88a09ef55354a07cb3bd1d4757d3931d812dbaeb8df8517ca6c91c8137de922e"
GOLDEN_SUITE_DIGESTS = {
    "search-sweep": "95ac1df39dc754d6321e5ba8efeea6b2443d86df66997802e6255a69ef928852",
    "symmetric-clock": "c33ffab36d7700c867bb42e57a624883c9af7f233046135b1928d35f6eae80c1",
}
GOLDEN_ANALYTIC_FINGERPRINT = "1fe17c5c2c36ccba0f8495289d553419601a2b87d9cf8f3c09ea85bf04216d3e"


def _search() -> SearchProblem:
    return SearchProblem(distance=1.5, visibility=0.3, bearing=0.8)


def _rendezvous() -> RendezvousProblem:
    return RendezvousProblem(distance=1.6, visibility=0.35, bearing=0.9, speed=0.7)


def _gathering() -> GatheringProblem:
    return GatheringProblem(
        members=(GatheringMember(0.0, 0.0), GatheringMember(1.0, 0.5, speed=0.8)),
        visibility=0.4,
    )


class TestGoldenHashes:
    def test_search_canonical_json_is_byte_identical(self):
        assert _search().canonical_json() == GOLDEN_SEARCH_JSON

    def test_search_hash(self):
        assert _search().canonical_hash() == GOLDEN_SEARCH_HASH

    def test_rendezvous_hash(self):
        assert _rendezvous().canonical_hash() == GOLDEN_RENDEZVOUS_HASH

    def test_gathering_hash(self):
        assert _gathering().canonical_hash() == GOLDEN_GATHERING_HASH

    def test_none_fault_model_is_never_serialized(self):
        spec = _search()
        assert spec.fault_model is None
        assert "fault_model" not in spec.payload()
        assert "fault_model" not in spec.canonical_json()

    def test_explicit_fault_model_does_move_the_hash(self):
        """Sanity: the field genuinely participates when it is set."""
        faulted = dataclasses.replace(
            _search(),
            fault_model=FaultModel(kind="crash-stop", robot="reference", crash_time=1.0),
        )
        assert faulted.canonical_hash() != GOLDEN_SEARCH_HASH
        carrier = dataclasses.replace(_search(), fault_model=FaultModel(trials=2))
        assert carrier.canonical_hash() != GOLDEN_SEARCH_HASH

    def test_derived_seed_unchanged(self):
        assert _search().seed() == _search().seed_from_hash(GOLDEN_SEARCH_HASH)


class TestRoundTrips:
    def test_json_round_trip_preserves_spec_and_hash(self):
        for spec in (_search(), _rendezvous(), _gathering()):
            restored = spec_from_json(spec.to_json())
            assert restored == spec
            assert restored.canonical_hash() == spec.canonical_hash()

    def test_faulted_spec_round_trips_too(self):
        spec = dataclasses.replace(
            _rendezvous(),
            fault_model=FaultModel(
                kind="crash-recovery",
                crash_time=1.5,
                recovery_delay=3.0,
                trials=8,
                mc_seed=5,
                jitter=0.2,
            ),
        )
        restored = spec_from_json(spec.to_json())
        assert restored == spec
        assert restored.fault_model == spec.fault_model
        assert restored.canonical_hash() == spec.canonical_hash()

    def test_store_keys_unchanged_for_pre_fault_specs(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = _search()
        result = solve(spec, backend="analytic")
        store.put("analytic", result)
        loaded = store.get("analytic", spec)
        assert loaded is not None
        assert loaded.provenance.spec_hash == GOLDEN_SEARCH_HASH


class TestSuiteDigests:
    def test_pre_fault_suites_are_frozen(self):
        for name, expected in GOLDEN_SUITE_DIGESTS.items():
            joined = "".join(spec.canonical_hash() for spec in spec_suite(name))
            digest = hashlib.sha256(joined.encode("utf-8")).hexdigest()
            assert digest == expected, f"suite {name!r} drifted"

    def test_analytic_result_fingerprints_are_frozen(self):
        digest = fingerprint_digest([solve(_search(), backend="analytic")])
        assert digest == GOLDEN_ANALYTIC_FINGERPRINT
