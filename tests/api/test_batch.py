"""Tests for BatchRunner: determinism (serial vs pooled), caching, ordering."""

from __future__ import annotations

import pytest

from repro.api import BatchRunner, RendezvousProblem, SearchProblem, solve, solve_batch
from repro.errors import InvalidParameterError


def _small_workload():
    return [
        SearchProblem(distance=1.2, visibility=0.3, bearing=0.6),
        RendezvousProblem(distance=1.4, visibility=0.35, speed=0.6),
        SearchProblem(distance=0.9, visibility=0.25, bearing=2.1),
    ]


def _fingerprints(results):
    return [result.fingerprint() for result in results]


class TestDeterminism:
    def test_two_serial_runs_are_identical(self):
        specs = _small_workload()
        first = BatchRunner(backend="simulation").solve_many(specs)
        second = BatchRunner(backend="simulation").solve_many(specs)
        assert _fingerprints(first) == _fingerprints(second)

    def test_serial_and_pooled_runs_are_identical(self):
        specs = _small_workload()
        serial = BatchRunner(backend="simulation").solve_many(specs)
        pooled = BatchRunner(backend="simulation", processes=2).solve_many(specs)
        assert _fingerprints(serial) == _fingerprints(pooled)

    def test_runtime_registered_backend_solves_in_process_despite_pool(self):
        from repro.api import SolverBackend, register_backend
        from repro.api.backends import _REGISTRY

        class EchoBackend(SolverBackend):
            name = "echo-batch"
            fidelity = "bound"

            def _solve(self, spec):
                return {
                    "feasible": None,
                    "solved": None,
                    "measured_time": None,
                    "bound": 7.0,
                    "algorithm": None,
                    "details": {},
                }

        register_backend("echo-batch", EchoBackend)
        try:
            # A spawn-style worker would not see the runtime registration,
            # so custom backends must bypass the pool.
            runner = BatchRunner(backend="echo-batch", processes=2)
            results, stats = runner.run(_small_workload())
            assert all(result.bound == 7.0 for result in results)
            assert stats.processes == 1 and stats.solved_in_pool == 0
        finally:
            _REGISTRY.pop("echo-batch", None)

        # Replacing a *builtin* name must equally bypass the pool: a fresh
        # worker would resolve "analytic" to the original builtin.
        original = _REGISTRY["analytic"]
        register_backend("analytic", EchoBackend)
        try:
            runner = BatchRunner(backend="analytic", processes=2)
            results, stats = runner.run(_small_workload())
            assert all(result.bound == 7.0 for result in results)
            assert stats.processes == 1 and stats.solved_in_pool == 0
        finally:
            register_backend("analytic", original)

    def test_seeds_derive_from_the_spec_alone(self):
        specs = _small_workload()
        results = BatchRunner(backend="analytic").solve_many(specs)
        assert [r.provenance.seed for r in results] == [s.seed() for s in specs]


class TestOrderingAndDuplicates:
    def test_results_match_input_order(self):
        specs = _small_workload()
        results = BatchRunner(backend="analytic").solve_many(specs)
        assert [result.spec for result in results] == specs

    def test_duplicate_specs_solved_once(self):
        spec = SearchProblem(distance=1.2, visibility=0.3)
        runner = BatchRunner(backend="analytic")
        results, stats = runner.run([spec, spec, spec])
        assert stats.total == 3 and stats.unique == 1
        assert len(results) == 3
        assert _fingerprints(results)[0] == _fingerprints(results)[1]


class TestCache:
    def test_second_run_hits_the_cache(self):
        specs = _small_workload()
        runner = BatchRunner(backend="simulation")
        _, cold = runner.run(specs)
        warm_results, warm = runner.run(specs)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(specs)
        assert runner.cache_len == len(specs)
        assert _fingerprints(warm_results) == _fingerprints(runner.solve_many(specs))

    def test_lru_eviction_respects_cache_size(self):
        runner = BatchRunner(backend="analytic", cache_size=1)
        a = SearchProblem(distance=1.0, visibility=0.2)
        b = SearchProblem(distance=2.0, visibility=0.2)
        runner.solve_many([a])
        runner.solve_many([b])
        assert runner.cache_len == 1
        _, stats = runner.run([a])  # evicted, must be re-solved
        assert stats.cache_hits == 0

    def test_cache_disabled_with_size_zero(self):
        runner = BatchRunner(backend="analytic", cache_size=0)
        spec = SearchProblem(distance=1.0, visibility=0.2)
        runner.solve_many([spec])
        _, stats = runner.run([spec])
        assert stats.cache_hits == 0 and runner.cache_len == 0

    def test_clear_cache(self):
        runner = BatchRunner(backend="analytic")
        runner.solve_many([SearchProblem(distance=1.0, visibility=0.2)])
        runner.clear_cache()
        assert runner.cache_len == 0


class TestStoreTier:
    def test_store_answers_below_the_lru(self, tmp_path):
        specs = _small_workload()
        cold = BatchRunner(backend="analytic", store=tmp_path)
        _, cold_stats = cold.run(specs)
        assert cold_stats.solved_from_store == 0
        assert cold_stats.solved_fresh == len(specs)

        warm = BatchRunner(backend="analytic", store=tmp_path)
        results, warm_stats = warm.run(specs)
        assert warm_stats.solved_from_store == len(specs)
        assert warm_stats.cache_hits == 0  # fresh runner: LRU is empty
        assert warm_stats.solved_fresh == 0
        assert warm_stats.hit_rate == 1.0
        assert all(result.provenance.from_store for result in results)
        # The LRU now holds the store answers: a second pass is pure LRU.
        _, third_stats = warm.run(specs)
        assert third_stats.cache_hits == len(specs)
        assert third_stats.solved_from_store == 0

    def test_store_accepts_a_path_string(self, tmp_path):
        runner = BatchRunner(backend="analytic", store=str(tmp_path / "s"))
        runner.run(_small_workload())
        assert runner.store is not None and len(runner.store) == len(_small_workload())

    def test_stats_describe_mentions_store_hits(self, tmp_path):
        runner = BatchRunner(backend="analytic", store=tmp_path)
        runner.run(_small_workload())
        _, stats = BatchRunner(backend="analytic", store=tmp_path).run(_small_workload())
        text = stats.describe()
        assert "store hits" in text and "hit rate 100%" in text

    def test_backend_override_keys_results_separately(self, tmp_path):
        spec = SearchProblem(distance=1.2, visibility=0.3)
        runner = BatchRunner(backend="analytic", store=tmp_path)
        (analytic,), _ = runner.run([spec])
        (simulated,), stats = runner.run([spec], backend="simulation")
        assert stats.cache_hits == 0  # different backend, different key
        assert analytic.backend == "analytic" and simulated.backend == "simulation"
        assert simulated.measured_time is not None
        # Both live in the store under their own backend namespace.
        assert runner.store.contains("analytic", spec.canonical_hash())
        assert runner.store.contains("simulation", spec.canonical_hash())


class TestStatsAndValidation:
    def test_stats_describe_mentions_throughput(self):
        runner = BatchRunner(backend="analytic")
        _, stats = runner.run(_small_workload())
        text = stats.describe()
        assert "specs/s" in text and "cache hits" in text
        assert stats.specs_per_second > 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            BatchRunner(processes=0)
        with pytest.raises(InvalidParameterError):
            BatchRunner(chunksize=0)
        with pytest.raises(InvalidParameterError):
            BatchRunner(cache_size=-1)

    def test_empty_batch(self):
        results, stats = BatchRunner().run([])
        assert results == [] and stats.total == 0

    def test_solve_batch_convenience_matches_solve(self):
        spec = SearchProblem(distance=1.2, visibility=0.3, bearing=0.6)
        (batched,) = solve_batch([spec], backend="simulation")
        assert batched.fingerprint() == solve(spec, backend="simulation").fingerprint()
