"""Unit tests for Robot and RobotPair."""

from __future__ import annotations

import math

import pytest

from repro.algorithms import SearchCircle
from repro.errors import InvalidParameterError
from repro.geometry import Vec2
from repro.robots import REFERENCE_ATTRIBUTES, Robot, RobotAttributes, make_pair


class TestRobot:
    def test_world_trajectory_of_the_reference_robot_matches_local_commands(self):
        robot = Robot(name="R", start=Vec2(0.0, 0.0))
        trajectory = robot.world_trajectory(SearchCircle(1.0))
        assert trajectory.position(0.0).is_close(Vec2(0.0, 0.0))
        assert trajectory.position(1.0).is_close(Vec2(1.0, 0.0))

    def test_world_trajectory_respects_the_start_position(self):
        robot = Robot(name="R'", start=Vec2(5.0, -2.0))
        trajectory = robot.world_trajectory(SearchCircle(1.0))
        assert trajectory.position(0.0).is_close(Vec2(5.0, -2.0))

    def test_slow_robot_moves_at_its_own_speed(self):
        robot = Robot(name="R'", start=Vec2(0.0, 0.0), attributes=RobotAttributes(speed=0.5))
        trajectory = robot.world_trajectory(SearchCircle(1.0))
        # After one (global) time unit a speed-0.5 robot has covered 0.5.
        assert trajectory.position(1.0).distance_to(Vec2(0.0, 0.0)) == pytest.approx(0.5)

    def test_max_speed(self):
        assert Robot(name="x", attributes=RobotAttributes(speed=0.7)).max_speed == pytest.approx(0.7)

    def test_describe_includes_name_and_attributes(self):
        text = Robot(name="R-prime", attributes=RobotAttributes(speed=2.0)).describe()
        assert "R-prime" in text and "v=2" in text


class TestMakePair:
    def test_reference_robot_is_at_the_requested_start(self):
        pair = make_pair(Vec2(1.0, 1.0), RobotAttributes(speed=0.5))
        assert pair.reference.start.is_close(Vec2(0.0, 0.0))
        assert pair.reference.attributes == REFERENCE_ATTRIBUTES

    def test_other_robot_is_displaced_by_the_separation(self):
        pair = make_pair(Vec2(3.0, 4.0), RobotAttributes())
        assert pair.other.start.is_close(Vec2(3.0, 4.0))
        assert pair.initial_distance == pytest.approx(5.0)

    def test_separation_vector(self):
        pair = make_pair(Vec2(2.0, -1.0), RobotAttributes(), reference_start=Vec2(1.0, 1.0))
        assert pair.separation.is_close(Vec2(2.0, -1.0))
        assert pair.other.start.is_close(Vec2(3.0, 0.0))

    def test_zero_separation_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_pair(Vec2(0.0, 0.0), RobotAttributes())

    def test_mirrored_robots_follow_mirror_image_trajectories(self):
        """Lemma 4's reflection shows up in the actual world trajectories."""
        attributes = RobotAttributes(chirality=-1)
        pair = make_pair(Vec2(0.0, 2.0), attributes)
        algorithm = SearchCircle(1.0)
        reference_trajectory = pair.reference.world_trajectory(algorithm)
        other_trajectory = pair.other.world_trajectory(algorithm)
        # Sample a point a quarter of the way around the circle: the y
        # displacements (relative to each robot's start) must be opposite.
        t = 1.0 + math.pi / 2
        reference_displacement = reference_trajectory.position(t) - pair.reference.start
        other_displacement = other_trajectory.position(t) - pair.other.start
        assert reference_displacement.x == pytest.approx(other_displacement.x, abs=1e-9)
        assert reference_displacement.y == pytest.approx(-other_displacement.y, abs=1e-9)
