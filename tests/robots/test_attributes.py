"""Unit tests for robot attributes."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidParameterError
from repro.geometry import Vec2
from repro.robots import REFERENCE_ATTRIBUTES, RobotAttributes


class TestValidation:
    def test_defaults_are_the_reference_robot(self):
        assert RobotAttributes() == REFERENCE_ATTRIBUTES
        assert REFERENCE_ATTRIBUTES.is_reference()

    @pytest.mark.parametrize("speed", [0.0, -1.0, float("inf")])
    def test_invalid_speed_rejected(self, speed):
        with pytest.raises(InvalidParameterError):
            RobotAttributes(speed=speed)

    @pytest.mark.parametrize("time_unit", [0.0, -0.5, float("nan")])
    def test_invalid_time_unit_rejected(self, time_unit):
        with pytest.raises(InvalidParameterError):
            RobotAttributes(time_unit=time_unit)

    def test_invalid_chirality_rejected(self):
        with pytest.raises(InvalidParameterError):
            RobotAttributes(chirality=0)


class TestNormalisation:
    def test_orientation_reduced_to_canonical_range(self):
        attributes = RobotAttributes(orientation=-math.pi / 2).normalized()
        assert attributes.orientation == pytest.approx(3 * math.pi / 2)

    def test_full_turn_counts_as_reference(self):
        assert RobotAttributes(orientation=2 * math.pi).is_reference()


class TestDifferencePredicates:
    def test_speed_difference(self):
        assert RobotAttributes(speed=0.5).differs_in_speed()
        assert not RobotAttributes(speed=1.0).differs_in_speed()

    def test_clock_difference(self):
        assert RobotAttributes(time_unit=2.0).differs_in_clock()
        assert not RobotAttributes().differs_in_clock()

    def test_orientation_difference(self):
        assert RobotAttributes(orientation=1.0).differs_in_orientation()
        assert not RobotAttributes(orientation=0.0).differs_in_orientation()
        assert not RobotAttributes(orientation=2 * math.pi).differs_in_orientation()

    def test_chirality_difference(self):
        assert RobotAttributes(chirality=-1).differs_in_chirality()
        assert not RobotAttributes().differs_in_chirality()


class TestFrame:
    def test_frame_carries_all_attributes(self):
        attributes = RobotAttributes(speed=0.5, time_unit=2.0, orientation=1.0, chirality=-1)
        frame = attributes.frame(Vec2(3.0, 3.0))
        assert frame.origin == Vec2(3.0, 3.0)
        assert frame.speed == pytest.approx(0.5)
        assert frame.time_unit == pytest.approx(2.0)
        assert frame.orientation == pytest.approx(1.0)
        assert frame.chirality == -1

    def test_describe_mentions_all_parameters(self):
        text = RobotAttributes(speed=0.5, time_unit=2.0).describe()
        assert "v=0.5" in text and "tau=2" in text
