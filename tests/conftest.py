"""Shared pytest fixtures."""

from __future__ import annotations

import math

import pytest

from repro.geometry import Vec2
from repro.robots import RobotAttributes
from repro.simulation import RendezvousInstance, SearchInstance


@pytest.fixture
def simple_search_instance() -> SearchInstance:
    """A small search instance solvable in the first rounds."""
    return SearchInstance(target=Vec2(1.2, 0.7), visibility=0.3)


@pytest.fixture
def speed_rendezvous_instance() -> RendezvousInstance:
    """A feasible equal-clock instance where only the speeds differ."""
    return RendezvousInstance(
        separation=Vec2(1.5, 0.5), visibility=0.35, attributes=RobotAttributes(speed=0.6)
    )


@pytest.fixture
def clock_rendezvous_instance() -> RendezvousInstance:
    """A feasible instance where only the clocks differ."""
    return RendezvousInstance(
        separation=Vec2(1.0, 0.4), visibility=0.45, attributes=RobotAttributes(time_unit=0.5)
    )


@pytest.fixture
def infeasible_instance() -> RendezvousInstance:
    """Two attribute-identical robots (provably infeasible)."""
    return RendezvousInstance(
        separation=Vec2(0.0, 1.5), visibility=0.3, attributes=RobotAttributes()
    )


@pytest.fixture
def mirrored_attributes() -> RobotAttributes:
    """Mirrored robot with a rotation: infeasible when speeds and clocks agree."""
    return RobotAttributes(orientation=math.pi / 3, chirality=-1)
