"""Integration tests for the asyncio cluster front (:class:`AsyncShardRouter`).

Same contract as the threaded router -- unchanged wire format, answers
bit-identical to a direct ``solve()`` -- plus the streamed ``subscribe``
verb fanned out over the fleet.  Real worker subprocesses, analytic
backend to keep the fleet cheap.
"""

from __future__ import annotations

import json

import pytest

from repro.api import SearchProblem, SolveResult, solve
from repro.api.batch import BatchRunner
from repro.cluster import AsyncShardRouter, ClusterSupervisor
from repro.experiments.manifest import fingerprint_digest
from repro.service import ServiceClient, request_lines

BACKEND = "analytic"


def _specs(count: int) -> list[SearchProblem]:
    return [SearchProblem(distance=1.0 + 0.05 * i, visibility=0.3) for i in range(count)]


@pytest.fixture(scope="module")
def async_cluster():
    supervisor = ClusterSupervisor(workers=2, backend=BACKEND, async_workers=True)
    supervisor.start()
    router = AsyncShardRouter(
        supervisor, backend=BACKEND, route_timeout=60.0, sweep_fanout=4
    )
    router.serve_background()
    try:
        yield router
    finally:
        router.stop()
        assert router.leaked_tasks == []


class TestAsyncRouting:
    def test_solve_parity_and_cluster_verbs(self, async_cluster):
        specs = _specs(8)
        lines = [
            json.dumps({"op": "solve", "spec": spec.to_dict(), "id": i})
            for i, spec in enumerate(specs)
        ]
        responses = [
            json.loads(line)
            for line in request_lines(async_cluster.host, async_cluster.port, lines)
        ]
        assert all(response["ok"] for response in responses)
        for i, response in enumerate(responses):
            served = SolveResult.from_dict(response["result"])
            assert served.fingerprint() == solve(specs[i], backend=BACKEND).fingerprint()

        status_line, metrics_line = request_lines(
            async_cluster.host,
            async_cluster.port,
            [json.dumps({"op": "cluster-status"}), json.dumps({"op": "metrics"})],
        )
        status = json.loads(status_line)["cluster"]
        assert status["workers"] == 2
        assert status["alive"] == 2
        metrics = json.loads(metrics_line)["metrics"]
        assert metrics["cluster"]["workers"] == 2
        assert "subscriptions" in metrics
        # The async front's own wire, not the unserved core's zeros.
        assert metrics["transport"]["json"]["requests"] > 0

    def test_binary_negotiation_round_trip(self, async_cluster):
        spec = SearchProblem(distance=3.3, visibility=0.3)
        with ServiceClient(
            async_cluster.host, async_cluster.port, binary=True
        ) as client:
            assert client.binary
            response = client.request({"op": "solve", "spec": spec.to_dict()})
        assert response["ok"]
        assert (
            SolveResult.from_dict(response["result"]).fingerprint()
            == solve(spec, backend=BACKEND).fingerprint()
        )

    def test_subscribe_fans_out_with_digest_parity(self, async_cluster):
        specs = _specs(12)
        suite = specs + specs[:3]
        with ServiceClient(async_cluster.host, async_cluster.port) as client:
            stream = client.subscribe(suite, request_id="fleet-sweep")
            records = list(stream)
        assert stream.ack["total"] == 15
        assert stream.ack["unique"] == 12
        assert [record["seq"] for record in records] == list(range(12))
        assert {record["key"]["spec_hash"] for record in records} == {
            spec.canonical_hash() for spec in specs
        }
        assert all(record["id"] == "fleet-sweep" for record in records)
        summary = stream.summary
        assert summary["records"] == 12
        assert summary["errors"] == 0

        results, _ = BatchRunner(backend=BACKEND).run(specs)
        assert summary["fingerprint_digest"] == fingerprint_digest(results)


class TestClusterStatusSchema:
    """Satellite pin: the async front's ``cluster-status`` answer is
    top-level identical to the threaded front's (both delegate to one
    ``_dispatch``), under the verb declared in the protocol module."""

    def test_status_schema_matches_the_threaded_front(self, async_cluster):
        from repro.service.protocol import CLUSTER_STATUS_OP

        (line,) = request_lines(
            async_cluster.host, async_cluster.port, [json.dumps({"op": CLUSTER_STATUS_OP})]
        )
        response = json.loads(line)
        assert response["op"] == CLUSTER_STATUS_OP
        assert set(response) == {"ok", "op", "cluster"}
        assert response["ok"] is True
