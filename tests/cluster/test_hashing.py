"""HashRing: determinism, coverage, balance and resize stability."""

from __future__ import annotations

import pytest

from repro.cluster import HashRing, shard_key
from repro.errors import InvalidParameterError


def _keys(count: int) -> list[str]:
    return [shard_key("auto", f"{i:064x}") for i in range(count)]


class TestRing:
    def test_lookup_is_deterministic_and_order_independent(self):
        ring_a = HashRing([0, 1, 2, 3])
        ring_b = HashRing([3, 1, 0, 2])
        for key in _keys(200):
            assert ring_a.lookup(key) == ring_b.lookup(key)

    def test_preference_starts_at_home_and_covers_every_shard(self):
        ring = HashRing([0, 1, 2, 3])
        for key in _keys(50):
            preference = ring.preference(key)
            assert preference[0] == ring.lookup(key)
            assert sorted(preference) == [0, 1, 2, 3]

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing([0, 1, 2, 3], replicas=64)
        counts = {node: 0 for node in ring.nodes}
        keys = _keys(4000)
        for key in keys:
            counts[ring.lookup(key)] += 1
        for node, count in counts.items():
            # Within a factor ~2 of the fair share is plenty for 64
            # virtual points; this guards against gross clumping.
            assert count > len(keys) / (2 * len(ring.nodes)), (node, counts)

    def test_removing_a_shard_only_moves_its_own_keys(self):
        before = HashRing([0, 1, 2, 3])
        after = HashRing([0, 1, 2])  # shard 3 removed
        moved = 0
        for key in _keys(1000):
            owner = before.lookup(key)
            if owner == 3:
                moved += 1
            else:
                assert after.lookup(key) == owner  # survivors keep their keys
        assert moved > 0  # shard 3 did own part of the space

    def test_single_node_ring_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.lookup(key) == "only" for key in _keys(20))
        assert ring.preference(_keys(1)[0]) == ["only"]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            HashRing([])
        with pytest.raises(InvalidParameterError):
            HashRing([0, 0])
        with pytest.raises(InvalidParameterError):
            HashRing([0], replicas=0)

    def test_shard_key_includes_the_backend(self):
        assert shard_key("auto", "abc") != shard_key("analytic", "abc")
