"""Integration tests for the distributed ``sweep`` verb on the async cluster.

Real worker subprocesses behind an :class:`AsyncShardRouter`.  The
parity/fold/counter tests share one analytic fleet; the failover test
boots its own ``simulation``-backend fleet with a persistent store so a
mid-sweep SIGKILL lands while the victim still owns unfinished specs,
then checks the re-partitioned digest, the exactly-once store merge and
that the respawned worker takes traffic again.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.api import ResultStore, SearchProblem
from repro.api.batch import BatchRunner
from repro.cluster import AsyncShardRouter, ClusterSupervisor, ShardRouter
from repro.experiments.manifest import fingerprint_digest, fold_digest
from repro.analysis.streaming import fold_envelopes
from repro.service import ServiceClient, request_lines
from repro.workloads import spec_suite

BACKEND = "analytic"


def _specs(count: int) -> list[SearchProblem]:
    return [SearchProblem(distance=1.0 + 0.05 * i, visibility=0.3) for i in range(count)]


def _metrics(router) -> dict:
    (line,) = request_lines(router.host, router.port, [json.dumps({"op": "metrics"})])
    return json.loads(line)["metrics"]


@pytest.fixture(scope="module")
def async_cluster():
    supervisor = ClusterSupervisor(workers=2, backend=BACKEND, async_workers=True)
    supervisor.start()
    router = AsyncShardRouter(
        supervisor, backend=BACKEND, route_timeout=60.0, sweep_fanout=4
    )
    router.serve_background()
    try:
        yield router
    finally:
        router.stop()
        assert router.leaked_tasks == []


class TestDistributedSweep:
    def test_stream_digest_parity_and_honest_ack(self, async_cluster):
        specs = _specs(16)
        expected_results, _ = BatchRunner(backend=BACKEND).run(specs)
        with ServiceClient(async_cluster.host, async_cluster.port) as client:
            stream = client.sweep(specs, backend=BACKEND)
            records = list(stream)

        ack = stream.ack
        partitions = ack["partitions"]
        # The ack reports the real fan-out and partition sizes -- no
        # silent ceiling: the sizes must sum to the unique spec count.
        assert ack["fanout"] == len(partitions) > 1
        assert sum(row["specs"] for row in partitions) == ack["unique"] == 16
        assert [record["seq"] for record in records] == list(range(16))
        assert {record["key"]["spec_hash"] for record in records} == {
            result.provenance.spec_hash for result in expected_results
        }
        summary = stream.summary
        assert summary["fingerprint_digest"] == fingerprint_digest(expected_results)
        assert summary["errors"] == 0
        assert summary["repartitioned"] == 0
        assert sum(summary["tiers"].values()) == 16
        # Per-shard accounting in the summary: every partition finished.
        assert all(row["completed"] == row["specs"] for row in summary["partitions"])

    def test_fold_mode_merges_to_the_local_fold(self, async_cluster):
        specs = _specs(12)
        expected_results, _ = BatchRunner(backend=BACKEND).run(specs)
        with ServiceClient(async_cluster.host, async_cluster.port) as client:
            stream = client.sweep(specs, backend=BACKEND, mode="fold")
            records = list(stream)
        partials = [record for record in records if record["op"] == "partial"]
        assert len(partials) == 1
        assert not [record for record in records if record["op"] == "completion"]
        local = fold_envelopes(result.to_dict() for result in expected_results)
        merged = partials[0]["fold"]
        # Analytic results carry no measured times, so the merged wire
        # doc is exact here (the float-tolerance story is the property
        # tests' job).
        assert merged == local.to_wire()
        assert stream.summary["fold_digest"] == fold_digest(expected_results)

    def test_sweep_counters_ride_metrics_and_cluster_status(self, async_cluster):
        specs = _specs(10)
        with ServiceClient(async_cluster.host, async_cluster.port) as client:
            list(client.sweep(specs, backend=BACKEND))
        metrics_line, status_line = request_lines(
            async_cluster.host,
            async_cluster.port,
            [json.dumps({"op": "metrics"}), json.dumps({"op": "cluster-status"})],
        )
        for document in (
            json.loads(metrics_line)["metrics"],
            json.loads(status_line)["cluster"],
        ):
            rows = document["shards"]
            assert all("sweeps" in row for row in rows)
            assert sum(row["sweeps"]["swept"] for row in rows) > 0
            assert all(
                row["sweeps"]["completed"] <= row["sweeps"]["swept"] for row in rows
            )

    def test_subscribe_ack_reports_its_fanout(self, async_cluster):
        specs = _specs(8)
        with ServiceClient(async_cluster.host, async_cluster.port) as client:
            stream = client.subscribe(specs, backend=BACKEND)
            list(stream)
        # sweep_fanout=4 on the fixture: the previously-silent ceiling
        # is now visible in the ack.
        assert stream.ack["fanout"] == 4


class TestSweepRefusals:
    def test_threaded_front_refuses_sweep(self):
        supervisor = ClusterSupervisor(workers=1, backend=BACKEND)
        supervisor.start()
        router = ShardRouter(supervisor, backend=BACKEND)
        try:
            router.serve_background()
            spec = _specs(1)[0]
            (line,) = request_lines(
                router.host,
                router.port,
                [json.dumps({"op": "sweep", "specs": [spec.to_dict()]})],
            )
            response = json.loads(line)
            assert response["ok"] is False
            assert "--async" in response["error"]
        finally:
            router.stop()

    def test_async_front_over_threaded_workers_refuses_cleanly(self):
        supervisor = ClusterSupervisor(workers=1, backend=BACKEND, async_workers=False)
        supervisor.start()
        router = AsyncShardRouter(supervisor, backend=BACKEND, route_timeout=10.0)
        try:
            router.serve_background()
            specs = _specs(2)
            from repro.errors import ReproError

            with ServiceClient(router.host, router.port) as client:
                with pytest.raises(ReproError, match="async"):
                    client.sweep(specs, backend=BACKEND)
        finally:
            router.stop()


class TestWorkerKillMidSweep:
    def test_kill_repartitions_stores_once_and_respawns(self, tmp_path):
        suite = spec_suite("search-sweep")
        expected_results, _ = BatchRunner(backend="simulation").run(suite)
        expected_digest = fingerprint_digest(expected_results)

        store_dir = tmp_path / "store"
        supervisor = ClusterSupervisor(
            workers=2, backend="simulation", store=store_dir, async_workers=True
        )
        supervisor.start()
        router = AsyncShardRouter(supervisor, backend="simulation", route_timeout=60.0)
        try:
            router.serve_background()
            with ServiceClient(router.host, router.port, timeout=120) as client:
                stream = client.sweep(suite, backend="simulation")
                records = []
                for record in stream:
                    records.append(record)
                    if len(records) == 2:
                        supervisor.handles[0].process.kill()
                summary = stream.summary

            # The dead worker's unfinished specs re-partitioned along the
            # ring and the digest still matches the local run exactly.
            assert summary["errors"] == 0
            assert summary["repartitioned"] > 0
            assert len(records) == len(suite)
            assert summary["fingerprint_digest"] == expected_digest
            spec_hashes = [record["key"]["spec_hash"] for record in records]
            assert len(spec_hashes) == len(set(spec_hashes))  # no double delivery

            # The supervisor respawns the victim in the background...
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline and not supervisor.handles[0].alive:
                time.sleep(0.1)
            handle = supervisor.handles[0]
            assert handle.alive and handle.restarts >= 1
            time.sleep(0.5)  # let the fresh worker finish standing up

            # ...and the respawned worker is reused: the next sweep
            # assigns it a partition and it completes every spec of it.
            with ServiceClient(router.host, router.port, timeout=120) as client:
                stream = client.sweep(suite, backend="simulation")
                list(stream)
            second = stream.summary
            assert second["errors"] == 0
            assert second["fingerprint_digest"] == expected_digest
            worker0 = next(
                row for row in second["partitions"] if row["worker"] == 0
            )
            assert worker0["specs"] > 0 and worker0["completed"] == worker0["specs"]
        finally:
            router.stop()
        assert router.leaked_tasks == []

        # Exactly-once persistence: after the drain-and-merge stop the
        # primary store holds one record per unique spec, no duplicates,
        # and the per-worker staging directories are gone.
        merged = ResultStore(store_dir)
        stats = merged.stats()
        assert stats.unique == len(suite)
        assert stats.records == stats.unique
        assert not (store_dir / "workers").exists()
