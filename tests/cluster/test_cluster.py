"""Integration tests for the sharded cluster: routing, failover, store merge.

These tests spawn real worker subprocesses (each a full ``repro
serve``), so they use the fast analytic backend to keep the fleet
cheap.  The contract under test everywhere: the router speaks the
unchanged wire format and every answer is bit-identical to a direct
in-process ``solve()``.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.api import ResultStore, SearchProblem, SolveResult, solve
from repro.cluster import ClusterSupervisor, ShardRouter, WorkerHandle
from repro.service import ReproServer, request_lines

BACKEND = "analytic"


def _specs(count: int) -> list[SearchProblem]:
    return [SearchProblem(distance=1.0 + 0.05 * i, visibility=0.3) for i in range(count)]


def _solve_lines(specs, request_ids=None) -> list[str]:
    ids = request_ids if request_ids is not None else range(len(specs))
    return [
        json.dumps({"op": "solve", "spec": spec.to_dict(), "id": request_id})
        for spec, request_id in zip(specs, ids)
    ]


def _expected_fingerprints(specs) -> dict[int, object]:
    return {i: solve(spec, backend=BACKEND).fingerprint() for i, spec in enumerate(specs)}


@pytest.fixture
def cluster():
    supervisor = ClusterSupervisor(workers=2, backend=BACKEND)
    supervisor.start()
    router = ShardRouter(supervisor, backend=BACKEND, route_timeout=60.0)
    router.serve_background()
    try:
        yield router
    finally:
        router.stop()


class TestRouting:
    def test_wire_parity_and_verbs(self, cluster):
        specs = _specs(10)
        expected = _expected_fingerprints(specs)
        lines = _solve_lines(specs) + _solve_lines(specs, request_ids=range(10, 20))
        responses = [
            json.loads(line) for line in request_lines(cluster.host, cluster.port, lines)
        ]
        assert len(responses) == 20
        assert all(response["ok"] for response in responses)
        for response in responses:
            served = SolveResult.from_dict(response["result"])
            assert served.fingerprint() == expected[response["id"] % 10]
        # The duplicate pass hit the workers' LRUs, not fresh solves.
        assert {response["served_by"] for response in responses} == {"solve", "cache"}

        health_line, metrics_line, status_line = request_lines(
            cluster.host,
            cluster.port,
            [
                json.dumps({"op": "health"}),
                json.dumps({"op": "metrics"}),
                json.dumps({"op": "cluster-status"}),
            ],
        )
        health = json.loads(health_line)["health"]
        assert health["role"] == "router" and health["status"] == "serving"
        assert health["workers"] == 2 and health["alive"] == 2
        assert all(row["health"]["status"] == "serving" for row in health["shards"])
        metrics = json.loads(metrics_line)["metrics"]
        assert metrics["totals"]["requests"] == 20
        assert metrics["totals"]["errors"] == 0
        assert metrics["cluster"]["workers"] == 2
        # Both shards saw traffic: the ring spread the key space.
        assert all(row["forwarded"] > 0 for row in metrics["shards"])
        status = json.loads(status_line)["cluster"]
        assert status["worker_restarts"] == 0 and status["reroutes"] == 0

    def test_requests_route_by_spec_hash_not_arrival_order(self, cluster):
        """The same spec always lands on the same worker."""
        spec = _specs(1)[0]
        for _ in range(3):
            (line,) = request_lines(
                cluster.host, cluster.port, _solve_lines([spec])
            )
            assert json.loads(line)["ok"]
        metrics = json.loads(
            request_lines(cluster.host, cluster.port, [json.dumps({"op": "metrics"})])[0]
        )["metrics"]
        touched = [row for row in metrics["shards"] if row["forwarded"] > 0]
        assert len(touched) == 1  # one home shard took all three requests
        worker_totals = touched[0]["metrics"]["totals"]
        assert worker_totals["solves"] == 1  # its LRU answered the duplicates

    def test_malformed_and_invalid_lines_answer_on_the_router(self, cluster):
        lines = [
            "not json",
            json.dumps({"op": "nonsense"}),
            json.dumps({"op": "solve", "spec": {"kind": "search"}}),  # invalid spec
        ]
        responses = [
            json.loads(line) for line in request_lines(cluster.host, cluster.port, lines)
        ]
        assert [response["ok"] for response in responses] == [False, False, False]
        assert all("error" in response for response in responses)


class TestFailover:
    def test_worker_killed_mid_batch_drops_no_accepted_request(self, cluster):
        """Satellite: SIGKILL one shard mid-batch; every request still answers
        with a fingerprint identical to direct solve()."""
        specs = _specs(24)
        expected = _expected_fingerprints(specs)
        killed = threading.Event()
        errors: list = []
        responses: dict[int, dict] = {}
        lock = threading.Lock()
        clients = 3

        def client(slot: int) -> None:
            try:
                import socket

                indices = list(range(slot, len(specs), clients))
                with socket.create_connection(
                    (cluster.host, cluster.port), timeout=120
                ) as conn:
                    stream = conn.makefile("rwb")
                    for progress, index in enumerate(indices):
                        if progress == 2:
                            killed.wait(timeout=60.0)  # kill lands mid-batch
                        stream.write(
                            (_solve_lines([specs[index]], [index])[0] + "\n").encode()
                        )
                        stream.flush()
                        response = json.loads(stream.readline())
                        with lock:
                            responses[index] = response
            except BaseException as error:  # noqa: BLE001 - surfaced by the test
                errors.append(error)

        threads = [threading.Thread(target=client, args=(slot,)) for slot in range(clients)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30.0
        while len(responses) < clients * 2:  # every client mid-batch
            assert time.monotonic() < deadline, "batch never got going"
            time.sleep(0.005)
        victim = cluster.supervisor.handles[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.wait(timeout=10.0)
        killed.set()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors
        assert len(responses) == len(specs)
        assert all(response["ok"] for response in responses.values())
        for index, response in responses.items():
            served = SolveResult.from_dict(response["result"])
            assert served.fingerprint() == expected[index]
        status = json.loads(
            request_lines(
                cluster.host, cluster.port, [json.dumps({"op": "cluster-status"})]
            )[0]
        )["cluster"]
        assert status["worker_restarts"] >= 1  # the supervisor respawned the victim
        deadline = time.monotonic() + 30.0
        while not victim.alive:
            assert time.monotonic() < deadline, "victim never respawned"
            time.sleep(0.05)


class TestRouterCoalescing:
    def test_concurrent_identical_requests_cost_one_shard_round_trip(self):
        """Duplicates of an in-flight solve coalesce at the router: the worker
        sees exactly one request."""
        from repro.api.backends import _REGISTRY, AnalyticBackend, register_backend

        class _Gated(AnalyticBackend):
            name = "gated-cluster"
            release = threading.Event()

            def _solve(self, spec):
                assert _Gated.release.wait(timeout=30.0)
                return super()._solve(spec)

        register_backend(_Gated.name, _Gated)
        worker_server = ReproServer(backend=_Gated.name)
        worker_server.serve_background()
        supervisor = ClusterSupervisor(workers=1, backend=_Gated.name)
        handle = supervisor.handles[0]
        handle.host, handle.port = worker_server.host, worker_server.port
        handle.generation = 1
        router = ShardRouter(supervisor, backend=_Gated.name)
        router.serve_background()
        try:
            spec = _specs(1)[0]
            line = _solve_lines([spec])[0]
            results: list = [None] * 6
            threads = [
                threading.Thread(
                    target=lambda slot=slot: results.__setitem__(
                        slot,
                        json.loads(request_lines(router.host, router.port, [line])[0]),
                    )
                )
                for slot in range(6)
            ]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 15.0
            while router.waiting_for(spec) < 5:
                assert time.monotonic() < deadline, "duplicates never coalesced"
                time.sleep(0.005)
            _Gated.release.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert all(response["ok"] for response in results)
            fingerprints = {
                str(SolveResult.from_dict(response["result"]).fingerprint())
                for response in results
            }
            assert len(fingerprints) == 1
            # The worker solved exactly once -- duplicates never crossed
            # the router/worker hop.
            worker_metrics = worker_server.service.metrics_snapshot()
            assert worker_metrics["totals"]["requests"] == 1
            router_metrics = router.metrics_snapshot()
            assert router_metrics["cluster"]["router_coalesced"] == 5
        finally:
            _Gated.release.set()
            _REGISTRY.pop(_Gated.name, None)
            supervisor.primary_store = None  # nothing to merge
            router.stop()
            worker_server.stop()


class TestRouterBackendPinning:
    def test_default_backend_requests_solve_under_the_routers_backend(self):
        """Regression: the forward line always names the effective backend --
        a worker whose own default differs must not substitute it, or the
        routing key and the solved envelope would disagree."""
        worker_server = ReproServer(backend="simulation")  # fleet default differs
        worker_server.serve_background()
        supervisor = ClusterSupervisor(workers=1, backend="simulation")
        handle = supervisor.handles[0]
        handle.host, handle.port = worker_server.host, worker_server.port
        handle.generation = 1
        router = ShardRouter(supervisor, backend=BACKEND)  # analytic
        router.serve_background()
        try:
            spec = _specs(1)[0]
            (line,) = request_lines(
                router.host, router.port, [json.dumps({"op": "solve", "spec": spec.to_dict()})]
            )
            response = json.loads(line)
            assert response["ok"]
            assert response["result"]["provenance"]["backend"] == BACKEND
        finally:
            supervisor.primary_store = None
            router.stop()
            worker_server.stop()


class TestStoreMerge:
    def test_drain_merges_worker_stores_and_warm_restart_replays(self, tmp_path):
        """Satellite acceptance: worker stores fold into the primary on drain
        (export/import), and a restarted cluster answers everything warm."""
        store_dir = tmp_path / "primary"
        specs = _specs(12)
        expected = _expected_fingerprints(specs)

        supervisor = ClusterSupervisor(workers=2, backend=BACKEND, store=store_dir)
        supervisor.start()
        router = ShardRouter(supervisor, backend=BACKEND)
        router.serve_background()
        responses = [
            json.loads(line)
            for line in request_lines(router.host, router.port, _solve_lines(specs))
        ]
        assert all(response["ok"] for response in responses)
        router.stop()

        # Worker stores merged into the primary, worker dirs removed.
        primary = ResultStore(store_dir)
        assert len(primary) == len(specs)
        assert not (store_dir / "workers").exists()

        # Warm restart: a brand-new fleet is seeded from the primary and
        # answers everything without a single fresh solve.
        supervisor = ClusterSupervisor(workers=2, backend=BACKEND, store=store_dir)
        supervisor.start()
        router = ShardRouter(supervisor, backend=BACKEND)
        router.serve_background()
        try:
            warm = [
                json.loads(line)
                for line in request_lines(router.host, router.port, _solve_lines(specs))
            ]
            assert all(response["ok"] for response in warm)
            assert {response["served_by"] for response in warm} == {"store"}
            for index, response in enumerate(warm):
                served = SolveResult.from_dict(response["result"])
                assert served.fingerprint() == expected[index]
        finally:
            router.stop()
        # The second drain keeps the primary intact (idempotent merge).
        assert len(ResultStore(store_dir)) == len(specs)


class TestServeWorkersCli:
    def test_serve_workers_flag_boots_a_router_and_sigterm_drains_it(self, tmp_path, capsys):
        """`repro serve --workers 2` spawns a supervised fleet; SIGTERM stops
        the router, drains the workers and merges their stores."""
        import subprocess
        import sys as sys_module
        from pathlib import Path

        import repro
        from repro.cli import main as cli_main

        store_dir = tmp_path / "store"
        port_file = tmp_path / "router.port"
        env = os.environ.copy()
        package_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            [package_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        process = subprocess.Popen(
            [sys_module.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--backend", BACKEND,
             "--store", str(store_dir), "--port-file", str(port_file)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 90.0
            while not (port_file.exists() and port_file.read_text().strip()):
                assert process.poll() is None, "serve --workers exited before binding"
                assert time.monotonic() < deadline, "router never published its port"
                time.sleep(0.05)
            host, _, port = port_file.read_text().strip().rpartition(":")
            specs = _specs(6)
            expected = _expected_fingerprints(specs)
            responses = [
                json.loads(line)
                for line in request_lines(host, int(port), _solve_lines(specs))
            ]
            assert all(response["ok"] for response in responses)
            for index, response in enumerate(responses):
                served = SolveResult.from_dict(response["result"])
                assert served.fingerprint() == expected[index]

            # The `repro cluster status` CLI reads the router's verbs.
            assert cli_main(["cluster", "status", "--host", host, "--port", port]) == 0
            out = capsys.readouterr().out
            assert "2/2 worker(s) alive" in out and "shard 0" in out and "shard 1" in out

            os.kill(process.pid, signal.SIGTERM)
            assert process.wait(timeout=60.0) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - only on failure
                process.kill()
        # The drain merged every worker store into the primary.
        assert len(ResultStore(store_dir)) == len(specs)
        assert not (store_dir / "workers").exists()

    def test_cluster_status_against_a_plain_daemon_fails_cleanly(self, capsys):
        from repro.cli import main as cli_main

        with ReproServer(backend=BACKEND) as server:
            server.serve_background()
            code = cli_main(
                ["cluster", "status", "--host", server.host, "--port", str(server.port)]
            )
        assert code == 1
        assert "single-process" in capsys.readouterr().err


class TestSupervisorValidation:
    def test_worker_count_validated(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            ClusterSupervisor(workers=0)

    def test_handle_describe_shape(self):
        handle = WorkerHandle(3, None)
        row = handle.describe()
        assert row["worker"] == 3 and row["alive"] is False
        assert row["address"] is None and row["store"] is None


class TestFleetArenaAndBinaryLinks:
    def test_one_fleet_arena_binary_worker_links_and_compile_once(self, cluster):
        """The supervisor hands every worker one shared arena and the
        router's worker links negotiate binary frames: a routed
        vectorized solve compiles its trajectory exactly once
        fleet-wide, bit-identical to an in-process solve."""
        from repro.service import ServiceClient

        spec = SearchProblem(distance=2.0, visibility=0.5)
        expected = solve(spec, backend="vectorized").fingerprint()
        with ServiceClient(cluster.host, cluster.port, binary=True) as client:
            assert client.binary  # the router itself upgrades too
            response = client.request(
                {"op": "solve", "spec": spec.to_dict(), "backend": "vectorized"}
            )
            assert response["ok"]
            assert SolveResult.from_dict(response["result"]).fingerprint() == expected
            metrics = client.request({"op": "metrics"})["metrics"]

        arena = metrics["arena"]
        assert arena["published_chunks"] >= 1
        assert arena["unique_trajectories"] >= 1
        assert 0 < arena["data_used"] <= arena["data_capacity"]

        shards = metrics["shards"]
        kernel = [row["metrics"]["kernel_cache"] for row in shards]
        assert all(stats["arena_attached"] for stats in kernel)
        # Compiled exactly once fleet-wide: every published chunk is
        # accounted for by exactly one worker's local compile.
        assert sum(stats["local_compiles"] for stats in kernel) == arena["published_chunks"]

        # The router->worker links are binary by default.
        for row in shards:
            assert row["metrics"]["transport"]["binary"]["connections"] >= 1
        # And this client's binary traffic shows on the router's ledger.
        assert metrics["transport"]["binary"]["requests"] >= 1
        assert metrics["transport"]["binary"]["bytes_out"] > 0


class TestClusterStatusSchema:
    """Satellite pin: both cluster fronts answer ``cluster-status`` with
    the same top-level schema, using the verb declared in the protocol
    module (the threaded half; the async half lives in
    ``test_async_router.py``)."""

    def test_status_schema_matches_the_declared_verb(self, cluster):
        from repro.service.protocol import CLUSTER_STATUS_OP

        (line,) = request_lines(
            cluster.host, cluster.port, [json.dumps({"op": CLUSTER_STATUS_OP})]
        )
        response = json.loads(line)
        assert response["op"] == CLUSTER_STATUS_OP
        assert set(response) == {"ok", "op", "cluster"}
        assert response["ok"] is True
