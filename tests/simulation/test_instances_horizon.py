"""Unit tests for problem instances, horizons, events and traces."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.geometry import Vec2
from repro.motion import Trajectory
from repro.robots import RobotAttributes
from repro.simulation import (
    DetectionEvent,
    HorizonPolicy,
    RendezvousInstance,
    SearchInstance,
    SimulationOutcome,
    bound_multiple_horizon,
    fixed_horizon,
    record_trace,
)


class TestSearchInstance:
    def test_distance_and_difficulty(self):
        instance = SearchInstance(target=Vec2(3.0, 4.0), visibility=0.5)
        assert instance.distance == pytest.approx(5.0)
        assert instance.difficulty == pytest.approx(50.0)

    def test_zero_visibility_rejected(self):
        with pytest.raises(InvalidParameterError):
            SearchInstance(target=Vec2(1.0, 0.0), visibility=0.0)

    def test_target_at_the_origin_rejected(self):
        with pytest.raises(InvalidParameterError):
            SearchInstance(target=Vec2(0.0, 0.0), visibility=0.5)

    def test_describe_mentions_difficulty(self):
        assert "d^2/r" in SearchInstance(target=Vec2(1.0, 0.0), visibility=0.5).describe()


class TestRendezvousInstance:
    def test_robot_pair_construction(self):
        instance = RendezvousInstance(
            separation=Vec2(2.0, 0.0), visibility=0.5, attributes=RobotAttributes(speed=0.5)
        )
        pair = instance.robot_pair()
        assert pair.other.start.is_close(Vec2(2.0, 0.0))
        assert pair.other.attributes.speed == pytest.approx(0.5)

    def test_already_solved_detection(self):
        instance = RendezvousInstance(
            separation=Vec2(0.3, 0.0), visibility=0.5, attributes=RobotAttributes()
        )
        assert instance.already_solved()

    def test_zero_separation_rejected(self):
        with pytest.raises(InvalidParameterError):
            RendezvousInstance(separation=Vec2(0.0, 0.0), visibility=0.5, attributes=RobotAttributes())


class TestHorizons:
    def test_fixed_horizon(self):
        assert fixed_horizon(100.0).limit == pytest.approx(100.0)

    def test_bound_multiple_horizon(self):
        policy = bound_multiple_horizon(200.0, 1.5)
        assert policy.limit == pytest.approx(300.0)
        assert "200" in policy.reason

    def test_non_positive_horizon_rejected(self):
        with pytest.raises(InvalidParameterError):
            fixed_horizon(0.0)

    def test_infinite_horizon_rejected(self):
        with pytest.raises(InvalidParameterError):
            HorizonPolicy(limit=float("inf"), reason="nope")

    def test_safety_factor_below_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            bound_multiple_horizon(100.0, 0.5)


class TestOutcomeAndTrace:
    def test_outcome_time_requires_a_solution(self):
        outcome = SimulationOutcome(
            solved=False, event=None, horizon=10.0, segments_processed=3, gap_evaluations=1
        )
        with pytest.raises(ValueError):
            _ = outcome.time

    def test_solved_outcome_describes_the_event(self):
        event = DetectionEvent(
            time=1.5, gap=0.2, position_reference=Vec2(0.0, 0.0), position_other=Vec2(0.2, 0.0)
        )
        outcome = SimulationOutcome(
            solved=True, event=event, horizon=10.0, segments_processed=3, gap_evaluations=4
        )
        assert outcome.time == pytest.approx(1.5)
        assert "solved" in outcome.describe()

    def test_record_trace_samples_the_requested_window(self):
        trajectory = Trajectory.stationary(Vec2(1.0, 1.0), 10.0)
        trace = record_trace(trajectory, until=5.0, samples=11, label="test")
        assert len(trace.points) == 11
        assert trace.duration == pytest.approx(5.0)
        lower, upper = trace.bounding_box()
        assert lower.is_close(Vec2(1.0, 1.0)) and upper.is_close(Vec2(1.0, 1.0))

    def test_record_trace_validates_arguments(self):
        trajectory = Trajectory.stationary(Vec2(0.0, 0.0), 1.0)
        with pytest.raises(InvalidParameterError):
            record_trace(trajectory, until=-1.0)
        with pytest.raises(InvalidParameterError):
            record_trace(trajectory, until=1.0, samples=1)
