"""Unit tests for the per-window gap computations."""

from __future__ import annotations

import math

import pytest

from repro.geometry import Vec2
from repro.motion import ArcMotion, LinearMotion, WaitMotion
from repro.simulation import (
    first_time_within_linear_relative,
    first_time_within_pair,
    first_time_within_static,
    static_min_distance,
)


class TestStaticMinDistance:
    def test_wait_segment(self):
        segment = WaitMotion(Vec2(1.0, 1.0), 2.0)
        assert static_min_distance(segment, Vec2(4.0, 5.0), 0.0, 2.0) == pytest.approx(5.0)

    def test_linear_segment_full_window(self):
        segment = LinearMotion(Vec2(-1.0, 1.0), Vec2(1.0, 1.0), 2.0)
        assert static_min_distance(segment, Vec2(0.0, 0.0), 0.0, 2.0) == pytest.approx(1.0)

    def test_linear_segment_partial_window(self):
        segment = LinearMotion(Vec2(-1.0, 1.0), Vec2(1.0, 1.0), 2.0)
        # Restricting to the first half keeps the robot on x in [-1, 0].
        assert static_min_distance(segment, Vec2(1.0, 1.0), 0.0, 1.0) == pytest.approx(1.0)

    def test_arc_segment(self):
        segment = ArcMotion(Vec2(0.0, 0.0), 1.0, 0.0, 2 * math.pi, 2 * math.pi)
        assert static_min_distance(segment, Vec2(3.0, 0.0), 0.0, segment.duration) == pytest.approx(2.0)

    def test_arc_partial_window_uses_the_swept_part_only(self):
        segment = ArcMotion(Vec2(0.0, 0.0), 1.0, 0.0, 2 * math.pi, 2 * math.pi)
        # During the first quarter turn the robot stays in the first quadrant.
        probe = Vec2(-1.0, 0.0)
        distance = static_min_distance(segment, probe, 0.0, segment.duration / 4.0)
        assert distance == pytest.approx(probe.distance_to(Vec2(0.0, 1.0)))


class TestFirstTimeWithinStatic:
    def test_linear_closed_form(self):
        segment = LinearMotion(Vec2(-2.0, 0.3), Vec2(2.0, 0.3), 4.0)
        time, evaluations = first_time_within_static(segment, Vec2(0.0, 0.0), 0.5, 0.0, 4.0)
        assert time is not None
        assert segment.position(time).distance_to(Vec2(0.0, 0.0)) == pytest.approx(0.5, abs=1e-9)
        assert evaluations == 0  # closed form, no numeric evaluations

    def test_linear_miss(self):
        segment = LinearMotion(Vec2(-2.0, 1.0), Vec2(2.0, 1.0), 4.0)
        time, _ = first_time_within_static(segment, Vec2(0.0, 0.0), 0.5, 0.0, 4.0)
        assert time is None

    def test_wait_hit_and_miss(self):
        segment = WaitMotion(Vec2(0.0, 0.4), 3.0)
        hit, _ = first_time_within_static(segment, Vec2(0.0, 0.0), 0.5, 1.0, 3.0)
        miss, _ = first_time_within_static(segment, Vec2(0.0, 0.0), 0.3, 1.0, 3.0)
        assert hit == pytest.approx(1.0)
        assert miss is None

    def test_arc_first_crossing(self):
        # Full circle starting at angle 0; the target sits near angle pi/2.
        segment = ArcMotion(Vec2(0.0, 0.0), 1.0, 0.0, 2 * math.pi, 2 * math.pi)
        target = Vec2.polar(1.0, math.pi / 2)
        time, evaluations = first_time_within_static(segment, target, 0.05, 0.0, segment.duration)
        assert time is not None
        assert evaluations > 0
        assert segment.position(time).distance_to(target) <= 0.05 + 1e-9
        # The crossing should happen just before the quarter-turn mark.
        assert time == pytest.approx(math.pi / 2 - 0.05, abs=1e-3)

    def test_empty_window(self):
        segment = WaitMotion(Vec2(0.0, 0.0), 1.0)
        time, _ = first_time_within_static(segment, Vec2(0.0, 0.0), 1.0, 2.0, 1.0)
        assert time is None


class TestLinearRelative:
    def test_head_on_approach(self):
        time = first_time_within_linear_relative(
            Vec2(0.0, 0.0), Vec2(1.0, 0.0), Vec2(10.0, 0.0), Vec2(-1.0, 0.0), 2.0, 10.0
        )
        assert time == pytest.approx(4.0)

    def test_parallel_motion_never_meets(self):
        time = first_time_within_linear_relative(
            Vec2(0.0, 0.0), Vec2(1.0, 0.0), Vec2(0.0, 5.0), Vec2(1.0, 0.0), 1.0, 100.0
        )
        assert time is None

    def test_already_within_threshold(self):
        time = first_time_within_linear_relative(
            Vec2(0.0, 0.0), Vec2(1.0, 0.0), Vec2(0.5, 0.0), Vec2(0.0, 0.0), 1.0, 10.0
        )
        assert time == pytest.approx(0.0)


class TestFirstTimeWithinPair:
    def test_two_waits(self):
        first = WaitMotion(Vec2(0.0, 0.0), 10.0)
        second = WaitMotion(Vec2(0.0, 3.0), 10.0)
        hit, _ = first_time_within_pair(first, 0.0, second, 0.0, 2.0, 8.0, 3.5)
        miss, _ = first_time_within_pair(first, 0.0, second, 0.0, 2.0, 8.0, 2.5)
        assert hit == pytest.approx(2.0)
        assert miss is None

    def test_moving_vs_waiting(self):
        mover = LinearMotion(Vec2(-5.0, 0.0), Vec2(5.0, 0.0), 10.0)
        waiter = WaitMotion(Vec2(0.0, 0.2), 10.0)
        time, _ = first_time_within_pair(mover, 0.0, waiter, 0.0, 0.0, 10.0, 0.5)
        assert time is not None
        assert mover.position(time).distance_to(Vec2(0.0, 0.2)) == pytest.approx(0.5, abs=1e-9)

    def test_two_linear_motions_closed_form(self):
        first = LinearMotion(Vec2(0.0, 0.0), Vec2(10.0, 0.0), 10.0)
        second = LinearMotion(Vec2(10.0, 0.0), Vec2(0.0, 0.0), 10.0)
        time, evaluations = first_time_within_pair(first, 0.0, second, 0.0, 0.0, 10.0, 1.0)
        assert evaluations == 0
        assert time == pytest.approx(4.5)

    def test_offset_segment_start_times(self):
        """Segments active from different global times are aligned correctly."""
        first = LinearMotion(Vec2(0.0, 0.0), Vec2(10.0, 0.0), 10.0)  # starts at t=0
        second = WaitMotion(Vec2(6.0, 0.0), 10.0)  # starts at t=2
        time, _ = first_time_within_pair(first, 0.0, second, 2.0, 2.0, 10.0, 1.0)
        assert time == pytest.approx(5.0)

    def test_arc_pair_falls_back_to_branch_and_bound(self):
        first = ArcMotion(Vec2(0.0, 0.0), 1.0, 0.0, 2 * math.pi, 2 * math.pi)
        second = ArcMotion(Vec2(2.0, 0.0), 1.0, math.pi, -2 * math.pi, 2 * math.pi)
        # Both robots start at (1, 0) + ... they begin at distance 0 actually:
        # first starts at (1,0), second starts at (1,0) as well -> immediate.
        time, _ = first_time_within_pair(first, 0.0, second, 0.0, 0.0, 2 * math.pi, 0.1)
        assert time == pytest.approx(0.0, abs=1e-6)

    def test_arc_pair_miss(self):
        first = ArcMotion(Vec2(0.0, 0.0), 1.0, 0.0, 2 * math.pi, 2 * math.pi)
        second = ArcMotion(Vec2(10.0, 0.0), 1.0, 0.0, 2 * math.pi, 2 * math.pi)
        time, evaluations = first_time_within_pair(first, 0.0, second, 0.0, 0.0, 2 * math.pi, 0.5)
        assert time is None
        # The bounding-disc rejection should avoid any gap evaluation.
        assert evaluations == 0
