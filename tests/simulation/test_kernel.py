"""Tests for the vectorized batch simulation kernel.

The scalar engine is the reference implementation: every kernel answer is
checked against it -- solved flags must match exactly, event times within
``TIME_TOLERANCE``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms import UniversalSearch, WaitAndSearchRendezvous
from repro.constants import TIME_TOLERANCE
from repro.core import rendezvous_time_bound, theorem1_search_bound
from repro.errors import InvalidParameterError
from repro.geometry import Vec2
from repro.robots import RobotAttributes
from repro.simulation import (
    SearchInstance,
    bound_multiple_horizon,
    kernel_simulate_rendezvous,
    kernel_simulate_search,
    simulate_rendezvous,
    simulate_search,
    simulate_search_batch,
)
from repro.simulation.kernel import (
    _lipschitz_first_crossing,
    _quadratic_first_crossing,
    clear_compiled_cache,
)
from repro.workloads import (
    mirrored_suite,
    search_sweep_suite,
    symmetric_clock_suite,
)


def _search_horizons(instances, factor=1.25):
    return [
        bound_multiple_horizon(
            theorem1_search_bound(i.distance, i.visibility), factor
        )
        for i in instances
    ]


class TestSearchBatchParity:
    def test_sweep_suite_matches_the_scalar_engine(self):
        instances = search_sweep_suite()
        horizons = _search_horizons(instances)
        scalar = [
            simulate_search(UniversalSearch(), instance, horizon)
            for instance, horizon in zip(instances, horizons)
        ]
        batch = simulate_search_batch(UniversalSearch(), instances, horizons)
        assert len(batch) == len(scalar)
        for reference, kernel in zip(scalar, batch):
            assert kernel.solved == reference.solved
            assert abs(kernel.event.time - reference.event.time) <= TIME_TOLERANCE
            assert kernel.event.gap <= instances[0].visibility * 10  # sanity
            assert kernel.segments_processed == reference.segments_processed

    def test_cached_and_fresh_compilation_agree(self):
        instances = search_sweep_suite()[:6]
        horizons = _search_horizons(instances)
        clear_compiled_cache()
        cold = simulate_search_batch(UniversalSearch(), instances, horizons)
        warm = simulate_search_batch(UniversalSearch(), instances, horizons)
        for a, b in zip(cold, warm):
            assert a.event.time == b.event.time

    def test_batch_of_one_matches_single_entry_point(self):
        instance = SearchInstance(target=Vec2.polar(1.7, 0.9), visibility=0.3)
        horizon = _search_horizons([instance])[0]
        single = kernel_simulate_search(UniversalSearch(), instance, horizon)
        batch = simulate_search_batch(UniversalSearch(), [instance], [horizon])[0]
        assert single.event.time == batch.event.time

    def test_unsolved_when_the_horizon_is_too_small(self):
        instance = SearchInstance(target=Vec2.polar(3.0, 0.4), visibility=0.1)
        scalar = simulate_search(UniversalSearch(), instance, 5.0)
        kernel = kernel_simulate_search(UniversalSearch(), instance, 5.0)
        assert not scalar.solved and not kernel.solved
        assert kernel.horizon == 5.0

    def test_mixed_horizons_resolve_independently(self):
        instances = [
            SearchInstance(target=Vec2.polar(2.5, 1.0), visibility=0.2),
            SearchInstance(target=Vec2.polar(2.5, 1.0), visibility=0.2),
        ]
        generous = _search_horizons(instances)[0]
        outcomes = simulate_search_batch(
            UniversalSearch(), instances, [5.0, generous]
        )
        assert not outcomes[0].solved
        assert outcomes[1].solved

    def test_heterogeneous_attributes_are_rejected(self):
        instances = [
            SearchInstance(target=Vec2.polar(1.0, 0.1), visibility=0.2),
            SearchInstance(
                target=Vec2.polar(1.0, 0.1),
                visibility=0.2,
                attributes=RobotAttributes(speed=2.0),
            ),
        ]
        with pytest.raises(InvalidParameterError):
            simulate_search_batch(UniversalSearch(), instances, [10.0, 10.0])

    def test_horizon_and_instance_counts_must_agree(self):
        instance = SearchInstance(target=Vec2.polar(1.0, 0.1), visibility=0.2)
        with pytest.raises(InvalidParameterError):
            simulate_search_batch(UniversalSearch(), [instance], [10.0, 20.0])

    def test_empty_batch(self):
        assert simulate_search_batch(UniversalSearch(), [], []) == []


class TestPairKernelParity:
    @pytest.mark.parametrize("index", [0, 5, 11, 17, 23, 29])
    def test_symmetric_clock_instances(self, index):
        instance = symmetric_clock_suite()[index]
        horizon = bound_multiple_horizon(rendezvous_time_bound(instance), 1.25)
        scalar = simulate_rendezvous(UniversalSearch(), instance, horizon)
        kernel = kernel_simulate_rendezvous(UniversalSearch(), instance, horizon)
        assert kernel.solved == scalar.solved
        assert abs(kernel.event.time - scalar.event.time) <= TIME_TOLERANCE

    @pytest.mark.parametrize("index", [0, 9, 20])
    def test_mirrored_instances(self, index):
        instance = mirrored_suite()[index]
        horizon = bound_multiple_horizon(rendezvous_time_bound(instance), 1.25)
        scalar = simulate_rendezvous(UniversalSearch(), instance, horizon)
        kernel = kernel_simulate_rendezvous(UniversalSearch(), instance, horizon)
        assert kernel.solved == scalar.solved
        assert abs(kernel.event.time - scalar.event.time) <= TIME_TOLERANCE

    def test_asymmetric_clock_instance_with_algorithm7(self):
        from repro.simulation import RendezvousInstance

        instance = RendezvousInstance(
            separation=Vec2.polar(1.1, 0.7),
            visibility=0.45,
            attributes=RobotAttributes(time_unit=0.5),
        )
        horizon = bound_multiple_horizon(rendezvous_time_bound(instance), 1.25)
        algorithm = WaitAndSearchRendezvous()
        scalar = simulate_rendezvous(algorithm, instance, horizon)
        kernel = kernel_simulate_rendezvous(algorithm, instance, horizon)
        assert kernel.solved == scalar.solved
        assert abs(kernel.event.time - scalar.event.time) <= TIME_TOLERANCE

    def test_immediate_detection_at_time_zero(self):
        from repro.simulation import RendezvousInstance

        instance = RendezvousInstance(
            separation=Vec2(0.2, 0.0),
            visibility=0.5,
            attributes=RobotAttributes(speed=0.7),
        )
        kernel = kernel_simulate_rendezvous(UniversalSearch(), instance, 10.0)
        assert kernel.solved and kernel.event.time == 0.0

    def test_infeasible_identical_robots_run_to_the_horizon(self):
        from repro.simulation import RendezvousInstance

        instance = RendezvousInstance(
            separation=Vec2.polar(1.5, 0.3),
            visibility=0.3,
            attributes=RobotAttributes(),
        )
        scalar = simulate_rendezvous(UniversalSearch(), instance, 120.0)
        kernel = kernel_simulate_rendezvous(UniversalSearch(), instance, 120.0)
        assert not scalar.solved and not kernel.solved


class TestCrossingPrimitives:
    def test_quadratic_matches_the_scalar_closed_form(self):
        from repro.simulation.gap import _first_crossing_quadratic

        rng = np.random.default_rng(7)
        for _ in range(300):
            ox, oy = rng.uniform(-3, 3, 2)
            vx, vy = rng.uniform(-2, 2, 2)
            threshold = rng.uniform(0.05, 1.5)
            duration = rng.uniform(0.0, 8.0)
            scalar = _first_crossing_quadratic(
                Vec2(ox, oy), Vec2(vx, vy), threshold, duration
            )
            kernel = _quadratic_first_crossing(
                np.array([ox]),
                np.array([oy]),
                np.array([vx]),
                np.array([vy]),
                np.array([threshold]),
                np.array([duration]),
            )[0]
            if scalar is None:
                assert math.isnan(kernel)
            else:
                assert kernel == pytest.approx(scalar, abs=1e-12)

    def test_lipschitz_wavefront_matches_find_first_crossing(self):
        from repro.simulation import find_first_crossing

        cases = [
            (2.0, 1.5, 0.4, 0.0, 9.0),  # dip crossing the threshold
            (2.0, 0.3, 0.2, 0.0, 6.0),  # dip staying above: no crossing
            (1.0, 1.1, 0.5, 0.0, 0.0),  # degenerate interval
        ]

        def make_gap(base, depth, dip_at=4.0):
            return lambda t: base - depth * math.exp(-((t - dip_at) ** 2))

        for base, depth, threshold, lo, hi in cases:
            gap = make_gap(base, depth)
            lipschitz = depth * 2.0  # generous bound on |gap'|
            scalar = find_first_crossing(gap, lo, hi, lipschitz, threshold, 1e-9)

            def gap_fn(problems, times):
                return np.array([gap(float(t)) for t in np.atleast_1d(times)])

            kernel, _ = _lipschitz_first_crossing(
                gap_fn,
                np.array([lo]),
                np.array([hi]),
                np.array([lipschitz]),
                np.array([threshold]),
                1e-9,
            )
            if scalar.time is None:
                assert math.isnan(kernel[0])
            else:
                assert abs(kernel[0] - scalar.time) <= 1e-9
