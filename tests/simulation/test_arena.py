"""Tests for the cross-process compiled-trajectory arena.

Three layers, matching how production uses the arena:

* the raw segment -- publish/get roundtrips, terminator slots, capacity
  behaviour, race idempotence;
* the kernel integration -- a process whose chunk cache adopts arena
  chunks must produce bit-identical fingerprints with zero local
  compiles;
* the cross-process lifecycle -- a real child process publishing into
  (or attaching to) the segment, attacher exit not unlinking it, and
  ``destroy`` leaving no ``/dev/shm`` litter behind.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.algorithms import UniversalSearch
from repro.api import SearchProblem, solve
from repro.motion.compiled import FLOAT_FIELDS, SegmentStreamCompiler
from repro.simulation import arena as arena_mod
from repro.simulation.arena import ArenaError, TrajectoryArena, cache_digest
from repro.simulation.kernel import clear_compiled_cache, kernel_cache_stats

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: Small enough to compile in one chunk, so the cross-process tests are fast.
SPEC = SearchProblem(distance=2.0, visibility=0.5)


@pytest.fixture(autouse=True)
def _pristine_arena_state(monkeypatch):
    """No inherited arena, no inherited compiled cache, before and after."""
    monkeypatch.delenv(arena_mod.ARENA_ENV, raising=False)
    arena_mod.deactivate()
    arena_mod.reset_env_attach()
    clear_compiled_cache()
    yield
    arena_mod.deactivate()
    arena_mod.reset_env_attach()
    clear_compiled_cache()


def _compile_chunk(max_segments: int = 64):
    compiler = SegmentStreamCompiler(UniversalSearch().segments())
    chunk = compiler.next_chunk(max_segments=max_segments)
    assert chunk is not None
    return chunk


class TestArenaSegment:
    def test_publish_get_roundtrip_is_bit_identical_and_read_only(self):
        arena = TrajectoryArena.create(slots=16, data_bytes=1 << 20)
        try:
            chunk = _compile_chunk()
            digest = cache_digest(("roundtrip",))
            assert arena.publish_chunk(digest, 0, chunk)
            found = arena.get(digest, 0)
            assert found is not None
            got, final, final_pos = found
            assert not final and final_pos is None
            assert len(got) == len(chunk)
            for field in FLOAT_FIELDS:
                mine = np.asarray(getattr(chunk, field))
                theirs = getattr(got, field)
                np.testing.assert_array_equal(mine, theirs)
                assert not theirs.flags.writeable
                with pytest.raises(ValueError):
                    theirs[0] = 0.0
            np.testing.assert_array_equal(got.kinds, np.asarray(chunk.kinds))
            assert not got.kinds.flags.writeable
        finally:
            arena.destroy()

    def test_terminator_slot_carries_the_final_position(self):
        arena = TrajectoryArena.create(slots=16, data_bytes=1 << 16)
        try:
            digest = cache_digest(("terminator",))
            assert arena.publish_final(digest, 3, (1.5, -2.25))
            assert arena.get(digest, 3) == (None, True, (1.5, -2.25))
            assert arena.publish_final(digest, 4, None)
            assert arena.get(digest, 4) == (None, True, None)
        finally:
            arena.destroy()

    def test_unpublished_key_is_a_miss_not_an_error(self):
        arena = TrajectoryArena.create(slots=4, data_bytes=1 << 16)
        try:
            assert arena.get(cache_digest(("nothing",)), 0) is None
            assert arena.stats()["process"]["misses"] == 1
        finally:
            arena.destroy()

    def test_full_data_region_drops_instead_of_corrupting(self):
        arena = TrajectoryArena.create(slots=4, data_bytes=64)
        try:
            chunk = _compile_chunk()
            assert not arena.publish_chunk(cache_digest(("full",)), 0, chunk)
            stats = arena.stats()
            assert stats["process"]["full_drops"] == 1
            assert stats["published_slots"] == 0
            # Terminators carry no data, so they still fit.
            assert arena.publish_final(cache_digest(("full",)), 0, None)
        finally:
            arena.destroy()

    def test_full_slot_table_drops(self):
        arena = TrajectoryArena.create(slots=1, data_bytes=1 << 16)
        try:
            assert arena.publish_final(cache_digest(("a",)), 0, None)
            assert not arena.publish_final(cache_digest(("b",)), 0, None)
            assert arena.stats()["process"]["full_drops"] == 1
        finally:
            arena.destroy()

    def test_duplicate_publish_is_idempotent(self):
        arena = TrajectoryArena.create(slots=8, data_bytes=1 << 20)
        try:
            chunk = _compile_chunk()
            digest = cache_digest(("dup",))
            assert arena.publish_chunk(digest, 0, chunk)
            # The raced duplicate reports success without a second slot.
            assert arena.publish_chunk(digest, 0, chunk)
            stats = arena.stats()
            assert stats["published_slots"] == 1
            assert stats["process"]["races"] == 1
        finally:
            arena.destroy()

    def test_stats_document_is_json_safe(self):
        arena = TrajectoryArena.create(slots=8, data_bytes=1 << 20)
        try:
            arena.publish_chunk(cache_digest(("stats",)), 0, _compile_chunk())
            arena.publish_final(cache_digest(("stats",)), 1, (0.0, 1.0))
            stats = json.loads(json.dumps(arena.stats()))
            assert stats["published_slots"] == 2
            assert stats["published_chunks"] == 1
            assert stats["published_finals"] == 1
            assert stats["unique_trajectories"] == 1
            assert 0 < stats["data_used"] <= stats["data_capacity"]
        finally:
            arena.destroy()


class TestKernelIntegration:
    def test_kernel_publishes_then_adopts_with_zero_local_compiles(self):
        baseline = solve(SPEC, backend="vectorized")  # private cache
        clear_compiled_cache()
        arena = TrajectoryArena.create()
        arena_mod.activate(arena)
        try:
            first = solve(SPEC, backend="vectorized")
            stats = kernel_cache_stats()
            assert stats["arena_attached"]
            assert stats["local_compiles"] > 0
            assert stats["arena_publishes"] > 0
            published = arena.stats()["published_slots"]
            assert published > 0

            # Drop the private cache; the arena alone must rebuild the
            # prefix -- zero recompiles, bit-identical answer.
            clear_compiled_cache()
            second = solve(SPEC, backend="vectorized")
            stats = kernel_cache_stats()
            assert stats["arena_hits"] > 0
            assert stats["local_compiles"] == 0
            assert arena.stats()["published_slots"] == published

            assert first.fingerprint() == baseline.fingerprint()
            assert second.fingerprint() == baseline.fingerprint()
        finally:
            arena_mod.deactivate()
            arena.destroy()

    def test_arena_failure_degrades_to_the_private_cache(self):
        baseline = solve(SPEC, backend="vectorized")
        clear_compiled_cache()
        arena = TrajectoryArena.create(slots=1, data_bytes=8)  # everything drops
        arena_mod.activate(arena)
        try:
            degraded = solve(SPEC, backend="vectorized")
            stats = kernel_cache_stats()
            assert stats["arena_drops"] > 0
            assert degraded.fingerprint() == baseline.fingerprint()
        finally:
            arena_mod.deactivate()
            arena.destroy()


class TestCacheSegmentCap:
    def test_capped_stream_still_solves_bit_identically(self, monkeypatch):
        from repro.simulation import kernel

        spec = SearchProblem(distance=5.0, visibility=0.2)  # > one 512-segment chunk
        baseline = solve(spec, backend="vectorized")
        assert kernel_cache_stats()["cache_capped"] == 0

        clear_compiled_cache()
        monkeypatch.setattr(kernel, "_CACHE_SEGMENT_CAP", 256)
        capped = solve(spec, backend="vectorized")
        stats = kernel_cache_stats()
        assert stats["cache_capped"] > 0
        # The capped prefix stops extending; the continuation path must
        # still produce the exact same answer.
        assert capped.fingerprint() == baseline.fingerprint()


def _run_child(code: str, **env_overrides: str) -> dict:
    env = dict(os.environ)
    env.pop(arena_mod.ARENA_ENV, None)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_overrides)
    completed = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.splitlines()[-1])


_CHILD_SOLVE = """
import json
from repro.api import SearchProblem, solve
from repro.simulation.kernel import kernel_cache_stats

result = solve(SearchProblem(distance=2.0, visibility=0.5), backend="vectorized")
stats = kernel_cache_stats()
print(json.dumps({
    "fingerprint": result.fingerprint(),
    "arena_attached": stats["arena_attached"],
    "local_compiles": stats["local_compiles"],
    "arena_publishes": stats["arena_publishes"],
}))
"""

_CHILD_ATTACH_PUBLISH = """
import json, os
from repro.simulation.arena import TrajectoryArena, cache_digest

arena = TrajectoryArena.attach(os.environ["ARENA_NAME"])
published = arena.publish_final(cache_digest("two-proc"), 0, (0.25, 0.5))
arena.close()
print(json.dumps({"published": published}))
"""


class TestCrossProcess:
    def test_child_compiles_parent_adopts_fingerprints_match(self):
        baseline = solve(SPEC, backend="vectorized")  # private cache reference
        clear_compiled_cache()
        arena = TrajectoryArena.create()
        try:
            child = _run_child(_CHILD_SOLVE, **{arena_mod.ARENA_ENV: arena.name})
            assert child["arena_attached"]
            assert child["local_compiles"] > 0
            assert child["arena_publishes"] > 0
            assert child["fingerprint"] == baseline.fingerprint()

            # This process adopts the child's chunks: compiled once
            # fleet-wide, and the answer is bit-identical.
            arena_mod.activate(arena)
            adopted = solve(SPEC, backend="vectorized")
            stats = kernel_cache_stats()
            assert stats["arena_hits"] > 0
            assert stats["local_compiles"] == 0
            assert adopted.fingerprint() == baseline.fingerprint()
        finally:
            arena_mod.deactivate()
            arena.destroy()

    def test_attacher_exit_does_not_unlink_the_segment(self):
        arena = TrajectoryArena.create(slots=8, data_bytes=1 << 16)
        try:
            child = _run_child(_CHILD_ATTACH_PUBLISH, ARENA_NAME=arena.name)
            assert child["published"]
            # The child exited; its resource tracker must not have torn
            # the segment down under us, and its publish must be visible.
            assert arena.get(cache_digest("two-proc"), 0) == (None, True, (0.25, 0.5))
            reattached = TrajectoryArena.attach(arena.name)
            reattached.close()
        finally:
            arena.destroy()

    def test_env_attach_failure_falls_back_to_private_cache(self, monkeypatch):
        monkeypatch.setenv(arena_mod.ARENA_ENV, "repro-arena-does-not-exist")
        arena_mod.reset_env_attach()
        assert arena_mod.active_arena() is None
        result = solve(SPEC, backend="vectorized")
        stats = kernel_cache_stats()
        assert not stats["arena_attached"]
        assert result.fingerprint() == solve(SPEC, backend="vectorized").fingerprint()


class TestLifecycle:
    def test_destroy_unlinks_and_attach_afterwards_fails(self):
        arena = TrajectoryArena.create(slots=4, data_bytes=1 << 16)
        name = arena.name
        arena.destroy()
        with pytest.raises(ArenaError):
            TrajectoryArena.attach(name)
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(os.path.join("/dev/shm", name.lstrip("/")))

    def test_destroy_is_idempotent(self):
        arena = TrajectoryArena.create(slots=4, data_bytes=1 << 16)
        arena.destroy()
        arena.destroy()

    def test_non_owner_destroy_never_unlinks(self):
        arena = TrajectoryArena.create(slots=4, data_bytes=1 << 16)
        try:
            attached = TrajectoryArena.attach(arena.name)
            attached.destroy()  # close() only: not the owner
            # The creator's mapping still works end to end.
            assert arena.publish_final(cache_digest(("owner",)), 0, None)
            reattached = TrajectoryArena.attach(arena.name)
            reattached.close()
        finally:
            arena.destroy()

    def test_ensure_process_arena_reuses_the_active_arena(self):
        arena = TrajectoryArena.create(slots=4, data_bytes=1 << 16)
        arena_mod.activate(arena)
        try:
            assert arena_mod.ensure_process_arena() is arena
        finally:
            arena_mod.deactivate()
            arena.destroy()
