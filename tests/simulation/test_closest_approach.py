"""Unit tests for the Lipschitz first-crossing detector."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidParameterError
from repro.simulation import find_first_crossing, interval_minimum_lower_bound


class TestLowerBound:
    def test_tent_bound_for_a_v_shape(self):
        # A V-shaped function with slope 1 dips to 0 in the middle.
        bound = interval_minimum_lower_bound(1.0, 1.0, 2.0, 1.0)
        assert bound == pytest.approx(0.0)

    def test_bound_never_exceeds_endpoint_values(self):
        assert interval_minimum_lower_bound(2.0, 5.0, 1.0, 1.0) <= 2.0


class TestFindFirstCrossing:
    def test_immediate_crossing_at_the_left_endpoint(self):
        result = find_first_crossing(lambda t: 0.1, 0.0, 1.0, 0.0, threshold=0.5)
        assert result.found
        assert result.time == pytest.approx(0.0)

    def test_no_crossing_when_function_stays_above(self):
        result = find_first_crossing(lambda t: 1.0 + t, 0.0, 5.0, 1.0, threshold=0.5)
        assert not result.found

    def test_linear_crossing_time_is_accurate(self):
        # gap(t) = 2 - t crosses 0.5 at t = 1.5.
        result = find_first_crossing(lambda t: 2.0 - t, 0.0, 4.0, 1.0, threshold=0.5, time_tolerance=1e-9)
        assert result.found
        assert result.time == pytest.approx(1.5, abs=1e-6)

    def test_returns_the_first_of_several_crossings(self):
        # A wave that dips below the threshold around t = 1 and t = 3.
        def gap(t: float) -> float:
            return 1.0 + math.cos(math.pi * t)

        result = find_first_crossing(gap, 0.0, 4.0, math.pi, threshold=0.1, time_tolerance=1e-9)
        assert result.found
        assert result.time < 1.5

    def test_narrow_dip_is_not_missed(self):
        """A dip of width much larger than the tolerance must be detected."""

        def gap(t: float) -> float:
            return min(abs(t - 2.345) * 1.0, 1.0)

        result = find_first_crossing(gap, 0.0, 10.0, 1.0, threshold=1e-3, time_tolerance=1e-9)
        assert result.found
        assert result.time == pytest.approx(2.345 - 1e-3, abs=1e-5)

    def test_reported_value_respects_the_threshold(self):
        def gap(t: float) -> float:
            return abs(t - 1.0) + 0.2

        result = find_first_crossing(gap, 0.0, 2.0, 1.0, threshold=0.25)
        assert result.found
        assert result.value <= 0.25 + 1e-12

    def test_degenerate_interval(self):
        result = find_first_crossing(lambda t: 1.0, 2.0, 2.0, 1.0, threshold=0.5)
        assert not result.found

    def test_empty_interval_rejected(self):
        with pytest.raises(InvalidParameterError):
            find_first_crossing(lambda t: 1.0, 1.0, 0.0, 1.0, threshold=0.5)

    def test_invalid_lipschitz_rejected(self):
        with pytest.raises(InvalidParameterError):
            find_first_crossing(lambda t: 1.0, 0.0, 1.0, -1.0, threshold=0.5)

    def test_evaluation_count_is_reported(self):
        result = find_first_crossing(lambda t: 10.0, 0.0, 1.0, 0.5, threshold=1.0)
        assert result.evaluations >= 2

    def test_large_lipschitz_constant_still_correct(self):
        """Overestimating the Lipschitz constant costs evaluations, not correctness."""
        result = find_first_crossing(
            lambda t: 2.0 - t, 0.0, 4.0, 100.0, threshold=0.5, time_tolerance=1e-6
        )
        assert result.found
        assert result.time == pytest.approx(1.5, abs=1e-3)
