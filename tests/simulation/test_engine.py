"""Unit tests for the simulation engine (search and rendezvous)."""

from __future__ import annotations

import math

import pytest

from repro.algorithms import SearchCircle, SearchRound, UniversalSearch, WaitAndSearchRendezvous
from repro.core import theorem1_search_bound
from repro.geometry import Vec2
from repro.robots import RobotAttributes
from repro.simulation import (
    RendezvousInstance,
    SearchInstance,
    bound_multiple_horizon,
    fixed_horizon,
    simulate_rendezvous,
    simulate_search,
)


class TestSimulateSearch:
    def test_target_on_the_first_radial_leg_is_found_immediately(self):
        instance = SearchInstance(target=Vec2(0.4, 0.0), visibility=0.1)
        outcome = simulate_search(SearchCircle(1.0), instance, fixed_horizon(100.0))
        assert outcome.solved
        assert outcome.time == pytest.approx(0.3, abs=1e-6)

    def test_target_behind_the_robot_is_found_on_the_circle(self):
        instance = SearchInstance(target=Vec2(-1.0, 0.0), visibility=0.05)
        outcome = simulate_search(SearchCircle(1.0), instance, fixed_horizon(100.0))
        assert outcome.solved
        # The robot reaches (−1, 0) after the radial leg (1) plus half the circle (pi).
        assert outcome.time == pytest.approx(1.0 + math.pi - 0.05, abs=1e-3)

    def test_unreachable_target_times_out(self):
        instance = SearchInstance(target=Vec2(10.0, 0.0), visibility=0.01)
        outcome = simulate_search(SearchCircle(1.0), instance, fixed_horizon(50.0))
        assert not outcome.solved

    def test_detection_event_is_consistent(self):
        instance = SearchInstance(target=Vec2(1.3, -0.4), visibility=0.25)
        bound = theorem1_search_bound(instance.distance, instance.visibility)
        outcome = simulate_search(UniversalSearch(), instance, bound_multiple_horizon(bound))
        assert outcome.solved
        event = outcome.event
        assert event is not None
        assert event.gap <= instance.visibility + 1e-6
        assert event.position_other.is_close(instance.target)

    def test_first_crossing_is_minimal(self):
        """No earlier time along the trajectory is within the visibility radius."""
        instance = SearchInstance(target=Vec2(0.9, 0.35), visibility=0.2)
        outcome = simulate_search(UniversalSearch(), instance, fixed_horizon(500.0))
        assert outcome.solved
        from repro.motion import lazy_world_trajectory
        from repro.geometry import GLOBAL_FRAME

        trajectory = lazy_world_trajectory(UniversalSearch().segments(), GLOBAL_FRAME)
        for fraction in (0.2, 0.5, 0.8, 0.95, 0.999):
            earlier = outcome.time * fraction
            assert trajectory.position(earlier).distance_to(instance.target) >= instance.visibility - 1e-6

    def test_finite_algorithm_parks_and_gives_up(self):
        instance = SearchInstance(target=Vec2(3.0, 0.0), visibility=0.1)
        outcome = simulate_search(SearchRound(1), instance, fixed_horizon(500.0))
        assert not outcome.solved

    def test_rejects_infinite_horizon(self):
        instance = SearchInstance(target=Vec2(1.0, 0.0), visibility=0.1)
        with pytest.raises(Exception):
            simulate_search(SearchCircle(1.0), instance, float("inf"))


class TestSimulateRendezvous:
    def test_instance_already_solved_returns_time_zero(self):
        instance = RendezvousInstance(
            separation=Vec2(0.2, 0.0), visibility=0.5, attributes=RobotAttributes(speed=0.5)
        )
        outcome = simulate_rendezvous(UniversalSearch(), instance, fixed_horizon(10.0))
        assert outcome.solved
        assert outcome.time == 0.0

    def test_different_speeds_rendezvous_with_algorithm4(self):
        instance = RendezvousInstance(
            separation=Vec2(1.2, 0.3), visibility=0.3, attributes=RobotAttributes(speed=0.5)
        )
        outcome = simulate_rendezvous(UniversalSearch(), instance, fixed_horizon(3000.0))
        assert outcome.solved
        assert outcome.event is not None
        assert outcome.event.gap <= instance.visibility + 1e-6

    def test_rendezvous_event_positions_belong_to_both_robots(self):
        instance = RendezvousInstance(
            separation=Vec2(1.0, 0.2), visibility=0.4, attributes=RobotAttributes(speed=0.6)
        )
        outcome = simulate_rendezvous(UniversalSearch(), instance, fixed_horizon(3000.0))
        assert outcome.solved
        event = outcome.event
        pair = instance.robot_pair()
        reference_trajectory = pair.reference.world_trajectory(UniversalSearch())
        other_trajectory = pair.other.world_trajectory(UniversalSearch())
        assert reference_trajectory.position(event.time).is_close(event.position_reference, 1e-6)
        assert other_trajectory.position(event.time).is_close(event.position_other, 1e-6)

    def test_identical_robots_never_meet(self):
        instance = RendezvousInstance(
            separation=Vec2(0.0, 1.5), visibility=0.3, attributes=RobotAttributes()
        )
        outcome = simulate_rendezvous(UniversalSearch(), instance, fixed_horizon(500.0))
        assert not outcome.solved

    def test_asymmetric_clocks_rendezvous_with_algorithm7(self):
        instance = RendezvousInstance(
            separation=Vec2(1.0, 0.4), visibility=0.45, attributes=RobotAttributes(time_unit=0.5)
        )
        outcome = simulate_rendezvous(WaitAndSearchRendezvous(), instance, fixed_horizon(5000.0))
        assert outcome.solved

    def test_gap_never_below_visibility_before_the_event(self):
        instance = RendezvousInstance(
            separation=Vec2(1.4, -0.2), visibility=0.35, attributes=RobotAttributes(speed=0.7)
        )
        outcome = simulate_rendezvous(UniversalSearch(), instance, fixed_horizon(3000.0))
        assert outcome.solved
        pair = instance.robot_pair()
        reference_trajectory = pair.reference.world_trajectory(UniversalSearch())
        other_trajectory = pair.other.world_trajectory(UniversalSearch())
        for fraction in (0.1, 0.4, 0.7, 0.9, 0.99):
            t = outcome.time * fraction
            gap = reference_trajectory.position(t).distance_to(other_trajectory.position(t))
            assert gap >= instance.visibility - 1e-6
