"""The montecarlo backend: envelopes, determinism, collapse, routing."""

from __future__ import annotations

import pytest

from repro.api import (
    MonteCarloBackend,
    RendezvousProblem,
    SearchProblem,
    create_backend,
    solve,
)
from repro.errors import InvalidParameterError
from repro.faults import FaultModel


def _byzantine_spec(trials: int = 4) -> RendezvousProblem:
    return RendezvousProblem(
        distance=1.6,
        visibility=0.35,
        bearing=0.9,
        speed=0.7,
        fault_model=FaultModel(kind="byzantine", robot="other", crash_time=2.0, trials=trials),
    )


def _jittered_crash_spec(trials: int = 5) -> SearchProblem:
    return SearchProblem(
        distance=1.5,
        visibility=0.3,
        bearing=0.8,
        fault_model=FaultModel(
            kind="crash-recovery",
            robot="reference",
            crash_time=2.0,
            recovery_delay=4.0,
            trials=trials,
            jitter=0.25,
        ),
    )


class TestRegistryAndRouting:
    def test_registered_under_its_name(self):
        backend = create_backend("montecarlo")
        assert isinstance(backend, MonteCarloBackend)
        assert backend.fidelity == "envelope"

    def test_solve_accepts_the_backend_name(self):
        result = solve(_jittered_crash_spec(trials=2), backend="montecarlo")
        assert result.provenance.backend == "montecarlo"

    def test_gathering_unsupported(self):
        from repro.api import GatheringMember, GatheringProblem

        spec = GatheringProblem(
            members=(GatheringMember(0.0, 0.0), GatheringMember(1.0, 0.5, speed=0.8)),
            visibility=0.4,
        )
        with pytest.raises(InvalidParameterError):
            MonteCarloBackend().solve(spec)


class TestEnvelope:
    def test_envelope_fields_and_counts(self):
        result = MonteCarloBackend().solve(_jittered_crash_spec(trials=5))
        details = result.details
        assert details["trials"] == 5
        assert details["trials_requested"] == 5
        assert details["solve_rate"] == 1.0
        envelope = details["envelope"]
        assert envelope["count"] == 5
        assert envelope["min"] <= envelope["p50"] <= envelope["p90"] <= envelope["max"]
        assert envelope["ci95_low"] <= envelope["mean"] <= envelope["ci95_high"]
        assert result.measured_time == envelope["mean"]
        assert result.algorithm.startswith("montecarlo x5 [")

    def test_mixed_outcomes_populate_statuses(self):
        spec = SearchProblem(
            distance=1.5,
            visibility=0.3,
            bearing=0.8,
            fault_model=FaultModel(
                kind="crash-stop",
                robot="reference",
                # Healthy completion is ~41.7; a widely jittered onset at 45
                # straddles it, so some trials solve and some crash first.
                crash_time=45.0,
                trials=12,
                jitter=0.3,
            ),
        )
        result = MonteCarloBackend().solve(spec)
        statuses = result.details["statuses"]
        assert sum(statuses.values()) == 12
        assert set(statuses) <= {"solved", "crashed-before-discovery"}
        assert result.solved is (result.details["solve_rate"] == 1.0)

    def test_envelope_counts_only_solved_trials(self):
        spec = SearchProblem(
            distance=1.5,
            visibility=0.3,
            fault_model=FaultModel(
                kind="crash-stop", robot="reference", crash_time=0.5, trials=3, jitter=0.1
            ),
        )
        result = MonteCarloBackend().solve(spec)
        assert result.details["solve_rate"] == 0.0
        assert result.details["envelope"]["count"] == 0
        assert result.details["envelope"]["mean"] is None
        assert result.measured_time is None


class TestDeterminism:
    def test_independent_instances_agree_bitwise(self):
        spec = _byzantine_spec(trials=6)
        first = MonteCarloBackend().solve(spec)
        second = MonteCarloBackend().solve(spec)
        assert first.details["envelope"] == second.details["envelope"]
        assert first.details["statuses"] == second.details["statuses"]
        assert first.fingerprint() == second.fingerprint()

    def test_json_round_trip_preserves_the_envelope(self):
        from repro.api import SolveResult

        result = MonteCarloBackend().solve(_byzantine_spec(trials=3))
        restored = SolveResult.from_json(result.to_json())
        assert restored.details["envelope"] == result.details["envelope"]

    def test_mc_seed_changes_the_ensemble(self):
        base = _jittered_crash_spec(trials=4)
        import dataclasses

        other = dataclasses.replace(
            base,
            fault_model=FaultModel.from_dict({**base.fault_model.to_dict(), "mc_seed": 1}),
        )
        first = MonteCarloBackend().solve(base)
        second = MonteCarloBackend().solve(other)
        assert first.details["envelope"] != second.details["envelope"]


class TestCollapse:
    def test_non_randomized_fault_collapses_to_one_trial(self):
        spec = SearchProblem(
            distance=1.5,
            visibility=0.3,
            fault_model=FaultModel(
                kind="crash-recovery",
                robot="reference",
                crash_time=2.0,
                recovery_delay=4.0,
                trials=64,  # jitter=0: every trial would be identical
            ),
        )
        result = MonteCarloBackend().solve(spec)
        assert result.details["trials"] == 1
        assert result.details["trials_requested"] == 64
        assert result.details["envelope"]["count"] == 1

    def test_none_carrier_collapses_and_matches_the_plain_solver(self):
        spec = SearchProblem(
            distance=1.5, visibility=0.3, bearing=0.8, fault_model=FaultModel(trials=8)
        )
        plain = SearchProblem(distance=1.5, visibility=0.3, bearing=0.8)
        mc = MonteCarloBackend().solve(spec)
        reference = solve(plain, backend="simulation")
        assert mc.details["trials"] == 1
        assert mc.measured_time == pytest.approx(reference.measured_time)

    def test_byzantine_never_collapses(self):
        result = MonteCarloBackend().solve(_byzantine_spec(trials=4))
        assert result.details["trials"] == 4


class TestBackendRouting:
    def test_simulation_backend_runs_the_nominal_realization(self):
        result = solve(_jittered_crash_spec(), backend="simulation")
        block = result.details["fault"]
        assert block["trial_index"] == 0
        assert block["crash_time"] == 2.0  # nominal: jitter suppressed

    def test_auto_backend_routes_faulted_specs_to_simulation(self):
        result = solve(_jittered_crash_spec(), backend="auto")
        assert result.provenance.backend == "simulation"
        assert "fault" in result.details

    def test_vectorized_backend_falls_back_for_faulted_specs(self):
        result = solve(_jittered_crash_spec(), backend="vectorized")
        assert "fault" in result.details

    def test_analytic_backend_flags_unmodeled_faults(self):
        result = solve(_jittered_crash_spec(), backend="analytic")
        assert result.details["fault"]["modeled"] is False
