"""FaultModel: taxonomy validation, wire format, behaviour flags."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.faults import FAULT_KINDS, FAULT_ROBOTS, FaultModel


class TestValidation:
    def test_default_is_the_none_carrier(self):
        fault = FaultModel()
        assert fault.kind == "none"
        assert not fault.is_fault
        assert not fault.randomized
        assert fault.crash_time is None and fault.recovery_delay is None

    def test_taxonomy_constants(self):
        assert FAULT_KINDS == ("none", "crash-stop", "crash-recovery", "byzantine")
        assert FAULT_ROBOTS == ("reference", "other")

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown fault kind"):
            FaultModel(kind="meltdown")

    def test_unknown_robot_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown fault robot"):
            FaultModel(kind="crash-stop", robot="bystander", crash_time=1.0)

    @pytest.mark.parametrize("kind", ["crash-stop", "crash-recovery"])
    def test_crash_kinds_require_crash_time(self, kind):
        with pytest.raises(InvalidParameterError, match="needs crash_time"):
            FaultModel(kind=kind, recovery_delay=1.0 if kind == "crash-recovery" else None)

    def test_crash_time_must_be_positive(self):
        with pytest.raises(InvalidParameterError, match="positive"):
            FaultModel(kind="crash-stop", crash_time=0.0)
        with pytest.raises(InvalidParameterError):
            FaultModel(kind="crash-stop", crash_time=-2.0)
        with pytest.raises(InvalidParameterError, match="finite"):
            FaultModel(kind="crash-stop", crash_time=float("inf"))

    def test_byzantine_onset_defaults_to_zero_and_allows_zero(self):
        assert FaultModel(kind="byzantine").crash_time == 0.0
        assert FaultModel(kind="byzantine", crash_time=0.0).crash_time == 0.0
        assert FaultModel(kind="byzantine", crash_time=3.5).crash_time == 3.5

    def test_none_kind_must_not_set_crash_time(self):
        with pytest.raises(InvalidParameterError, match="must not set crash_time"):
            FaultModel(kind="none", crash_time=1.0)

    def test_recovery_delay_required_exactly_for_crash_recovery(self):
        with pytest.raises(InvalidParameterError, match="needs recovery_delay"):
            FaultModel(kind="crash-recovery", crash_time=1.0)
        with pytest.raises(InvalidParameterError, match="only applies"):
            FaultModel(kind="crash-stop", crash_time=1.0, recovery_delay=2.0)
        fault = FaultModel(kind="crash-recovery", crash_time=1.0, recovery_delay=2.0)
        assert fault.recovery_delay == 2.0

    def test_trials_bounds(self):
        with pytest.raises(InvalidParameterError):
            FaultModel(trials=0)
        with pytest.raises(InvalidParameterError):
            FaultModel(trials=10_001)
        with pytest.raises(InvalidParameterError, match="integer"):
            FaultModel(trials=2.5)
        with pytest.raises(InvalidParameterError, match="integer"):
            FaultModel(trials=True)

    def test_mc_seed_non_negative_integer(self):
        with pytest.raises(InvalidParameterError):
            FaultModel(mc_seed=-1)
        assert FaultModel(mc_seed=0).mc_seed == 0

    def test_jitter_range(self):
        with pytest.raises(InvalidParameterError, match="jitter"):
            FaultModel(jitter=1.0)
        with pytest.raises(InvalidParameterError, match="jitter"):
            FaultModel(jitter=-0.1)
        with pytest.raises(InvalidParameterError, match="jitter"):
            FaultModel(jitter=float("nan"))
        assert FaultModel(jitter=0.99).jitter == pytest.approx(0.99)


class TestWireFormat:
    @pytest.mark.parametrize(
        "fault",
        [
            FaultModel(),
            FaultModel(kind="crash-stop", robot="reference", crash_time=2.0, jitter=0.3),
            FaultModel(
                kind="crash-recovery", crash_time=1.5, recovery_delay=4.0, trials=16, mc_seed=7
            ),
            FaultModel(kind="byzantine", crash_time=0.0, trials=32),
        ],
    )
    def test_round_trip(self, fault):
        assert FaultModel.from_dict(fault.to_dict()) == fault

    def test_to_dict_has_stable_shape(self):
        keys = set(FaultModel().to_dict())
        assert keys == {
            "kind",
            "robot",
            "crash_time",
            "recovery_delay",
            "trials",
            "mc_seed",
            "jitter",
        }

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(InvalidParameterError, match="unknown fault_model field"):
            FaultModel.from_dict({"kind": "none", "flux_capacitor": 1})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(InvalidParameterError, match="JSON object"):
            FaultModel.from_dict(["crash-stop"])

    def test_partial_dict_uses_defaults(self):
        fault = FaultModel.from_dict({"kind": "byzantine"})
        assert fault.crash_time == 0.0 and fault.trials == 1


class TestBehaviourFlags:
    def test_randomized_requires_a_fault(self):
        assert not FaultModel(jitter=0.5).randomized  # the 'none' carrier
        assert not FaultModel(kind="crash-stop", crash_time=1.0).randomized
        assert FaultModel(kind="crash-stop", crash_time=1.0, jitter=0.1).randomized
        assert FaultModel(kind="byzantine").randomized  # walk varies per trial

    def test_describe_mentions_the_salient_knobs(self):
        assert "no fault" in FaultModel(trials=4).describe()
        text = FaultModel(
            kind="crash-recovery", crash_time=1.5, recovery_delay=4.0, jitter=0.2, trials=8
        ).describe()
        assert "crash-recovery" in text
        assert "recovery after 4" in text
        assert "jitter 0.2" in text
        assert "trials=8" in text
