"""Fault-aware solving: seeding contract, realizations, typed outcomes."""

from __future__ import annotations

import pytest

from repro.api import RendezvousProblem, SearchProblem
from repro.errors import InvalidParameterError
from repro.faults import FaultModel
from repro.faults.solver import (
    FaultRealization,
    nominal_realization,
    realize,
    solve_spec_with_fault,
    trial_seed,
)

_HASH = "ab" * 32  # any fixed 64-hex string works as a spec hash


class TestTrialSeed:
    def test_pure_function_of_the_inputs(self):
        assert trial_seed(_HASH, 7, 3) == trial_seed(_HASH, 7, 3)

    def test_distinct_along_every_axis(self):
        base = trial_seed(_HASH, 7, 3)
        assert base != trial_seed(_HASH, 7, 4)
        assert base != trial_seed(_HASH, 8, 3)
        assert base != trial_seed("cd" * 32, 7, 3)

    def test_fits_in_63_bits(self):
        for index in range(50):
            assert 0 <= trial_seed(_HASH, 0, index) < 2**63

    def test_negative_index_rejected(self):
        with pytest.raises(InvalidParameterError):
            trial_seed(_HASH, 0, -1)


class TestRealize:
    def test_zero_jitter_realizes_nominal_times(self):
        fault = FaultModel(kind="crash-recovery", crash_time=2.0, recovery_delay=3.0)
        for index in (0, 1, 5):
            realization = realize(fault, _HASH, index)
            assert realization.crash_time == 2.0
            assert realization.recovery_delay == 3.0

    def test_jitter_stays_within_the_declared_band(self):
        fault = FaultModel(kind="crash-stop", crash_time=4.0, jitter=0.25, trials=64)
        times = [realize(fault, _HASH, index).crash_time for index in range(64)]
        assert all(3.0 - 1e-9 <= t <= 5.0 + 1e-9 for t in times)
        assert len(set(times)) > 1  # the trials genuinely differ

    def test_realization_is_deterministic(self):
        fault = FaultModel(kind="byzantine", crash_time=1.0, jitter=0.3)
        assert realize(fault, _HASH, 9) == realize(fault, _HASH, 9)

    def test_walk_seed_independent_of_jitter(self):
        """Adding jitter must not change which adversarial walk trial i gets."""
        plain = FaultModel(kind="byzantine", crash_time=1.0)
        jittered = FaultModel(kind="byzantine", crash_time=1.0, jitter=0.3)
        assert realize(plain, _HASH, 4).walk_seed == realize(jittered, _HASH, 4).walk_seed

    def test_none_carrier_has_no_times(self):
        realization = realize(FaultModel(trials=8), _HASH, 2)
        assert realization.crash_time is None and realization.recovery_delay is None

    def test_nominal_realization_suppresses_jitter(self):
        fault = FaultModel(kind="crash-stop", crash_time=4.0, jitter=0.25)
        nominal = nominal_realization(fault, _HASH)
        assert nominal.trial_index == 0
        assert nominal.crash_time == 4.0
        assert nominal.seed == trial_seed(_HASH, fault.mc_seed, 0)


class TestSolveWithFault:
    def _fields(self, spec) -> dict:
        realization = nominal_realization(spec.fault_model, spec.canonical_hash())
        return solve_spec_with_fault(spec, realization)

    def test_early_crash_stop_search_is_typed_not_raised(self):
        spec = SearchProblem(
            distance=1.5,
            visibility=0.3,
            bearing=0.8,
            fault_model=FaultModel(kind="crash-stop", robot="reference", crash_time=0.5),
        )
        fields = self._fields(spec)
        assert fields["solved"] is False
        assert fields["measured_time"] is None
        assert fields["details"]["fault"]["status"] == "crashed-before-discovery"

    def test_crash_recovery_search_completes_late(self):
        healthy = SearchProblem(distance=1.5, visibility=0.3, bearing=0.8)
        spec = SearchProblem(
            distance=1.5,
            visibility=0.3,
            bearing=0.8,
            fault_model=FaultModel(
                kind="crash-recovery", robot="reference", crash_time=2.0, recovery_delay=4.0
            ),
        )
        from repro.core import solve_search

        healthy_time = solve_search(healthy.to_instance()).time
        fields = self._fields(spec)
        assert fields["solved"] is True
        assert fields["details"]["fault"]["status"] == "solved"
        # Crash at t=2 < discovery: the whole schedule shifts by the downtime.
        assert fields["measured_time"] == pytest.approx(healthy_time + 4.0)

    def test_partner_crash_breaks_theorem4_infeasibility(self):
        spec = RendezvousProblem(
            distance=1.5,
            visibility=0.3,
            fault_model=FaultModel(kind="crash-stop", robot="other", crash_time=1.0),
        )
        fields = self._fields(spec)
        assert fields["feasible"] is False  # the analytic verdict survives
        assert fields["solved"] is True  # ...but the wreck is findable
        assert fields["details"]["fault"]["status"] == "solved"

    def test_healthy_infeasible_spec_is_typed_infeasible(self):
        spec = RendezvousProblem(
            distance=1.5, visibility=0.3, fault_model=FaultModel(trials=4)
        )
        fields = self._fields(spec)
        assert fields["solved"] is False
        assert fields["details"]["fault"]["status"] == "infeasible"

    def test_faulted_rendezvous_keeps_solving_when_partner_recovers(self):
        spec = RendezvousProblem(
            distance=1.6,
            visibility=0.35,
            bearing=0.9,
            speed=0.7,
            fault_model=FaultModel(
                kind="crash-recovery", robot="other", crash_time=1.0, recovery_delay=3.0
            ),
        )
        fields = self._fields(spec)
        assert fields["solved"] is True
        assert fields["details"]["fault"]["attempts"] >= 1

    def test_fault_details_carry_the_realization(self):
        spec = SearchProblem(
            distance=1.5,
            visibility=0.3,
            fault_model=FaultModel(
                kind="crash-stop", robot="reference", crash_time=2.0, mc_seed=11
            ),
        )
        block = self._fields(spec)["details"]["fault"]
        assert block["kind"] == "crash-stop"
        assert block["robot"] == "reference"
        assert block["trial_index"] == 0
        assert block["trial_seed"] == trial_seed(spec.canonical_hash(), 11, 0)

    def test_gathering_specs_are_rejected(self):
        from repro.api import GatheringMember, GatheringProblem

        spec = GatheringProblem(
            members=(GatheringMember(0.0, 0.0), GatheringMember(1.0, 0.5, speed=0.8)),
            visibility=0.4,
        )
        realization = FaultRealization(trial_index=0, seed=1)
        # No fault model on gathering: healthy dispatch handles it fine...
        fields = solve_spec_with_fault(spec, realization)
        assert "fault" not in fields["details"]
