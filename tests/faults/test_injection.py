"""Trajectory-level fault injection: exact splits, crash/recovery/byzantine."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidParameterError
from repro.faults import (
    byzantine_trajectory,
    crash_recovery_trajectory,
    crash_stop_trajectory,
    split_segment,
)
from repro.geometry import Vec2
from repro.motion import ArcMotion, LazyTrajectory, LinearMotion, WaitMotion


def _total_duration(trajectory: LazyTrajectory) -> float:
    """Full duration of a finite trajectory (materialises everything)."""
    assert not trajectory.ensure_time(1e9), "expected a finite trajectory"
    return trajectory.covered_duration


def _base() -> LazyTrajectory:
    """Wait, straight line, half circle -- one of each primitive."""
    return LazyTrajectory(
        [
            WaitMotion(Vec2(0.0, 0.0), 1.0),
            LinearMotion(Vec2(0.0, 0.0), Vec2(2.0, 0.0), 2.0),
            ArcMotion(Vec2(2.0, 1.0), 1.0, -math.pi / 2.0, math.pi, 3.0),
        ]
    )


class TestSplitSegment:
    @pytest.mark.parametrize(
        "segment",
        [
            WaitMotion(Vec2(1.0, -2.0), 3.0),
            LinearMotion(Vec2(0.0, 0.0), Vec2(3.0, 4.0), 2.5),
            ArcMotion(Vec2(0.0, 0.0), 2.0, 0.3, 1.9, 4.0),
        ],
    )
    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.7, 1.0])
    def test_halves_reproduce_the_original_positions(self, segment, fraction):
        cut = segment.duration * fraction
        head, tail = split_segment(segment, cut)
        assert type(head) is type(segment) and type(tail) is type(segment)
        assert head.duration == pytest.approx(cut)
        assert tail.duration == pytest.approx(segment.duration - cut)
        # Continuity at the joint and exactness everywhere.
        assert head.position(head.duration).distance_to(tail.position(0.0)) < 1e-9
        for t in (0.0, segment.duration * 0.5, segment.duration):
            original = segment.position(t)
            if t <= cut:
                rebuilt = head.position(t)
            else:
                rebuilt = tail.position(t - cut)
            assert original.distance_to(rebuilt) < 1e-9

    def test_out_of_range_cut_rejected(self):
        segment = LinearMotion(Vec2(0.0, 0.0), Vec2(1.0, 0.0), 1.0)
        with pytest.raises(InvalidParameterError):
            split_segment(segment, -0.1)
        with pytest.raises(InvalidParameterError):
            split_segment(segment, 1.1)


class TestCrashStop:
    def test_prefix_matches_base_then_trajectory_ends(self):
        base = _base()
        crashed = crash_stop_trajectory(_base(), 2.0)
        for t in (0.0, 0.5, 1.0, 1.5, 2.0):
            assert base.position(t).distance_to(crashed.position(t)) < 1e-9
        assert _total_duration(crashed) == pytest.approx(2.0)

    def test_mid_arc_crash_is_exact(self):
        base = _base()
        crashed = crash_stop_trajectory(_base(), 4.5)
        assert _total_duration(crashed) == pytest.approx(4.5)
        assert crashed.position(4.5).distance_to(base.position(4.5)) < 1e-9

    def test_crash_on_a_segment_boundary_produces_no_sliver(self):
        crashed = crash_stop_trajectory(_base(), 3.0)
        durations = []
        index = 0
        while (entry := crashed.timed_segment(index)) is not None:
            durations.append(entry[2].duration)
            index += 1
        # The straddling segment snaps to the boundary: either it is absent
        # or it is an exactly-zero head, never a positive sliver.
        assert [d for d in durations if d > 0.0] == [1.0, 2.0]
        assert sum(durations) == pytest.approx(3.0)

    def test_non_positive_crash_time_rejected(self):
        with pytest.raises(InvalidParameterError):
            crash_stop_trajectory(_base(), 0.0)


class TestCrashRecovery:
    def test_schedule_is_shifted_by_the_downtime(self):
        base = _base()
        recovered = crash_recovery_trajectory(_base(), 1.5, 2.0)
        # Before the crash: identical.
        for t in (0.0, 0.75, 1.5):
            assert base.position(t).distance_to(recovered.position(t)) < 1e-9
        # During the downtime: frozen where the crash caught it.
        halt = base.position(1.5)
        for t in (1.6, 2.5, 3.5):
            assert recovered.position(t).distance_to(halt) < 1e-9
        # After recovery: the base protocol, delayed by exactly 2.0.
        for t in (3.6, 4.5, 6.0, 8.0):
            assert recovered.position(t).distance_to(base.position(t - 2.0)) < 1e-9
        assert _total_duration(recovered) == pytest.approx(_total_duration(base) + 2.0)

    def test_boundary_crash_resumes_cleanly(self):
        base = _base()
        recovered = crash_recovery_trajectory(_base(), 1.0, 0.5)
        assert recovered.position(1.2).distance_to(base.position(1.0)) < 1e-9
        assert recovered.position(2.0).distance_to(base.position(1.5)) < 1e-9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            crash_recovery_trajectory(_base(), 0.0, 1.0)
        with pytest.raises(InvalidParameterError):
            crash_recovery_trajectory(_base(), 1.0, 0.0)


class TestByzantine:
    def test_protocol_until_onset_then_walk(self):
        base = _base()
        adversarial = byzantine_trajectory(_base(), 2.0, seed=123, speed=1.5)
        for t in (0.0, 1.0, 2.0):
            assert base.position(t).distance_to(adversarial.position(t)) < 1e-9
        # The walk is unbounded: it keeps producing motion far past the base.
        far = adversarial.position(56.0)
        assert math.isfinite(far.x) and math.isfinite(far.y)

    def test_walk_moves_at_full_speed(self):
        adversarial = byzantine_trajectory(_base(), 0.0, seed=9, speed=2.0)
        index = 0
        checked = 0
        while checked < 5:
            entry = adversarial.timed_segment(index)
            assert entry is not None
            segment = entry[2]
            index += 1
            if not isinstance(segment, LinearMotion) or segment.duration == 0.0:
                continue
            speed = segment.start.distance_to(segment.end) / segment.duration
            assert speed == pytest.approx(2.0)
            checked += 1

    def test_same_seed_reproduces_the_walk_exactly(self):
        first = byzantine_trajectory(_base(), 1.0, seed=42, speed=1.0)
        second = byzantine_trajectory(_base(), 1.0, seed=42, speed=1.0)
        for t in (0.5, 2.0, 7.3, 31.0):
            assert first.position(t).distance_to(second.position(t)) == 0.0

    def test_different_seed_diverges(self):
        first = byzantine_trajectory(_base(), 0.0, seed=1, speed=1.0)
        second = byzantine_trajectory(_base(), 0.0, seed=2, speed=1.0)
        assert first.position(10.0).distance_to(second.position(10.0)) > 1e-6

    def test_zero_onset_walks_from_the_start(self):
        adversarial = byzantine_trajectory(_base(), 0.0, seed=5, speed=1.0)
        assert adversarial.position(0.0).distance_to(Vec2(0.0, 0.0)) < 1e-9
        assert adversarial.position(3.0).distance_to(Vec2(0.0, 0.0)) > 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            byzantine_trajectory(_base(), -1.0, seed=0, speed=1.0)
        with pytest.raises(InvalidParameterError):
            byzantine_trajectory(_base(), 0.0, seed=0, speed=0.0)
