"""The lazily-generated ``search-sweep-xl`` suite.

A hundred-thousand-spec suite cannot be a materialized list, so the
suite registry grew :class:`LazySpecSuite`: a sequence that builds specs
on demand from the index.  These tests pin the sequence contract, the
laziness, the registry integration and the honesty of the advertised
count and digest.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.errors import InvalidParameterError
from repro.workloads import (
    LazySpecSuite,
    search_sweep_xl_suite,
    spec_suite,
    spec_suite_names,
)
from repro.workloads.suites import _search_sweep_xl_spec


class TestLazySpecSuite:
    def test_sequence_contract(self):
        suite = LazySpecSuite(7, _search_sweep_xl_spec, kinds=("search",))
        assert len(suite) == 7
        assert suite[0].canonical_hash() == _search_sweep_xl_spec(0).canonical_hash()
        assert suite[-1].canonical_hash() == _search_sweep_xl_spec(6).canonical_hash()
        assert [s.canonical_hash() for s in suite[2:5]] == [
            _search_sweep_xl_spec(i).canonical_hash() for i in (2, 3, 4)
        ]
        with pytest.raises(IndexError):
            suite[7]
        assert len(list(suite)) == 7

    def test_rejects_empty_suites(self):
        with pytest.raises(InvalidParameterError):
            LazySpecSuite(0, _search_sweep_xl_spec, kinds=("search",))

    def test_digest_is_the_truncated_sha256_of_the_joined_hashes(self):
        suite = LazySpecSuite(5, _search_sweep_xl_spec, kinds=("search",))
        joined = "".join(suite.spec_hashes()).encode("utf-8")
        assert suite.digest() == hashlib.sha256(joined).hexdigest()[:12]
        # spec_hashes() is cached: the second call is the same object.
        assert suite.spec_hashes() is suite.spec_hashes()


class TestSearchSweepXl:
    def test_registered_and_cached(self):
        assert "search-sweep-xl" in spec_suite_names()
        suite = spec_suite("search-sweep-xl")
        assert isinstance(suite, LazySpecSuite)
        # The registry hands back the module-level cached suite, so the
        # expensive hash pass runs at most once per process.
        assert suite is search_sweep_xl_suite()
        assert suite is spec_suite("search-sweep-xl")

    def test_advertised_count_is_honest(self):
        suite = search_sweep_xl_suite()
        assert len(suite) == 100_000
        assert suite.kinds == ("search",)
        assert suite.faulted == 0

    def test_indexing_does_not_materialize(self):
        suite = search_sweep_xl_suite()
        # Distinct corners of the grid decode to distinct specs without
        # touching the other 99 998 indices.
        first = suite[0]
        last = suite[len(suite) - 1]
        assert first.canonical_hash() != last.canonical_hash()
        assert first.kind == last.kind == "search"

    def test_grid_axes_are_all_exercised(self):
        suite = search_sweep_xl_suite()
        # One full bearing block: 50 consecutive indices share distance
        # and visibility but sweep the bearing axis.
        block = [suite[i] for i in range(50)]
        assert len({spec.bearing for spec in block}) == 50
        assert len({spec.visibility for spec in block}) == 1
        # Crossing a visibility boundary changes visibility.
        assert suite[0].visibility != suite[50].visibility
        # Crossing the distance boundary changes distance.
        assert suite[0].distance != suite[50 * 40].distance
