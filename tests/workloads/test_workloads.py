"""Unit tests for workload generators, adversarial cases and suites."""

from __future__ import annotations

import math

import pytest

from repro.core import is_feasible
from repro.errors import InvalidParameterError
from repro.workloads import (
    InstanceGenerator,
    asymmetric_clock_suite,
    baseline_comparison_suite,
    feasibility_grid,
    infeasible_identical_instance,
    infeasible_mirrored_instance,
    mirrored_suite,
    mirrored_worst_instance,
    near_symmetric_attributes,
    search_random_suite,
    search_sweep_suite,
    symmetric_clock_suite,
    worst_case_orientation,
)


class TestInstanceGenerator:
    def test_same_seed_gives_identical_instances(self):
        first = InstanceGenerator(seed=7).search_suite(5)
        second = InstanceGenerator(seed=7).search_suite(5)
        for a, b in zip(first, second):
            assert a.target.is_close(b.target)
            assert a.visibility == pytest.approx(b.visibility)

    def test_different_seeds_differ(self):
        a = InstanceGenerator(seed=1).search_instance()
        b = InstanceGenerator(seed=2).search_instance()
        assert not a.target.is_close(b.target)

    def test_search_instances_respect_ranges(self):
        generator = InstanceGenerator(seed=3)
        for instance in generator.search_suite(20, distance_range=(1.0, 2.0), visibility_range=(0.1, 0.2)):
            assert 1.0 <= instance.distance <= 2.0
            assert 0.1 <= instance.visibility <= 0.2

    def test_rendezvous_instances_are_never_trivially_solved(self):
        generator = InstanceGenerator(seed=5)
        for instance in generator.rendezvous_suite(20):
            assert not instance.already_solved()

    def test_attribute_generation_ranges(self):
        generator = InstanceGenerator(seed=9)
        attributes = generator.attributes(speed_range=(0.5, 0.6), time_unit_range=(2.0, 2.0))
        assert 0.5 <= attributes.speed <= 0.6
        assert attributes.time_unit == pytest.approx(2.0)

    def test_impossible_range_rejected(self):
        generator = InstanceGenerator(seed=1)
        with pytest.raises(InvalidParameterError):
            generator.rendezvous_instance(distance_range=(0.1, 0.2), visibility_range=(0.5, 0.6))

    def test_invalid_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            InstanceGenerator().search_suite(0)


class TestAdversarial:
    def test_worst_case_orientation_is_pi(self):
        assert worst_case_orientation(0.5) == pytest.approx(math.pi)

    def test_mirrored_worst_instance_is_feasible(self):
        instance = mirrored_worst_instance(0.5, 1.5, 0.3)
        assert is_feasible(instance.attributes)
        assert instance.attributes.chirality == -1

    def test_mirrored_worst_instance_requires_slow_robot(self):
        with pytest.raises(InvalidParameterError):
            mirrored_worst_instance(1.5, 1.0, 0.3)

    def test_infeasible_instances_really_are_infeasible(self):
        assert not is_feasible(infeasible_identical_instance(1.0, 0.2).attributes)
        assert not is_feasible(infeasible_mirrored_instance(1.1, 1.0, 0.2).attributes)

    def test_near_symmetric_attributes(self):
        assert near_symmetric_attributes(0.01, "speed").speed == pytest.approx(0.99)
        assert near_symmetric_attributes(0.01, "clock").time_unit == pytest.approx(0.99)
        assert near_symmetric_attributes(0.01, "orientation").orientation == pytest.approx(0.01)
        with pytest.raises(InvalidParameterError):
            near_symmetric_attributes(0.01, "bogus")


class TestSuites:
    def test_search_sweep_suite_is_nonempty_and_valid(self):
        suite = search_sweep_suite()
        assert len(suite) > 20
        assert all(instance.distance > instance.visibility for instance in suite)

    def test_random_suites_are_deterministic(self):
        assert [i.visibility for i in search_random_suite(5, seed=3)] == pytest.approx(
            [i.visibility for i in search_random_suite(5, seed=3)]
        )

    def test_symmetric_clock_suite_is_feasible_and_clock_free(self):
        for instance in symmetric_clock_suite():
            assert instance.attributes.time_unit == 1.0
            assert is_feasible(instance.attributes)

    def test_mirrored_suite_uses_slow_mirrored_robots(self):
        for instance in mirrored_suite():
            assert instance.attributes.chirality == -1
            assert instance.attributes.speed < 1.0

    def test_asymmetric_suite_has_differing_clocks(self):
        for instance in asymmetric_clock_suite():
            assert instance.attributes.time_unit != 1.0

    def test_feasibility_grid_labels_match_the_theorem(self):
        for label, instance, expected in feasibility_grid():
            assert is_feasible(instance.attributes) == expected, label

    def test_baseline_suite_size(self):
        assert len(baseline_comparison_suite(count=7)) == 7
        with pytest.raises(InvalidParameterError):
            baseline_comparison_suite(count=0)

    def test_suite_spec_hashes_identify_the_workload(self):
        from repro.workloads import spec_suite, suite_spec_hashes

        hashes = suite_spec_hashes("search-sweep")
        assert hashes == [spec.canonical_hash() for spec in spec_suite("search-sweep")]
        assert hashes == suite_spec_hashes("search-sweep")  # deterministic
        with pytest.raises(InvalidParameterError):
            suite_spec_hashes("no-such-suite")
