"""Unit tests for :func:`repro.exec.plan.partition_specs`.

The distributed sweep relies on this helper for three guarantees: the
partitions are disjoint by ``(backend, spec hash)`` (duplicates solved
once, fleet-wide), every spec lands on the shard ``assign`` names (the
same one a routed ``solve`` would warm), and the partition order is
deterministic so acks and summaries are stable.
"""

from __future__ import annotations

from repro.api import SearchProblem
from repro.exec import PlanPartition, partition_specs


def _specs(count: int) -> list[SearchProblem]:
    return [SearchProblem(distance=1.0 + 0.1 * i, visibility=0.3) for i in range(count)]


class TestPartitionSpecs:
    def test_buckets_follow_assign_and_counts_are_honest(self):
        specs = _specs(9)
        partitions, total, unique = partition_specs(
            specs, "analytic", assign=lambda h: int(h[:8], 16) % 3
        )
        assert (total, unique) == (9, 9)
        assert sum(len(p.specs) for p in partitions) == 9
        for partition in partitions:
            assert isinstance(partition, PlanPartition)
            assert len(partition.specs) == len(partition.hashes)
            for spec, spec_hash in zip(partition.specs, partition.hashes):
                assert spec.canonical_hash() == spec_hash
                assert int(spec_hash[:8], 16) % 3 == partition.node

    def test_duplicates_dedupe_to_one_slot(self):
        specs = _specs(4)
        partitions, total, unique = partition_specs(
            specs + specs + [specs[0]], "analytic", assign=lambda h: "only"
        )
        assert (total, unique) == (9, 4)
        (partition,) = partitions
        assert len(partition.hashes) == len(set(partition.hashes)) == 4

    def test_partitions_are_sorted_by_node_string(self):
        specs = _specs(6)
        nodes = ["w2", "w0", "w1"]
        partitions, _, _ = partition_specs(
            specs, "analytic", assign=lambda h: nodes[int(h[:8], 16) % 3]
        )
        assert [p.node for p in partitions] == sorted(
            (p.node for p in partitions), key=str
        )

    def test_backend_is_part_of_the_dedup_key(self):
        # Identical specs under different backends are different work:
        # partitioning the same suite twice with different backend names
        # must dedupe within each call only.
        specs = _specs(3)
        _, _, unique_a = partition_specs(specs, "analytic", assign=lambda h: 0)
        _, _, unique_b = partition_specs(specs, "simulation", assign=lambda h: 0)
        assert unique_a == unique_b == 3

    def test_empty_input_yields_no_partitions(self):
        partitions, total, unique = partition_specs([], "analytic", assign=lambda h: 0)
        assert partitions == [] and total == 0 and unique == 0

    def test_preserves_first_seen_spec_order_within_a_bucket(self):
        specs = _specs(5)
        (partition,), _, _ = partition_specs(specs, "analytic", assign=lambda h: 0)
        assert [s.canonical_hash() for s in partition.specs] == [
            s.canonical_hash() for s in specs
        ]
