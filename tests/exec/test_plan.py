"""Planner/executor split: plan tiers, streaming completions, failure capture."""

from __future__ import annotations

import pytest

from repro.api import BatchRunner, RendezvousProblem, SearchProblem, solve, solve_batch
from repro.api.backends import _REGISTRY, SolverBackend, register_backend
from repro.errors import BatchExecutionError, SimulationError
from repro.exec import PoolExecutor, SerialExecutor, ThreadedExecutor


def _searches(n: int) -> list[SearchProblem]:
    return [SearchProblem(distance=1.0 + 0.1 * i, visibility=0.3) for i in range(n)]


def _mixed_workload() -> list:
    return [
        SearchProblem(distance=1.2, visibility=0.3, bearing=0.6),
        RendezvousProblem(distance=1.4, visibility=0.35, speed=0.6),
        SearchProblem(distance=0.9, visibility=0.25, bearing=2.1),
    ]


def _fingerprints(results):
    return [result.fingerprint() for result in results]


class TestPlanner:
    def test_tiers_partition_unique_keys(self):
        runner = BatchRunner(backend="auto")
        specs = _mixed_workload() + [_mixed_workload()[0]]  # one duplicate
        plan = runner.plan(specs)
        assert plan.total == 4 and plan.unique == 3
        # auto batches the two searches through the kernel; the
        # rendezvous spec is a serial leftover.
        assert len(plan.batch) == 2
        assert len(plan.serial) == 1
        assert not plan.cached and not plan.stored and not plan.pooled
        assert plan.pending == 3

    def test_warm_lru_plans_everything_cached(self):
        runner = BatchRunner(backend="analytic")
        specs = _mixed_workload()
        runner.solve_many(specs)
        plan = runner.plan(specs)
        assert len(plan.cached) == len(specs)
        assert plan.pending == 0

    def test_store_tier_planned_below_the_lru(self, tmp_path):
        specs = _mixed_workload()
        BatchRunner(backend="analytic", store=tmp_path).solve_many(specs)
        fresh = BatchRunner(backend="analytic", store=tmp_path)
        plan = fresh.plan(specs)
        assert len(plan.stored) == len(specs)
        assert plan.pending == 0
        # Store hits were promoted into the LRU at plan time.
        assert fresh.cache_len == len(specs)

    def test_pool_tier_only_for_pool_safe_backends(self):
        specs = [RendezvousProblem(distance=1.0 + 0.1 * i, visibility=0.3, speed=0.6) for i in range(4)]
        pooled = BatchRunner(backend="simulation", processes=2).plan(specs)
        assert pooled.use_pool and len(pooled.pooled) == 4 and not pooled.serial
        assert pooled.processes == 2

        class EchoBackend(SolverBackend):
            name = "echo-plan"
            fidelity = "bound"

            def _solve(self, spec):
                return {
                    "feasible": None,
                    "solved": None,
                    "measured_time": None,
                    "bound": 7.0,
                    "algorithm": None,
                    "details": {},
                }

        register_backend("echo-plan", EchoBackend)
        try:
            unsafe = BatchRunner(backend="echo-plan", processes=2).plan(specs)
            assert not unsafe.use_pool and len(unsafe.serial) == 4
            assert unsafe.processes == 1 and unsafe.chunksize == 1
        finally:
            _REGISTRY.pop("echo-plan", None)

    def test_describe_names_every_tier(self):
        plan = BatchRunner(backend="auto").plan(_mixed_workload())
        text = plan.describe()
        for word in ("cached", "stored", "batch", "pooled", "serial"):
            assert word in text


class TestRunIter:
    def test_streams_one_completion_per_unique_key(self):
        runner = BatchRunner(backend="analytic")
        specs = _mixed_workload() + [_mixed_workload()[0]]
        completions = list(runner.run_iter(specs))
        assert len(completions) == 3  # unique keys, duplicates share one
        assert all(completion.ok for completion in completions)
        assert all(completion.latency >= 0.0 for completion in completions)

    def test_cache_hits_stream_first(self):
        runner = BatchRunner(backend="analytic")
        specs = _mixed_workload()
        runner.solve_many(specs[:1])
        sources = [completion.source for completion in runner.run_iter(specs)]
        assert sources[0] == "cache"
        assert set(sources[1:]) <= {"batch", "serial"}

    def test_run_is_reconstructed_from_the_stream(self):
        specs = _mixed_workload()
        streamed = {
            completion.key: completion.result
            for completion in BatchRunner(backend="simulation").run_iter(specs)
        }
        collected, stats = BatchRunner(backend="simulation").run(specs)
        assert stats.unique == len(streamed)
        by_key = {
            (result.backend, result.provenance.spec_hash): result for result in collected
        }
        assert {key: result.fingerprint() for key, result in streamed.items()} == {
            key: result.fingerprint() for key, result in by_key.items()
        }

    def test_on_completion_observer_sees_every_completion(self):
        seen = []
        results, stats = BatchRunner(backend="analytic").run(
            _mixed_workload(), on_completion=seen.append
        )
        assert len(seen) == stats.unique
        assert all(completion.ok for completion in seen)

    def test_early_close_still_flushes_the_store(self, tmp_path):
        runner = BatchRunner(backend="analytic", store=tmp_path)
        stream = runner.run_iter(_mixed_workload())
        next(stream)
        stream.close()
        assert len(runner.store) >= 1


class TestExecutorStrategies:
    def test_threaded_executor_matches_serial_fingerprints(self):
        specs = _mixed_workload()
        serial = BatchRunner(backend="simulation").solve_many(specs)
        threaded = BatchRunner(
            backend="simulation", executor=ThreadedExecutor(max_workers=3)
        ).solve_many(specs)
        assert _fingerprints(serial) == _fingerprints(threaded)

    def test_forced_serial_executor_handles_a_pooled_plan(self):
        specs = [RendezvousProblem(distance=1.0 + 0.1 * i, visibility=0.3, speed=0.6) for i in range(3)]
        runner = BatchRunner(backend="simulation", processes=2, executor=SerialExecutor())
        results, stats = runner.run(specs)
        assert _fingerprints(results) == _fingerprints(
            BatchRunner(backend="simulation").solve_many(specs)
        )

    def test_pool_executor_streams_pooled_completions(self):
        specs = [RendezvousProblem(distance=1.0 + 0.1 * i, visibility=0.3, speed=0.6) for i in range(4)]
        runner = BatchRunner(backend="simulation", processes=2)
        plan = runner.plan(specs)
        assert plan.use_pool
        completions = list(PoolExecutor().execute(plan))
        assert sorted(completion.source for completion in completions) == ["pool"] * 4
        assert all(completion.ok for completion in completions)

    def test_threaded_executor_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(max_workers=0)


class TestFailureCapture:
    def _flaky(self):
        class FlakyBackend(SolverBackend):
            name = "flaky-exec"
            fidelity = "bound"

            def _solve(self, spec):
                if isinstance(spec, RendezvousProblem):
                    raise SimulationError("deliberate failure")
                return {
                    "feasible": True,
                    "solved": None,
                    "measured_time": None,
                    "bound": 1.0,
                    "algorithm": None,
                    "details": {},
                }

        return FlakyBackend

    def test_serial_failure_keeps_everything_that_solved(self, tmp_path):
        register_backend("flaky-exec", self._flaky())
        try:
            runner = BatchRunner(backend="flaky-exec", store=tmp_path)
            specs = _mixed_workload()  # 2 searches solve, 1 rendezvous fails
            with pytest.raises(BatchExecutionError) as excinfo:
                runner.run(specs)
            error = excinfo.value
            assert len(error.failures) == 1
            assert error.failures[0].spec_hash == specs[1].canonical_hash()
            assert error.failures[0].error_type == "SimulationError"
            assert len(error.completed) == 2
            # Solved specs were retained: LRU holds them and the store
            # flushed them, so a retry only re-attempts the failure.
            assert runner.cache_len == 2
            assert len(runner.store) == 2
        finally:
            _REGISTRY.pop("flaky-exec", None)

    def test_pool_worker_failure_does_not_abort_the_batch(self):
        # The infeasible rendezvous raises inside the pool worker; the
        # pool-safe simulation backend still returns everything else.
        good = [RendezvousProblem(distance=1.0 + 0.1 * i, visibility=0.3, speed=0.6) for i in range(3)]
        bad = RendezvousProblem(distance=1.4, visibility=0.3)  # identical robots
        runner = BatchRunner(backend="simulation", processes=2)
        with pytest.raises(BatchExecutionError) as excinfo:
            runner.run(good + [bad])
        error = excinfo.value
        assert [failure.spec_hash for failure in error.failures] == [bad.canonical_hash()]
        assert error.failures[0].error_type == "InfeasibleConfigurationError"
        assert len(error.completed) == 3
        assert error.stats.solved_in_pool == 3

    def test_kernel_batch_results_survive_a_failing_leftover(self):
        # Search specs solve through the kernel group; the infeasible
        # rendezvous fails serially -- the batch results are kept.
        searches = _searches(3)
        bad = RendezvousProblem(distance=1.4, visibility=0.3)
        runner = BatchRunner(backend="simulation")
        with pytest.raises(BatchExecutionError) as excinfo:
            runner.run(searches + [bad])
        assert len(excinfo.value.completed) == 3
        assert runner.cache_len == 3

    def test_message_names_the_failing_hash(self):
        register_backend("flaky-exec", self._flaky())
        try:
            with pytest.raises(BatchExecutionError) as excinfo:
                BatchRunner(backend="flaky-exec").run(_mixed_workload())
            spec_hash = _mixed_workload()[1].canonical_hash()
            assert spec_hash[:12] in str(excinfo.value)
        finally:
            _REGISTRY.pop("flaky-exec", None)


class TestSolveBatchPassthrough:
    def test_store_chunksize_and_cache_size_are_honoured(self, tmp_path):
        specs = _mixed_workload()
        results = solve_batch(
            specs,
            backend="analytic",
            chunksize=2,
            cache_size=8,
            store=tmp_path / "batch-store",
        )
        assert _fingerprints(results) == _fingerprints(
            [solve(spec, backend="analytic") for spec in specs]
        )
        # The store really was threaded through.
        warm = BatchRunner(backend="analytic", store=tmp_path / "batch-store")
        _, stats = warm.run(specs)
        assert stats.solved_from_store == len(specs)
