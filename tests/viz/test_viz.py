"""Unit tests for the SVG writer, ASCII renderers and figure plots."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.geometry import Vec2
from repro.motion import Trajectory
from repro.simulation import record_trace
from repro.viz import (
    SvgCanvas,
    Viewport,
    active_phase_rows,
    overlap_rows,
    plot_schedule_svg,
    plot_traces,
    render_intervals_ascii,
    render_schedule_ascii,
    render_trace_ascii,
    round_structure_rows,
)


class TestViewport:
    def test_corner_mapping(self):
        viewport = Viewport(0.0, 10.0, 0.0, 10.0, width=100.0, height=100.0, margin=10.0)
        assert viewport.to_pixels(0.0, 0.0) == pytest.approx((10.0, 90.0))
        assert viewport.to_pixels(10.0, 10.0) == pytest.approx((90.0, 10.0))

    def test_empty_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            Viewport(0.0, 0.0, 0.0, 1.0)

    def test_scale_is_positive(self):
        assert Viewport(0.0, 2.0, 0.0, 1.0).scale() > 0.0


class TestSvgCanvas:
    def _canvas(self) -> SvgCanvas:
        return SvgCanvas(Viewport(-1.0, 1.0, -1.0, 1.0))

    def test_document_structure(self):
        canvas = self._canvas()
        canvas.polyline([(0.0, 0.0), (0.5, 0.5)])
        canvas.circle((0.0, 0.0), 0.5)
        canvas.marker((0.1, 0.1))
        canvas.rectangle((-0.5, -0.5), (0.5, 0.5))
        canvas.line((-1.0, 0.0), (1.0, 0.0), dashed=True)
        canvas.text((0.0, 0.9), "label <with> markup")
        svg = canvas.to_svg()
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        for tag in ("<polyline", "<circle", "<rect", "<line", "<text"):
            assert tag in svg
        # Text is escaped.
        assert "&lt;with&gt;" in svg

    def test_single_point_polyline_rejected(self):
        with pytest.raises(InvalidParameterError):
            self._canvas().polyline([(0.0, 0.0)])

    def test_write_creates_the_file(self, tmp_path):
        canvas = self._canvas()
        canvas.marker((0.0, 0.0))
        path = canvas.write(tmp_path / "out.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")


class TestAsciiRenderers:
    def test_trace_rendering_contains_markers_and_legend(self):
        trajectory = Trajectory.stationary(Vec2(0.0, 0.0), 1.0)
        trace = record_trace(trajectory, until=1.0, samples=4, label="still")
        text = render_trace_ascii([trace])
        assert "still" in text
        assert "*" in text

    def test_trace_rendering_needs_at_least_one_trace(self):
        with pytest.raises(InvalidParameterError):
            render_trace_ascii([])

    def test_interval_rendering(self):
        rows = [("row", [(0.0, 1.0, "w"), (1.0, 2.0, "a")])]
        text = render_intervals_ascii(rows, width=40)
        assert "W" in text and "A" in text

    def test_interval_rendering_requires_intervals(self):
        with pytest.raises(InvalidParameterError):
            render_intervals_ascii([("row", [])])


class TestFigureRows:
    def test_round_structure_rows_alternate(self):
        (label, intervals), = round_structure_rows(2)
        assert [kind for _, _, kind in intervals] == ["w", "a", "w", "a"]

    def test_active_phase_rows_split_forward_and_reverse(self):
        rows = active_phase_rows(3)
        assert rows[0][0] == "SearchAll"
        assert rows[1][0] == "SearchAllRev"
        assert len(rows[0][1]) == 3 and len(rows[1][1]) == 3

    def test_overlap_rows_have_two_robots(self):
        rows = overlap_rows(3, 0.5)
        assert len(rows) == 2
        assert "0.5" in rows[1][0]

    def test_render_schedule_ascii(self):
        text = render_schedule_ascii(round_structure_rows(2))
        assert "tau=1" in text


class TestPlots:
    def test_plot_traces_writes_svg(self, tmp_path):
        trajectory = Trajectory.stationary(Vec2(0.0, 0.0), 1.0)
        trace = record_trace(trajectory, until=1.0, samples=8, label="robot")
        path = plot_traces([trace], tmp_path / "trace.svg", title="demo")
        assert path.exists()
        assert "<svg" in path.read_text()

    def test_plot_traces_requires_traces(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            plot_traces([], tmp_path / "never.svg")

    def test_plot_schedule_svg(self, tmp_path):
        path = plot_schedule_svg(round_structure_rows(2), tmp_path / "schedule.svg", title="fig")
        assert path.exists()
        content = path.read_text()
        assert "<rect" in content
