"""Tests for the multi-robot gathering extension."""

from __future__ import annotations

import math

import pytest

from repro.errors import InvalidParameterError
from repro.geometry import Vec2
from repro.gathering import (
    GatheringInstance,
    SwarmMember,
    pair_feasibility,
    relative_attributes,
    simulate_gathering,
    swarm_feasibility,
)
from repro.robots import RobotAttributes


def _swarm(attributes: list[RobotAttributes], spacing: float = 1.0) -> GatheringInstance:
    positions = [Vec2.polar(spacing, 2.0 * math.pi * i / len(attributes)) for i in range(len(attributes))]
    return GatheringInstance.create(positions, attributes, visibility=0.4)


class TestRelativeAttributes:
    def test_relative_to_itself_is_the_reference(self):
        attributes = RobotAttributes(speed=0.7, time_unit=2.0, orientation=1.0, chirality=-1)
        assert relative_attributes(attributes, attributes).is_reference()

    def test_speed_and_clock_ratios(self):
        observer = RobotAttributes(speed=2.0, time_unit=4.0)
        other = RobotAttributes(speed=1.0, time_unit=1.0)
        relative = relative_attributes(observer, other)
        assert relative.speed == pytest.approx(0.5)
        assert relative.time_unit == pytest.approx(0.25)

    def test_relative_chirality_is_the_product(self):
        mirrored = RobotAttributes(chirality=-1)
        upright = RobotAttributes()
        assert relative_attributes(mirrored, upright).chirality == -1
        assert relative_attributes(mirrored, mirrored).chirality == 1

    def test_pair_feasibility_is_symmetric(self):
        a = RobotAttributes(speed=0.5, orientation=1.0)
        b = RobotAttributes(speed=0.5, orientation=2.5)
        assert pair_feasibility(a, b).feasible == pair_feasibility(b, a).feasible

    def test_two_mirrored_robots_with_same_speed_are_infeasible(self):
        a = RobotAttributes(orientation=0.3, chirality=-1)
        b = RobotAttributes(orientation=1.9, chirality=1)
        assert not pair_feasibility(a, b).feasible

    def test_same_chirality_different_rotation_is_feasible(self):
        a = RobotAttributes(orientation=0.3, chirality=-1)
        b = RobotAttributes(orientation=1.9, chirality=-1)
        assert pair_feasibility(a, b).feasible


class TestInstance:
    def test_requires_at_least_two_members(self):
        with pytest.raises(InvalidParameterError):
            GatheringInstance.create([Vec2(0.0, 0.0)], [RobotAttributes()], visibility=0.2)

    def test_rejects_coincident_starts(self):
        with pytest.raises(InvalidParameterError):
            GatheringInstance.create(
                [Vec2(0.0, 0.0), Vec2(0.0, 0.0)],
                [RobotAttributes(), RobotAttributes(speed=0.5)],
                visibility=0.2,
            )

    def test_pairs_enumeration(self):
        swarm = _swarm([RobotAttributes(speed=s) for s in (0.5, 0.8, 1.2)])
        assert swarm.pairs() == [(0, 1), (0, 2), (1, 2)]
        assert swarm.size == 3

    def test_mismatched_lists_rejected(self):
        with pytest.raises(InvalidParameterError):
            GatheringInstance.create([Vec2(0.0, 0.0)], [], visibility=0.2)


class TestSwarmFeasibility:
    def test_all_distinct_speeds_fully_feasible(self):
        swarm = _swarm([RobotAttributes(speed=s) for s in (0.5, 0.8, 1.2)])
        feasibility = swarm_feasibility(swarm)
        assert feasibility.pairwise_gathering_feasible
        assert feasibility.connectivity_gathering_feasible
        assert feasibility.infeasible_pairs() == []

    def test_two_identical_robots_break_pairwise_but_not_connectivity(self):
        swarm = _swarm([RobotAttributes(), RobotAttributes(), RobotAttributes(speed=0.5)])
        feasibility = swarm_feasibility(swarm)
        assert not feasibility.pairwise_gathering_feasible
        assert feasibility.connectivity_gathering_feasible
        assert feasibility.infeasible_pairs() == [(0, 1)]

    def test_fully_identical_swarm_is_disconnected(self):
        swarm = _swarm([RobotAttributes(), RobotAttributes(), RobotAttributes()])
        feasibility = swarm_feasibility(swarm)
        assert not feasibility.connectivity_gathering_feasible

    def test_describe_mentions_every_pair(self):
        swarm = _swarm([RobotAttributes(speed=0.5), RobotAttributes()])
        assert "(R0, R1)" in swarm_feasibility(swarm).describe()


class TestSimulateGathering:
    def test_distinct_speeds_meet_pairwise(self):
        swarm = _swarm([RobotAttributes(speed=s) for s in (0.5, 0.8, 1.3)], spacing=0.8)
        outcome = simulate_gathering(swarm, horizon=6000.0)
        assert outcome.all_pairs_met
        assert outcome.pairwise_gathering_time is not None
        assert outcome.connectivity_gathering_time is not None
        assert outcome.connectivity_gathering_time <= outcome.pairwise_gathering_time

    def test_identical_pair_blocks_pairwise_but_not_connectivity(self):
        swarm = GatheringInstance.create(
            [Vec2(0.0, 0.0), Vec2(1.2, 0.0), Vec2(0.5, 0.9)],
            [RobotAttributes(), RobotAttributes(), RobotAttributes(time_unit=0.5)],
            visibility=0.45,
        )
        outcome = simulate_gathering(swarm, horizon=6000.0)
        identical_pair = outcome.result_for(0, 1)
        assert not identical_pair.feasible
        assert not identical_pair.met
        assert outcome.pairwise_gathering_time is None
        assert outcome.connectivity_gathering_time is not None

    def test_meeting_graph_edges_carry_times(self):
        swarm = _swarm([RobotAttributes(speed=0.6), RobotAttributes(speed=1.4)], spacing=0.7)
        outcome = simulate_gathering(swarm, horizon=4000.0)
        graph = outcome.meeting_graph()
        assert graph.has_edge(0, 1)
        assert graph.edges[0, 1]["time"] == pytest.approx(outcome.result_for(0, 1).time)

    def test_unknown_pair_lookup_rejected(self):
        swarm = _swarm([RobotAttributes(speed=0.6), RobotAttributes(speed=1.4)], spacing=0.7)
        outcome = simulate_gathering(swarm, horizon=2000.0)
        with pytest.raises(InvalidParameterError):
            outcome.result_for(0, 5)

    def test_describe_reports_both_criteria(self):
        swarm = _swarm([RobotAttributes(speed=0.6), RobotAttributes(speed=1.4)], spacing=0.7)
        text = simulate_gathering(swarm, horizon=2000.0).describe()
        assert "pairwise gathering" in text and "connectivity gathering" in text
