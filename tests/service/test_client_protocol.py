"""Regression tests for :class:`ServiceClient` wire-failure handling.

The original client let a mid-stream read timeout propagate as a raw
``TimeoutError`` while leaving the connection open -- a later request on
the same client would then read the *previous* request's late answer and
desync every response after it.  The contract now: any wire breakage
raises :class:`~repro.errors.ServiceProtocolError` and the connection is
closed before the exception reaches the caller.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import ServiceProtocolError
from repro.service import ReproServer, ServiceClient


class _ManualServer:
    """A server stub scripted per connection: answer, stall, or slam."""

    def __init__(self) -> None:
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.host, self.port = self._listener.getsockname()
        self._accepted: list[socket.socket] = []
        self._lock = threading.Lock()

    def accept_and(self, behaviour: str) -> threading.Thread:
        def run() -> None:
            conn, _ = self._listener.accept()
            with self._lock:
                self._accepted.append(conn)
            stream = conn.makefile("rwb")
            line = stream.readline()  # consume the request
            if behaviour == "stall":
                return  # keep the socket open, never answer
            if behaviour == "close":
                conn.close()
                return
            if behaviour == "garbage":
                stream.write(b"this is not json\n")
                stream.flush()
                return
            raise AssertionError(behaviour)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        with self._lock:
            for conn in self._accepted:
                try:
                    conn.close()
                except OSError:
                    pass
        self._listener.close()


@pytest.fixture
def manual():
    server = _ManualServer()
    yield server
    server.close()


class TestReadTimeout:
    def test_timeout_raises_protocol_error_and_closes(self, manual):
        """The satellite regression: a read timeout must not leave a
        desynced connection behind for the next request to trip over."""
        manual.accept_and("stall")
        client = ServiceClient(manual.host, manual.port, timeout=0.2)
        with pytest.raises(ServiceProtocolError, match="timed out"):
            client.request({"op": "health"})
        assert client.closed
        # The broken client refuses reuse instead of desyncing.
        with pytest.raises(ServiceProtocolError, match="closed"):
            client.request({"op": "health"})

    def test_timeout_closes_underlying_socket(self, manual):
        manual.accept_and("stall")
        client = ServiceClient(manual.host, manual.port, timeout=0.2)
        with pytest.raises(ServiceProtocolError):
            client.request({"op": "health"})
        assert client._conn.fileno() == -1  # really closed, not just flagged


class TestOtherBreakage:
    def test_eof_mid_request_raises_protocol_error(self, manual):
        manual.accept_and("close")
        client = ServiceClient(manual.host, manual.port, timeout=5.0)
        with pytest.raises(ServiceProtocolError, match="closed the connection"):
            client.request({"op": "health"})
        assert client.closed

    def test_undecodable_response_raises_protocol_error(self, manual):
        manual.accept_and("garbage")
        client = ServiceClient(manual.host, manual.port, timeout=5.0)
        with pytest.raises(ServiceProtocolError, match="undecodable"):
            client.request({"op": "health"})
        assert client.closed

    def test_healthy_round_trips_unaffected(self):
        with ReproServer(backend="auto") as server:
            server.serve_background()
            with ServiceClient(server.host, server.port) as client:
                assert client.request({"op": "health"})["ok"]
                assert not client.closed
                # Closing is idempotent and flips the flag.
                client.close()
                assert client.closed
