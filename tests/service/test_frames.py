"""Codec, framing and negotiation tests for the binary serving wire."""

from __future__ import annotations

import io
import json
import socket
import struct
import threading
import time

import pytest

from repro.api import SearchProblem, SolveResult, solve
from repro.service import ReproServer, ServiceClient, request_lines
from repro.service.frames import (
    FORMAT_BINARY,
    FORMAT_JSON,
    HELLO_OP,
    MAX_FRAME_BYTES,
    FrameError,
    Raw,
    decode_payload,
    encode_frame,
    encode_payload,
    materialize_raw,
    pack_frame,
    read_frame,
)

SPEC = SearchProblem(distance=1.2, visibility=0.3)


# -- payload codec -------------------------------------------------------------


class TestPayloadCodec:
    SAMPLES = [
        None,
        True,
        False,
        0,
        -1,
        2**62,
        -(2**62),
        0.0,
        -2.5,
        1e300,
        "",
        "ascii",
        "unicode: éα中",
        b"",
        b"\x00\xffraw",
        [],
        [1, "two", 3.0, None, [True]],
        {},
        {"nested": {"list": [1, 2], "flag": False}, "x": 1.5},
    ]

    @pytest.mark.parametrize("value", SAMPLES, ids=repr)
    def test_roundtrip(self, value):
        assert decode_payload(encode_payload(value)) == value

    def test_tuples_encode_as_lists(self):
        assert decode_payload(encode_payload((1, 2, (3,)))) == [1, 2, [3]]

    def test_encoding_is_deterministic_under_key_order(self):
        assert encode_payload({"b": 1, "a": 2}) == encode_payload({"a": 2, "b": 1})

    def test_int64_overflow_is_a_frame_error(self):
        with pytest.raises(FrameError):
            encode_payload(2**63)

    def test_non_string_dict_key_is_a_frame_error(self):
        with pytest.raises(FrameError):
            encode_payload({1: "x"})

    def test_unencodable_type_is_a_frame_error(self):
        with pytest.raises(FrameError):
            encode_payload({"bad": {1, 2}})

    def test_truncated_payload_is_a_frame_error(self):
        payload = encode_payload({"key": [1.0, 2.0, 3.0]})
        with pytest.raises(FrameError):
            decode_payload(payload[:-1])

    def test_trailing_bytes_are_a_frame_error(self):
        with pytest.raises(FrameError):
            decode_payload(encode_payload(1) + b"x")

    def test_unknown_tag_is_a_frame_error(self):
        with pytest.raises(FrameError):
            decode_payload(b"\x00")


class TestRawSpans:
    PAYLOAD = {"ok": True, "result": {"value": [1.5, 2], "solved": True}, "id": 7}

    def test_raw_keys_come_back_as_spans(self):
        decoded = decode_payload(
            encode_payload(self.PAYLOAD), raw_keys=frozenset({"result"})
        )
        assert isinstance(decoded["result"], Raw)
        assert decoded["ok"] is True and decoded["id"] == 7
        assert decoded["result"].decode() == self.PAYLOAD["result"]

    def test_splicing_raw_back_is_byte_identical(self):
        reference = encode_payload(self.PAYLOAD)
        decoded = decode_payload(reference, raw_keys=frozenset({"result"}))
        assert encode_payload(decoded) == reference

    def test_materialize_raw_decodes_top_level_spans(self):
        decoded = decode_payload(
            encode_payload(self.PAYLOAD), raw_keys=frozenset({"result"})
        )
        assert materialize_raw(decoded) == self.PAYLOAD
        # JSON emission is the whole point of materialising.
        json.dumps(materialize_raw(decoded))

    def test_materialize_raw_is_a_no_op_without_spans(self):
        assert materialize_raw(self.PAYLOAD) is self.PAYLOAD
        assert materialize_raw("not a dict") == "not a dict"


# -- framing -------------------------------------------------------------------


class TestFraming:
    def test_frame_roundtrip(self):
        value = {"op": "solve", "spec": SPEC.to_dict()}
        stream = io.BytesIO(encode_frame(value) + encode_frame(None))
        assert decode_payload(read_frame(stream)) == value
        assert decode_payload(read_frame(stream)) is None
        assert read_frame(stream) is None  # clean EOF at a boundary

    def test_bad_magic_is_a_frame_error(self):
        with pytest.raises(FrameError, match="magic"):
            read_frame(io.BytesIO(b"\x00" + encode_frame(1)[1:]))

    def test_bad_version_is_a_frame_error(self):
        frame = bytearray(encode_frame(1))
        frame[1] = 99
        with pytest.raises(FrameError, match="version"):
            read_frame(io.BytesIO(bytes(frame)))

    def test_oversize_length_is_a_frame_error(self):
        header = struct.pack("!BBI", 0xB6, 1, MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError, match="maximum"):
            read_frame(io.BytesIO(header))

    def test_truncated_header_is_a_frame_error(self):
        with pytest.raises(FrameError, match="mid-frame-header"):
            read_frame(io.BytesIO(encode_frame(1)[:3]))

    def test_truncated_payload_is_a_frame_error(self):
        with pytest.raises(FrameError, match="mid-frame"):
            read_frame(io.BytesIO(encode_frame([1, 2, 3])[:-2]))

    def test_pack_frame_refuses_oversize_payloads(self, monkeypatch):
        import repro.service.frames as frames

        monkeypatch.setattr(frames, "MAX_FRAME_BYTES", 16)
        with pytest.raises(FrameError):
            frames.pack_frame(b"x" * 17)


# -- negotiation against a live daemon -----------------------------------------


@pytest.fixture
def server():
    with ReproServer(backend="auto", max_inflight=16) as srv:
        srv.serve_background()
        yield srv


def _upgraded_stream(server):
    """A raw connection already switched to binary frames."""
    conn = socket.create_connection((server.host, server.port), timeout=30)
    stream = conn.makefile("rwb")
    stream.write(b'{"op": "hello", "format": "binary"}\n')
    stream.flush()
    answer = json.loads(stream.readline())
    assert answer["ok"] and answer["format"] == FORMAT_BINARY
    return conn, stream


class TestNegotiation:
    def test_binary_client_negotiates_and_solves_bit_identically(self, server):
        with ServiceClient(server.host, server.port, binary=True) as client:
            assert client.binary and client.format == FORMAT_BINARY
            response = client.request(
                {"op": "solve", "spec": SPEC.to_dict(), "backend": "auto", "id": 3}
            )
        assert response["ok"] and response["id"] == 3
        served = SolveResult.from_dict(response["result"])
        assert served.fingerprint() == solve(SPEC, backend="auto").fingerprint()

    def test_json_and_binary_clients_answer_identically(self, server):
        with ServiceClient(server.host, server.port, binary=True) as binary_client:
            binary_response = binary_client.request(
                {"op": "solve", "spec": SPEC.to_dict()}
            )
        (line,) = request_lines(
            server.host, server.port, [json.dumps({"op": "solve", "spec": SPEC.to_dict()})]
        )
        json_response = json.loads(line)
        assert binary_response["ok"] and json_response["ok"]
        binary_served = SolveResult.from_dict(binary_response["result"])
        json_served = SolveResult.from_dict(json_response["result"])
        assert binary_served.fingerprint() == json_served.fingerprint()

    def test_repeat_binary_solve_hits_the_hot_cache(self, server):
        request = {"op": "solve", "spec": SPEC.to_dict()}
        with ServiceClient(server.host, server.port, binary=True) as client:
            first = client.request(request)
            second = client.request(request)
        assert first["ok"] and second["ok"]
        assert second["served_by"] == "cache"
        assert (
            SolveResult.from_dict(second["result"]).fingerprint()
            == SolveResult.from_dict(first["result"]).fingerprint()
        )

    def test_hello_with_unknown_format_keeps_the_connection_json(self, server):
        lines = [
            json.dumps({"op": HELLO_OP, "format": "msgpack"}),
            json.dumps({"op": "solve", "spec": SPEC.to_dict()}),
        ]
        rejected, solved = [
            json.loads(line) for line in request_lines(server.host, server.port, lines)
        ]
        assert not rejected["ok"] and "msgpack" in rejected["error"]
        assert solved["ok"]

    def test_hello_defaulting_to_json_does_not_upgrade(self, server):
        lines = [
            json.dumps({"op": HELLO_OP}),
            json.dumps({"op": "solve", "spec": SPEC.to_dict()}),
        ]
        hello, solved = [
            json.loads(line) for line in request_lines(server.host, server.port, lines)
        ]
        assert hello["ok"] and hello["format"] == FORMAT_JSON
        assert FORMAT_BINARY in hello["formats"]
        assert solved["ok"]

    def test_client_falls_back_when_the_server_declines(self):
        """A pre-negotiation daemon answers ``hello`` with an unknown-op
        error; the client must notice and keep speaking JSON."""
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def legacy_server():
            conn, _ = listener.accept()
            with conn, conn.makefile("rwb") as stream:
                for raw in stream:
                    request = json.loads(raw)
                    if request.get("op") == HELLO_OP:
                        answer = {"ok": False, "op": HELLO_OP, "error": "unknown op 'hello'"}
                    else:
                        answer = {"ok": True, "op": request.get("op"), "echo": True}
                    stream.write((json.dumps(answer) + "\n").encode())
                    stream.flush()

        thread = threading.Thread(target=legacy_server, daemon=True)
        thread.start()
        try:
            with ServiceClient("127.0.0.1", port, binary=True) as client:
                assert not client.binary and client.format == FORMAT_JSON
                assert client.request({"op": "health"})["echo"]
        finally:
            listener.close()
            thread.join(timeout=5.0)


class TestBinaryFailureModes:
    def test_malformed_payload_answers_cleanly_and_the_connection_survives(self, server):
        conn, stream = _upgraded_stream(server)
        with conn:
            stream.write(pack_frame(b"\x01garbage"))
            stream.flush()
            error = decode_payload(read_frame(stream))
            assert not error["ok"]
            assert error["error_type"] == "FrameError"
            # The stream is still in sync: a well-formed request works.
            stream.write(encode_frame({"op": "health"}))
            stream.flush()
            health = decode_payload(read_frame(stream))
            assert health["ok"] and health["health"]["status"] == "serving"

    def test_corrupted_header_answers_once_then_closes(self, server):
        conn, stream = _upgraded_stream(server)
        with conn:
            stream.write(b"\xde\xad\xbe\xef\x00\x00")
            stream.flush()
            conn.shutdown(socket.SHUT_WR)
            error = decode_payload(read_frame(stream))
            assert not error["ok"]
            assert error["error_type"] == "FrameError"
            assert read_frame(stream) is None  # server closed the connection

    def test_binary_unknown_op_keeps_the_connection(self, server):
        conn, stream = _upgraded_stream(server)
        with conn:
            stream.write(encode_frame({"op": "nonsense", "id": 1}))
            stream.write(encode_frame({"op": "metrics"}))
            stream.flush()
            error = decode_payload(read_frame(stream))
            assert not error["ok"] and error["id"] == 1
            metrics = decode_payload(read_frame(stream))
            assert metrics["ok"]


class TestJsonCompatibility:
    def test_plain_json_clients_see_the_exact_legacy_encoding(self, server):
        """Old clients never sent ``hello``; their lines must come back as
        compact ``sort_keys`` JSON, one response per line, exactly as
        before the binary framing existed."""
        lines = [
            json.dumps({"op": "solve", "spec": SPEC.to_dict(), "id": 1}),
            "not even json",
            json.dumps({"op": "health"}),
        ]
        out = request_lines(server.host, server.port, lines)
        assert len(out) == 3
        for line in out:
            parsed = json.loads(line)
            assert line == json.dumps(parsed, sort_keys=True, separators=(",", ":"))
        assert json.loads(out[0])["ok"] and json.loads(out[0])["id"] == 1
        assert not json.loads(out[1])["ok"]
        assert json.loads(out[2])["ok"]

    def test_json_solve_after_binary_traffic_is_unaffected(self, server):
        """The hot cache and Raw splicing on the binary path must never
        leak into a JSON client's response."""
        request = {"op": "solve", "spec": SPEC.to_dict()}
        with ServiceClient(server.host, server.port, binary=True) as client:
            client.request(request)
            client.request(request)  # populate + hit the hot cache
        (line,) = request_lines(server.host, server.port, [json.dumps(request)])
        response = json.loads(line)
        assert response["ok"]
        assert isinstance(response["result"], dict)
        served = SolveResult.from_dict(response["result"])
        assert served.fingerprint() == solve(SPEC, backend="auto").fingerprint()


class TestTransportMetrics:
    def test_metrics_report_both_formats_and_kernel_cache(self, server):
        request = {"op": "solve", "spec": SPEC.to_dict()}
        with ServiceClient(server.host, server.port, binary=True) as client:
            client.request(request)
        # Requests are counted just after their response is flushed, so
        # wait out the handler thread before reading the ledger.
        deadline = time.monotonic() + 5.0
        while server.transport.snapshot()[FORMAT_BINARY]["requests"] < 1:
            assert time.monotonic() < deadline, "binary request never recorded"
            time.sleep(0.005)
        with ServiceClient(server.host, server.port) as client:
            client.request(request)
            metrics = client.request({"op": "metrics"})["metrics"]
        transport = metrics["transport"]
        assert transport[FORMAT_BINARY]["connections"] >= 1
        assert transport[FORMAT_BINARY]["requests"] >= 1
        assert transport[FORMAT_BINARY]["bytes_in"] > 0
        assert transport[FORMAT_BINARY]["bytes_out"] > 0
        assert transport[FORMAT_JSON]["requests"] >= 2
        assert transport[FORMAT_JSON]["bytes_out"] > 0
        kernel_cache = metrics["kernel_cache"]
        assert "local_compiles" in kernel_cache
        assert "arena_attached" in kernel_cache

    def test_client_byte_counters_track_the_wire(self, server):
        with ServiceClient(server.host, server.port, binary=True) as client:
            client.request({"op": "health"})
            assert client.bytes_sent > 0
            assert client.bytes_received > 0
