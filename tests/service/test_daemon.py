"""Socket-level tests for the ``repro serve`` JSON-Lines daemon."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import SearchProblem, SolveResult, solve
from repro.api.backends import _REGISTRY, AnalyticBackend, register_backend
from repro.service import ReproServer, SolverService, request_lines


def _solve_line(spec, backend=None, request_id=None) -> str:
    request = {"op": "solve", "spec": spec.to_dict()}
    if backend is not None:
        request["backend"] = backend
    if request_id is not None:
        request["id"] = request_id
    return json.dumps(request)


class _SlowAnalytic(AnalyticBackend):
    """Analytic answers gated on an event, to pin requests in flight."""

    name = "slow-daemon"
    release = threading.Event()

    def _solve(self, spec):
        assert _SlowAnalytic.release.wait(timeout=15.0)
        return super()._solve(spec)


@pytest.fixture
def server():
    with ReproServer(backend="auto", max_inflight=16) as srv:
        srv.serve_background()
        yield srv


class TestConcurrentSolves:
    def test_32_concurrent_requests_with_duplicates_match_direct_solve(self, server):
        """Satellite: >=32 concurrent JSONL requests, duplicate-heavy,
        responses bit-identical to direct ``solve()`` plus coalescing > 0."""
        _SlowAnalytic.release.clear()
        register_backend(_SlowAnalytic.name, _SlowAnalytic)
        try:
            unique = [
                SearchProblem(distance=1.0 + 0.07 * i, visibility=0.3) for i in range(8)
            ]
            # 24 auto requests over 8 unique specs (3x duplicates) plus 8
            # identical requests against the gated backend, so at least
            # seven of those must coalesce onto the first one's solve.
            pinned = unique[0]
            requests = [
                (unique[i % 8], "auto", i) for i in range(24)
            ] + [(pinned, _SlowAnalytic.name, 24 + i) for i in range(8)]

            responses: dict[int, dict] = {}
            errors: list = []
            barrier = threading.Barrier(len(requests))

            def client(spec, backend, request_id):
                try:
                    barrier.wait(timeout=15.0)
                    (line,) = request_lines(
                        server.host,
                        server.port,
                        [_solve_line(spec, backend=backend, request_id=request_id)],
                    )
                    responses[request_id] = json.loads(line)
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [threading.Thread(target=client, args=request) for request in requests]
            for thread in threads:
                thread.start()
            # Wait until the pinned solve has coalesced followers, then open the gate.
            deadline = time.monotonic() + 15.0
            while server.service.waiting_for(pinned, backend=_SlowAnalytic.name) < 7:
                assert time.monotonic() < deadline, "pinned requests never coalesced"
                time.sleep(0.005)
            _SlowAnalytic.release.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors
            assert len(responses) == 32
            assert all(response["ok"] for response in responses.values())

            # Bit-identical to the direct facade, for every request.
            for spec, backend, request_id in requests:
                served = SolveResult.from_dict(responses[request_id]["result"])
                assert served.fingerprint() == solve(spec, backend=backend).fingerprint()

            metrics = server.service.metrics_snapshot()
            assert metrics["totals"]["coalesced"] > 0
            assert metrics["backends"][_SlowAnalytic.name]["coalesced"] >= 7
            assert metrics["backends"][_SlowAnalytic.name]["solves"] == 1
            assert metrics["totals"]["requests"] == 32
            assert metrics["totals"]["errors"] == 0
        finally:
            _SlowAnalytic.release.set()
            _REGISTRY.pop(_SlowAnalytic.name, None)


class TestWireProtocol:
    def test_pipelined_requests_answered_in_order(self, server):
        specs = [SearchProblem(distance=1.0 + 0.1 * i, visibility=0.3) for i in range(3)]
        lines = [_solve_line(spec, request_id=i) for i, spec in enumerate(specs)]
        out = [json.loads(line) for line in request_lines(server.host, server.port, lines)]
        assert [response["id"] for response in out] == [0, 1, 2]
        assert all(response["served_by"] in {"solve", "cache"} for response in out)
        assert all(response["latency_ms"] >= 0.0 for response in out)

    def test_bare_spec_shorthand(self, server):
        spec = SearchProblem(distance=1.2, visibility=0.3)
        (line,) = request_lines(server.host, server.port, [json.dumps(spec.to_dict())])
        response = json.loads(line)
        assert response["ok"] and response["op"] == "solve"

    def test_bare_spec_shorthand_with_id(self, server):
        """The envelope ``id`` is lifted out before spec validation."""
        spec = SearchProblem(distance=1.2, visibility=0.3)
        (line,) = request_lines(
            server.host, server.port, [json.dumps({**spec.to_dict(), "id": 7})]
        )
        response = json.loads(line)
        assert response["ok"] and response["op"] == "solve"
        assert response["id"] == 7

    def test_health_and_metrics_verbs(self, server):
        health_line, metrics_line = request_lines(
            server.host,
            server.port,
            [json.dumps({"op": "health"}), json.dumps({"op": "metrics"})],
        )
        health = json.loads(health_line)
        assert health["ok"] and health["health"]["status"] == "serving"
        metrics = json.loads(metrics_line)
        assert metrics["ok"] and "totals" in metrics["metrics"]

    def test_malformed_lines_do_not_kill_the_connection(self, server):
        spec = SearchProblem(distance=1.2, visibility=0.3)
        lines = [
            "this is not json",
            json.dumps(["not", "an", "object"]),
            json.dumps({"op": "nonsense"}),
            json.dumps({"op": "solve", "spec": {"kind": "search"}}),  # invalid spec
            _solve_line(spec),
        ]
        out = [json.loads(line) for line in request_lines(server.host, server.port, lines)]
        assert [response["ok"] for response in out] == [False, False, False, False, True]
        assert all("error" in response for response in out[:4])

    def test_solve_errors_report_type_and_message(self, server):
        from repro.api import RendezvousProblem

        infeasible = RendezvousProblem(distance=1.4, visibility=0.3)
        (line,) = request_lines(
            server.host, server.port, [_solve_line(infeasible, backend="simulation")]
        )
        response = json.loads(line)
        assert not response["ok"]
        assert response["error_type"] == "InfeasibleConfigurationError"


class TestShutdownRace:
    def test_inflight_connection_finishes_its_line_then_gets_clean_refusals(self):
        """Regression: a connection mid-solve when another connection issues
        ``shutdown`` must still receive its full response, and lines it sends
        afterwards must be answered ``ok:false`` shutting-down instead of the
        socket being torn down mid-response."""
        import socket

        _SlowAnalytic.release.clear()
        register_backend(_SlowAnalytic.name, _SlowAnalytic)
        server = ReproServer(backend="auto")
        server.serve_background()
        try:
            spec = SearchProblem(distance=1.3, visibility=0.3)
            with socket.create_connection((server.host, server.port), timeout=30) as conn:
                stream = conn.makefile("rwb")
                # Line 1 pins this connection mid-solve on the gated backend.
                stream.write(
                    (_solve_line(spec, backend=_SlowAnalytic.name, request_id=1) + "\n").encode()
                )
                stream.flush()
                deadline = time.monotonic() + 10.0
                while server.service.inflight < 1:
                    assert time.monotonic() < deadline, "solve never started"
                    time.sleep(0.005)
                # Another connection stops the daemon while line 1 is in flight.
                (shutdown_line,) = request_lines(
                    server.host, server.port, [json.dumps({"op": "shutdown"})]
                )
                assert json.loads(shutdown_line)["stopping"]
                deadline = time.monotonic() + 10.0
                while not server.stopping:
                    assert time.monotonic() < deadline, "stop never initiated"
                    time.sleep(0.005)
                # Line 2 is already queued when the solve completes.
                stream.write((_solve_line(spec, request_id=2) + "\n").encode())
                stream.flush()
                _SlowAnalytic.release.set()
                first = json.loads(stream.readline())
                second = json.loads(stream.readline())
            assert first["ok"] and first["id"] == 1
            served = SolveResult.from_dict(first["result"])
            assert (
                served.fingerprint()
                == solve(spec, backend=_SlowAnalytic.name).fingerprint()
            )
            assert not second["ok"] and second["id"] == 2
            assert second["error_type"] == "ServiceUnavailableError"
            assert "shutting down" in second["error"]
        finally:
            _SlowAnalytic.release.set()
            _REGISTRY.pop(_SlowAnalytic.name, None)
            server.stop()


class TestLifecycle:
    def test_shutdown_verb_stops_the_server(self):
        server = ReproServer(backend="analytic")
        server.serve_background()
        (line,) = request_lines(server.host, server.port, [json.dumps({"op": "shutdown"})])
        assert json.loads(line)["stopping"]
        deadline = time.monotonic() + 10.0
        while not (server._stopped.is_set() and server.service.draining):
            assert time.monotonic() < deadline
            time.sleep(0.01)

    def test_ephemeral_port_is_reported(self):
        with ReproServer(backend="analytic", port=0) as srv:
            assert srv.port > 0
            assert srv.address.endswith(str(srv.port))

    def test_server_builds_service_from_kwargs(self):
        with ReproServer(backend="analytic", max_inflight=3, queue_limit=5) as srv:
            assert srv.service.max_inflight == 3
            assert srv.service.queue_limit == 5

    def test_explicit_service_is_used(self):
        service = SolverService(backend="analytic")
        with ReproServer(service=service) as srv:
            assert srv.service is service
