"""ServiceMetrics edge cases: empty latency windows, rejection attribution."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServiceUnavailableError
from repro.service import ServiceMetrics, SolverService


class TestEmptyWindowSnapshot:
    def test_rejection_only_backend_reports_null_percentiles(self):
        """Regression: a backend with only rejections (zero latencies) must
        report p50/p99 as null, not crash and not report a measured 0.0."""
        metrics = ServiceMetrics()
        metrics.record_rejected("analytic")
        snapshot = metrics.snapshot()
        backend = snapshot["backends"]["analytic"]
        assert backend["requests"] == 0
        assert backend["rejected"] == 1
        latency = backend["latency"]
        assert latency["window"] == 0
        assert latency["mean_ms"] is None
        assert latency["p50_ms"] is None
        assert latency["p99_ms"] is None
        assert latency["max_ms"] is None
        assert snapshot["totals"]["rejected"] == 1

    def test_unattributed_rejection_keeps_the_global_counter(self):
        metrics = ServiceMetrics()
        metrics.record_rejected()
        snapshot = metrics.snapshot()
        assert snapshot["totals"]["rejected"] == 1
        assert snapshot["backends"] == {}

    def test_measured_backend_reports_real_percentiles(self):
        metrics = ServiceMetrics()
        metrics.record("analytic", "solve", 0.010)
        metrics.record("analytic", "cache", 0.002)
        metrics.record_rejected("analytic")
        backend = metrics.snapshot()["backends"]["analytic"]
        assert backend["requests"] == 2 and backend["rejected"] == 1
        assert backend["latency"]["p50_ms"] == pytest.approx(2.0)
        assert backend["latency"]["p99_ms"] == pytest.approx(10.0)
        assert backend["latency"]["max_ms"] == pytest.approx(10.0)


class TestServiceRejectionAttribution:
    def test_draining_service_attributes_the_rejection_to_the_backend(self):
        from repro.api import SearchProblem

        service = SolverService(backend="analytic")
        service.drain()
        with pytest.raises(ServiceUnavailableError):
            service.request(SearchProblem(distance=1.2, visibility=0.3))
        snapshot = service.metrics_snapshot()
        backend = snapshot["backends"]["analytic"]
        assert backend["rejected"] == 1 and backend["requests"] == 0
        assert backend["latency"]["p50_ms"] is None  # nothing was measured
        assert snapshot["totals"]["rejected"] == 1
