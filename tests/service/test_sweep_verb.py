"""Worker-side ``sweep`` verb on a single asyncio daemon.

The cluster router drives exactly this wire contract against each
worker, so the single-daemon behaviour -- stream mode, fold mode, the
threaded-transport refusal and the request validation -- is pinned here
without booting a fleet.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.streaming import fold_envelopes
from repro.api import SearchProblem
from repro.api.batch import BatchRunner
from repro.errors import ReproError
from repro.experiments.manifest import fingerprint_digest, fold_digest
from repro.service import AsyncReproServer, ReproServer, ServiceClient, request_lines

BACKEND = "analytic"


def _specs(count: int) -> list[SearchProblem]:
    return [SearchProblem(distance=1.0 + 0.07 * i, visibility=0.3) for i in range(count)]


@pytest.fixture
def server():
    with AsyncReproServer(backend=BACKEND, max_inflight=16) as srv:
        srv.serve_background()
        yield srv
    assert srv.leaked_tasks == []


class TestSweepStream:
    def test_stream_mode_matches_batch_runner(self, server):
        specs = _specs(12)
        expected_results, _ = BatchRunner(backend=BACKEND).run(specs)
        with ServiceClient(server.host, server.port) as client:
            stream = client.sweep(specs, backend=BACKEND)
            records = list(stream)
        assert stream.ack["op"] == "sweep"
        assert stream.ack["mode"] == "stream"
        assert stream.ack["fanout"] == 1  # a lone daemon is its own partition
        assert stream.ack["unique"] == len(specs)
        assert [record["seq"] for record in records] == list(range(len(specs)))
        assert all(record["op"] == "completion" and record["ok"] for record in records)
        summary = stream.summary
        assert summary["mode"] == "stream"
        assert summary["errors"] == 0
        assert summary["fingerprint_digest"] == fingerprint_digest(expected_results)
        # The summary reports the execution tiers the worker actually used.
        assert sum(summary["tiers"].values()) == len(specs)

    def test_duplicate_specs_dedupe_like_the_planner(self, server):
        specs = _specs(5)
        with ServiceClient(server.host, server.port) as client:
            stream = client.sweep(specs + specs, backend=BACKEND)
            records = list(stream)
        assert stream.ack["total"] == 10
        assert stream.ack["unique"] == 5
        assert len(records) == 5


class TestSweepFold:
    def test_fold_mode_ships_tables_not_envelopes(self, server):
        specs = _specs(10)
        expected_results, _ = BatchRunner(backend=BACKEND).run(specs)
        with ServiceClient(server.host, server.port) as client:
            stream = client.sweep(specs, backend=BACKEND, mode="fold")
            records = list(stream)
        partials = [record for record in records if record["op"] == "partial"]
        completions = [record for record in records if record["op"] == "completion"]
        assert len(partials) == 1 and not completions
        partial = partials[0]
        local = fold_envelopes(result.to_dict() for result in expected_results)
        assert partial["fold"] == local.to_wire()
        assert partial["records"] == len(specs)
        assert partial["errors"] == 0
        assert len(partial["blob_hashes"]) == len(specs)
        summary = stream.summary
        assert summary["mode"] == "fold"
        assert summary["fold_digest"] == fold_digest(expected_results)
        assert "fingerprint_digest" not in summary


class TestSweepRefusals:
    def test_threaded_daemon_refuses_with_a_pointer(self):
        spec = _specs(1)[0]
        with ReproServer(backend=BACKEND) as threaded:
            threaded.serve_background()
            (line,) = request_lines(
                threaded.host,
                threaded.port,
                [json.dumps({"op": "sweep", "specs": [spec.to_dict()]})],
            )
        response = json.loads(line)
        assert response["ok"] is False
        assert "--async" in response["error"]

    def test_invalid_mode_is_refused_and_connection_survives(self, server):
        specs = _specs(2)
        with ServiceClient(server.host, server.port) as client:
            with pytest.raises(ReproError, match="mode"):
                client.sweep(specs, backend=BACKEND, mode="telepathy")
            # The refusal is a single ack; the connection stays usable.
            stream = client.sweep(specs, backend=BACKEND)
            assert len(list(stream)) == 2

    def test_empty_suite_is_refused(self, server):
        with ServiceClient(server.host, server.port) as client:
            with pytest.raises(ReproError, match="specs"):
                client.sweep([], backend=BACKEND)
