"""SolverService: coalescing, thread-safety, admission control, drain."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import BatchRunner, SearchProblem, solve
from repro.api.backends import _REGISTRY, SolverBackend, register_backend
from repro.errors import InvalidParameterError, ServiceUnavailableError, SimulationError
from repro.service import SolverService


class _CountingBackend(SolverBackend):
    """Counts solves; optionally blocks until the test releases it."""

    name = "counting-svc"
    fidelity = "bound"

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()
        self.release = threading.Event()
        self.release.set()  # non-blocking unless the test clears it
        self.fail = False

    def _solve(self, spec):
        with self._lock:
            self.calls += 1
        assert self.release.wait(timeout=10.0), "test never released the backend"
        if self.fail:
            raise SimulationError("deliberate service failure")
        return {
            "feasible": True,
            "solved": None,
            "measured_time": None,
            "bound": float(self.calls),
            "algorithm": None,
            "details": {},
        }


@pytest.fixture
def counting_backend():
    backend = _CountingBackend()
    register_backend(_CountingBackend.name, lambda: backend)
    yield backend
    _REGISTRY.pop(_CountingBackend.name, None)


def _spec(i: int = 0) -> SearchProblem:
    return SearchProblem(distance=1.0 + 0.05 * i, visibility=0.3)


def _hammer(service, thread_count, make_request):
    outcomes: list = [None] * thread_count
    errors: list = [None] * thread_count
    barrier = threading.Barrier(thread_count)

    def worker(slot: int) -> None:
        barrier.wait()
        try:
            outcomes[slot] = make_request(slot)
        except BaseException as error:  # noqa: BLE001 - surfaced by the test
            errors[slot] = error

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(thread_count)]
    for thread in threads:
        thread.start()
    return threads, outcomes, errors


class TestCoalescing:
    def test_concurrent_identical_requests_solve_exactly_once(self, counting_backend):
        """Satellite: >=8 threads, one shared runner, exactly-once via coalescing."""
        counting_backend.release.clear()
        service = SolverService(backend=_CountingBackend.name)
        spec = _spec()
        threads, outcomes, errors = _hammer(
            service, 8, lambda slot: service.request(spec)
        )
        # Every follower is parked on the in-flight entry before the
        # leader is allowed to finish -- fully deterministic coalescing.
        deadline = time.monotonic() + 10.0
        while service.waiting_for(spec) < 7:
            assert time.monotonic() < deadline, "followers never coalesced"
            time.sleep(0.002)
        counting_backend.release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert errors == [None] * 8
        assert counting_backend.calls == 1  # exactly once
        sources = sorted(served.source for served in outcomes)
        assert sources == ["coalesced"] * 7 + ["solve"]
        assert service.metrics.coalesced_total(_CountingBackend.name) == 7
        fingerprints = {served.result.fingerprint().__str__() for served in outcomes}
        assert len(fingerprints) == 1  # everyone shares the leader's envelope

    def test_mixed_hammer_solves_each_unique_spec_once(self, counting_backend, tmp_path):
        runner = BatchRunner(
            backend=_CountingBackend.name, store=tmp_path, flush_store=False
        )
        service = SolverService(runner=runner, backend=_CountingBackend.name)
        unique = [_spec(i) for i in range(4)]
        per_thread = 16

        def requests(slot: int):
            return [
                service.request(unique[(slot + i) % len(unique)]).source
                for i in range(per_thread)
            ]

        threads, outcomes, errors = _hammer(service, 8, requests)
        for thread in threads:
            thread.join(timeout=30.0)
        assert errors == [None] * 8
        assert counting_backend.calls == len(unique)  # exactly-once per key
        snapshot = service.metrics_snapshot()["backends"][_CountingBackend.name]
        assert snapshot["requests"] == 8 * per_thread
        assert snapshot["solves"] == len(unique)
        assert (
            snapshot["solves"]
            + snapshot["cache_hits"]
            + snapshot["store_hits"]
            + snapshot["coalesced"]
            == snapshot["requests"]
        )
        # The store tier got each envelope exactly once, after drain.
        service.drain()
        assert len(runner.store) == len(unique)

    def test_followers_share_the_leaders_error(self, counting_backend):
        counting_backend.release.clear()
        counting_backend.fail = True
        service = SolverService(backend=_CountingBackend.name)
        spec = _spec()
        threads, outcomes, errors = _hammer(service, 4, lambda slot: service.request(spec))
        deadline = time.monotonic() + 10.0
        while service.waiting_for(spec) < 3:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        counting_backend.release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert all(isinstance(error, SimulationError) for error in errors)
        assert counting_backend.calls == 1
        snapshot = service.metrics_snapshot()["backends"][_CountingBackend.name]
        assert snapshot["errors"] == 4


class TestAdmissionControl:
    def test_capacity_overflow_is_refused_immediately(self, counting_backend):
        counting_backend.release.clear()
        service = SolverService(
            backend=_CountingBackend.name, max_inflight=1, queue_limit=0
        )
        leader = threading.Thread(target=service.request, args=(_spec(0),))
        leader.start()
        deadline = time.monotonic() + 10.0
        while service.inflight < 1:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        with pytest.raises(ServiceUnavailableError):
            service.request(_spec(1))  # distinct spec: needs its own slot
        counting_backend.release.set()
        leader.join(timeout=10.0)
        assert service.metrics_snapshot()["totals"]["rejected"] == 1

    def test_coalesced_requests_bypass_admission(self, counting_backend):
        counting_backend.release.clear()
        service = SolverService(
            backend=_CountingBackend.name, max_inflight=1, queue_limit=0
        )
        spec = _spec()
        threads, outcomes, errors = _hammer(service, 3, lambda slot: service.request(spec))
        deadline = time.monotonic() + 10.0
        while service.waiting_for(spec) < 2:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        counting_backend.release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert errors == [None] * 3  # duplicates never hit the capacity wall

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            SolverService(max_inflight=0)
        with pytest.raises(InvalidParameterError):
            SolverService(queue_limit=-1)
        with pytest.raises(InvalidParameterError):
            SolverService(admission_timeout=0.0)


class TestDrain:
    def test_drain_refuses_new_requests(self):
        service = SolverService(backend="analytic")
        service.drain()
        with pytest.raises(ServiceUnavailableError):
            service.request(_spec())
        assert service.health()["status"] == "draining"

    def test_drain_waits_for_inflight_and_flushes(self, counting_backend, tmp_path):
        counting_backend.release.clear()
        service = SolverService(backend=_CountingBackend.name, store=tmp_path)
        worker = threading.Thread(target=service.request, args=(_spec(),))
        worker.start()
        deadline = time.monotonic() + 10.0
        while service.inflight < 1:
            assert time.monotonic() < deadline
            time.sleep(0.002)
        drained: list = []
        drainer = threading.Thread(target=lambda: drained.append(service.drain(timeout=10.0)))
        drainer.start()
        time.sleep(0.05)
        assert not drained  # still waiting on the in-flight solve
        counting_backend.release.set()
        worker.join(timeout=10.0)
        drainer.join(timeout=10.0)
        assert drained == [True]
        # The service runner buffers store writes; drain published them.
        assert len(list(tmp_path.glob("segment-*.jsonl"))) == 1

    def test_context_manager_drains(self):
        with SolverService(backend="analytic") as service:
            service.solve(_spec())
        assert service.draining


class TestServingMeta:
    def test_sources_cache_store_solve(self, tmp_path):
        spec = _spec()
        with SolverService(backend="analytic", store=tmp_path) as first:
            assert first.request(spec).source == "solve"
            assert first.request(spec).source == "cache"
        with SolverService(backend="analytic", store=tmp_path) as second:
            assert second.request(spec).source == "store"

    def test_served_results_match_direct_solve(self):
        service = SolverService(backend="auto")
        spec = _spec()
        assert service.solve(spec).fingerprint() == solve(spec, backend="auto").fingerprint()

    def test_per_request_backend_override(self):
        service = SolverService(backend="analytic")
        measured = service.request(_spec(), backend="simulation")
        assert measured.result.backend == "simulation"
        assert measured.result.measured_time is not None

    def test_health_and_metrics_shapes(self):
        service = SolverService(backend="analytic")
        service.solve(_spec())
        health = service.health()
        assert health["status"] == "serving" and health["inflight"] == 0
        snapshot = service.metrics_snapshot()
        assert snapshot["totals"]["requests"] == 1
        backend = snapshot["backends"]["analytic"]
        assert backend["latency"]["window"] == 1
        assert backend["latency"]["p50_ms"] >= 0.0
        assert backend["latency"]["p99_ms"] >= backend["latency"]["p50_ms"] or True
