"""Tests for the asyncio serving transport (``repro serve --async``).

Covers the golden-transcript JSON compatibility against the threaded
daemon, the negotiated binary frames, the streamed ``subscribe`` verb
(ordering, digest parity, error handling), the backpressure contract of
slow subscribers, the abrupt-disconnect drain invariant, and the
zero-leaked-tasks shutdown audit.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.api import SearchProblem, SolveResult
from repro.api.batch import BatchRunner
from repro.errors import ReproError
from repro.experiments.manifest import fingerprint_digest
from repro.service import (
    AsyncReproServer,
    ReproServer,
    ServiceClient,
    request_lines,
)
from repro.service.aio import _SubscriptionBridge


def _specs(count: int, offset: float = 0.0) -> list[SearchProblem]:
    return [
        SearchProblem(distance=1.0 + 0.07 * i + offset, visibility=0.3)
        for i in range(count)
    ]


@pytest.fixture
def server():
    with AsyncReproServer(backend="auto", max_inflight=16) as srv:
        srv.serve_background()
        yield srv


# -- JSON-Lines compatibility --------------------------------------------------


#: Requests whose responses are fully deterministic: the async server
#: must answer them byte-for-byte like the threaded daemon.
_DETERMINISTIC_LINES = [
    "this is not json",
    json.dumps([1, 2, 3]),
    json.dumps({"op": "frobnicate", "id": 9}),
    json.dumps({"op": "solve", "id": 3}),  # missing spec
    json.dumps({"op": "solve", "spec": {"kind": "bogus"}, "id": 4}),
    json.dumps({"op": "solve", "spec": {"kind": "search"}, "backend": 7}),
    json.dumps({"op": "hello"}),
    json.dumps({"op": "hello", "format": "carrier-pigeon"}),
    json.dumps({"op": "hello", "format": "json", "id": "h1"}),
]

#: Volatile response fields masked before comparing solve transcripts.
def _masked(line: str) -> dict:
    response = json.loads(line)
    response.pop("latency_ms", None)
    result = response.get("result")
    if isinstance(result, dict):
        provenance = result.get("provenance")
        if isinstance(provenance, dict):
            provenance.pop("wall_time", None)
            provenance.pop("from_store", None)
    return response


class TestGoldenTranscript:
    def test_deterministic_verbs_answer_byte_for_byte(self):
        """Every deterministic verb answers with the exact same bytes on
        both transports -- the compatibility layer is not approximate."""
        with ReproServer(backend="auto") as threaded, AsyncReproServer(
            backend="auto"
        ) as aio:
            threaded.serve_background()
            aio.serve_background()
            golden = request_lines(threaded.host, threaded.port, _DETERMINISTIC_LINES)
            actual = request_lines(aio.host, aio.port, _DETERMINISTIC_LINES)
        assert actual == golden

    def test_solve_health_transcripts_match_modulo_timing(self):
        spec = SearchProblem(distance=1.4, visibility=0.3)
        lines = [
            json.dumps({"op": "solve", "spec": spec.to_dict(), "id": 1}),
            json.dumps({**spec.to_dict(), "id": 2}),  # bare-spec shorthand
            json.dumps({"op": "health"}),
        ]
        with ReproServer(backend="auto") as threaded, AsyncReproServer(
            backend="auto"
        ) as aio:
            threaded.serve_background()
            aio.serve_background()
            golden = request_lines(threaded.host, threaded.port, lines)
            actual = request_lines(aio.host, aio.port, lines)
        for golden_line, actual_line in zip(golden[:2], actual[:2]):
            assert _masked(actual_line) == _masked(golden_line)
        golden_health = json.loads(golden[2])["health"]
        actual_health = json.loads(actual[2])["health"]
        assert set(actual_health) == set(golden_health)
        assert actual_health["status"] == golden_health["status"]

    def test_metrics_document_carries_transport_and_subscriptions(self, server):
        with ServiceClient(server.host, server.port) as client:
            metrics = client.request({"op": "metrics"})["metrics"]
        assert set(metrics["transport"]) == {"json", "binary"}
        assert metrics["subscriptions"]["active"] == 0
        assert "kernel_cache" in metrics

    def test_shutdown_verb_stops_and_drains(self):
        srv = AsyncReproServer(backend="auto")
        srv.serve_background()
        (line,) = request_lines(srv.host, srv.port, [json.dumps({"op": "shutdown"})])
        assert json.loads(line) == {"ok": True, "op": "shutdown", "stopping": True}
        srv.stop()  # joins the verb-initiated stop
        assert srv.leaked_tasks == []
        with pytest.raises(OSError):
            socket.create_connection((srv.host, srv.port), timeout=1.0)

    def test_hot_cache_replays_repeats_as_cache(self, server):
        spec = SearchProblem(distance=1.9, visibility=0.3)
        line = json.dumps({"op": "solve", "spec": spec.to_dict()})
        first, second = (
            json.loads(response)
            for response in request_lines(server.host, server.port, [line, line])
        )
        assert first["ok"] and second["ok"]
        assert second["served_by"] == "cache"
        assert (
            SolveResult.from_dict(second["result"]).fingerprint()
            == SolveResult.from_dict(first["result"]).fingerprint()
        )


class TestBinaryFrames:
    def test_negotiated_binary_solves_match_json(self, server):
        spec = SearchProblem(distance=2.2, visibility=0.3)
        with ServiceClient(server.host, server.port, binary=True) as client:
            assert client.binary
            cold = client.request({"op": "solve", "spec": spec.to_dict()})
            warm = client.request({"op": "solve", "spec": spec.to_dict()})
        assert cold["ok"] and warm["ok"]
        assert warm["served_by"] == "cache"
        assert (
            SolveResult.from_dict(warm["result"]).fingerprint()
            == SolveResult.from_dict(cold["result"]).fingerprint()
        )

    def test_corrupt_header_answers_error_and_closes(self, server):
        with socket.create_connection((server.host, server.port), timeout=5.0) as conn:
            stream = conn.makefile("rwb")
            stream.write(b'{"op": "hello", "format": "binary"}\n')
            stream.flush()
            assert json.loads(stream.readline())["ok"]
            stream.write(b"\xde\xad\xbe\xef\x00\x00")
            stream.flush()
            from repro.service.frames import read_frame, decode_payload

            payload = read_frame(stream)
            response = decode_payload(payload)
            assert not response["ok"]
            assert "magic" in response["error"]
            assert stream.read(1) == b""  # server closed: unsyncable


# -- the subscribe verb --------------------------------------------------------


class TestSubscribe:
    def test_streams_every_unique_spec_with_digest_parity(self, server):
        specs = _specs(12)
        suite = specs + specs[:4]  # duplicates collapse in the plan
        stream_client = ServiceClient(server.host, server.port)
        with stream_client:
            stream = stream_client.subscribe(suite, request_id="sweep-1")
            assert stream.ack["total"] == 16
            assert stream.ack["unique"] == 12
            records = list(stream)
        assert [record["seq"] for record in records] == list(range(12))
        assert all(record["op"] == "completion" for record in records)
        assert all(record["id"] == "sweep-1" for record in records)
        assert {record["key"]["spec_hash"] for record in records} == {
            spec.canonical_hash() for spec in specs
        }
        assert all(
            record["served_by"] in {"cache", "store", "batch", "pool", "serial"}
            for record in records
        )
        summary = stream.summary
        assert summary["records"] == 12
        assert summary["errors"] == 0
        assert summary["id"] == "sweep-1"
        assert sum(summary["sources"].values()) == 12

        results, _ = BatchRunner(backend="auto").run(specs)
        assert summary["fingerprint_digest"] == fingerprint_digest(results)

    def test_binary_subscribe_matches_json_digest(self, server):
        specs = _specs(6, offset=3.0)
        with ServiceClient(server.host, server.port) as json_client:
            json_stream = json_client.subscribe(specs)
            list(json_stream)
        with ServiceClient(server.host, server.port, binary=True) as bin_client:
            assert bin_client.binary
            bin_stream = bin_client.subscribe(specs)
            records = list(bin_stream)
        assert len(records) == 6
        assert (
            bin_stream.summary["fingerprint_digest"]
            == json_stream.summary["fingerprint_digest"]
        )
        # Second pass is all warm: served from the runner LRU.
        assert bin_stream.summary["sources"] == {"cache": 6}

    def test_invalid_suite_refused_with_single_response(self, server):
        with ServiceClient(server.host, server.port) as client:
            with pytest.raises(ReproError, match="specs"):
                client.subscribe([])
            with pytest.raises(ReproError, match=r"specs\[1\]"):
                client.subscribe(
                    [SearchProblem(distance=1.0, visibility=0.3), {"kind": "bogus"}]
                )
            # No stream started either time: the connection is still in
            # lockstep and answers ordinary verbs.
            assert client.request({"op": "health"})["ok"]

    def test_threaded_daemon_refuses_subscribe_pointing_at_async(self):
        with ReproServer(backend="auto") as threaded:
            threaded.serve_background()
            with ServiceClient(threaded.host, threaded.port) as client:
                with pytest.raises(ReproError, match="--async"):
                    client.subscribe(_specs(2))

    def test_per_spec_failures_stream_as_failed_records(self, server):
        from repro.api.backends import _REGISTRY, AnalyticBackend, register_backend
        from repro.errors import SimulationError

        class _Tripwire(AnalyticBackend):
            name = "tripwire-aio"

            def _solve(self, spec):
                if spec.distance > 2.0:
                    raise SimulationError(f"tripwire at distance {spec.distance}")
                return super()._solve(spec)

        register_backend(_Tripwire.name, _Tripwire)
        try:
            good = SearchProblem(distance=1.1, visibility=0.3)
            bad = SearchProblem(distance=2.5, visibility=0.3)
            with ServiceClient(server.host, server.port) as client:
                stream = client.subscribe(
                    [good, bad], backend=_Tripwire.name
                )
                records = list(stream)
        finally:
            _REGISTRY.pop(_Tripwire.name, None)
        assert len(records) == 2
        failed = [record for record in records if not record["ok"]]
        assert len(failed) == 1
        assert failed[0]["error_type"] == "SimulationError"
        assert failed[0]["key"]["spec_hash"] == bad.canonical_hash()
        assert "result" not in failed[0]
        assert stream.summary["errors"] == 1
        assert stream.summary["records"] == 2


# -- backpressure and disconnects ----------------------------------------------


class TestBackpressure:
    def test_bridge_bounds_buffered_records_structurally(self):
        """The credit semaphore caps loop-side buffering at maxsize: a
        producer running arbitrarily far ahead of a stalled consumer
        blocks instead of growing server memory."""
        import asyncio

        async def scenario():
            loop = asyncio.get_running_loop()
            bridge = _SubscriptionBridge(loop, maxsize=4)
            produced = []

            def producer():
                for i in range(64):
                    produced.append(bridge.put({"seq": i}))
                bridge.finish()

            thread = threading.Thread(target=producer, daemon=True)
            thread.start()
            # Stall: give the producer ample time to run ahead.
            await asyncio.sleep(0.3)
            assert bridge.depth <= 4
            received = []
            while True:
                record = await bridge.get()
                if not isinstance(record, dict):
                    break
                received.append(record["seq"])
                assert bridge.depth <= 5  # maxsize + in-flight sentinel
            thread.join(timeout=5.0)
            assert received == list(range(64))
            assert all(produced)

        asyncio.run(scenario())

    def test_cancelled_bridge_discards_but_never_blocks_producer(self):
        import asyncio

        async def scenario():
            loop = asyncio.get_running_loop()
            bridge = _SubscriptionBridge(loop, maxsize=2)
            done = threading.Event()

            def producer():
                for i in range(50):
                    bridge.put({"seq": i})
                bridge.finish()
                done.set()

            thread = threading.Thread(target=producer, daemon=True)
            thread.start()
            await asyncio.sleep(0.05)
            bridge.cancel()  # consumer gone mid-stream
            # The producer must finish all 50 puts without a consumer.
            assert await loop.run_in_executor(None, done.wait, 5.0)
            thread.join(timeout=5.0)

        asyncio.run(scenario())

    def test_slow_subscriber_throttles_only_itself(self):
        """A stalled subscriber buffers at most queue_max records server
        side while a concurrent subscriber streams to completion, and the
        stalled one still receives every record once it resumes."""
        with AsyncReproServer(
            backend="auto",
            max_inflight=16,
            subscription_queue_max=4,
            connection_sndbuf=8192,
        ) as srv:
            srv.serve_background()
            specs = _specs(24, offset=7.0)

            slow = ServiceClient(srv.host, srv.port, timeout=60.0)
            slow._conn.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            slow_stream = slow.subscribe(specs, request_id="slow")

            # While the slow client reads nothing, a second subscriber
            # must stream the same suite to completion.
            with ServiceClient(srv.host, srv.port) as fast:
                fast_stream = fast.subscribe(specs, request_id="fast")
                fast_records = list(fast_stream)
            assert len(fast_records) == 24
            assert fast_stream.summary["records"] == 24

            # The stalled subscription's server-side buffer stays bounded.
            with srv._subs_lock:
                stalled = [
                    sub for sub in srv._subs if sub.request_id == "slow"
                ]
            for sub in stalled:
                assert sub.bridge.depth <= srv.subscription_queue_max + 1

            # Resume: every record arrives exactly once, summary intact.
            slow_records = list(slow_stream)
            slow.close()
            assert [record["seq"] for record in slow_records] == list(range(24))
            assert slow_stream.summary["records"] == 24
            assert (
                slow_stream.summary["fingerprint_digest"]
                == fast_stream.summary["fingerprint_digest"]
            )

    def test_abrupt_disconnect_still_drains_into_store(self, tmp_path):
        """A subscriber that vanishes mid-stream must not abort the
        sweep: the executor keeps draining and the store receives every
        fresh result."""
        store_dir = tmp_path / "store"
        with AsyncReproServer(
            backend="auto",
            store=str(store_dir),
            subscription_queue_max=2,
            connection_sndbuf=8192,
        ) as srv:
            srv.serve_background()
            specs = _specs(20, offset=11.0)
            client = ServiceClient(srv.host, srv.port)
            stream = client.subscribe(specs)
            next(stream)  # stream is live
            client.close()  # vanish mid-stream, nothing read since

            deadline = time.monotonic() + 30.0
            while srv.subscription_stats()["active"] > 0:
                assert time.monotonic() < deadline, "subscription never drained"
                time.sleep(0.01)
            stats = srv.subscription_stats()
            assert stats["completed"] == 1
            srv.stop()
            assert srv.leaked_tasks == []

        from repro.api import ResultStore

        store = ResultStore(store_dir)
        stored = sum(1 for spec in specs if store.get("auto", spec) is not None)
        assert stored == len(specs)


class TestLifecycle:
    def test_stop_is_idempotent_and_leaves_no_tasks(self):
        srv = AsyncReproServer(backend="auto")
        srv.serve_background()
        request_lines(srv.host, srv.port, [json.dumps({"op": "health"})])
        srv.stop()
        srv.stop()  # second stop returns immediately
        assert srv.leaked_tasks == []

    def test_stop_before_serve_is_clean(self):
        srv = AsyncReproServer(backend="auto")
        srv.stop()
        srv.serve_forever()  # returns immediately: stop already requested

    def test_requests_after_stop_began_are_refused(self):
        srv = AsyncReproServer(backend="auto")
        srv.serve_background()
        with socket.create_connection((srv.host, srv.port), timeout=5.0) as conn:
            stream = conn.makefile("rwb")
            stream.write(b'{"op": "health"}\n')
            stream.flush()
            assert json.loads(stream.readline())["ok"]
            stop_thread = threading.Thread(target=srv.stop, daemon=True)
            stop_thread.start()
            deadline = time.monotonic() + 10.0
            while not srv.stopping:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            stream.write(b'{"op": "health", "id": 5}\n')
            stream.flush()
            raw = stream.readline()
            if raw:  # refusal raced the connection teardown
                refusal = json.loads(raw)
                assert refusal["ok"] is False
                assert refusal["error_type"] == "ServiceUnavailableError"
        stop_thread.join(timeout=60.0)
        assert not stop_thread.is_alive()
