"""Montecarlo through the serving tiers: bit-identical envelopes everywhere.

The determinism gate of the faults PR: the same faulted spec must yield
the same envelope whether solved directly, served cold, served warm
(cache), replayed from the persistent store, or coalesced onto another
request's in-flight solve.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import MonteCarloBackend, RendezvousProblem, ResultStore
from repro.api.backends import _REGISTRY, SolverBackend, register_backend
from repro.faults import FaultModel
from repro.service import SolverService


def _spec(trials: int = 5) -> RendezvousProblem:
    return RendezvousProblem(
        distance=1.6,
        visibility=0.35,
        bearing=0.9,
        speed=0.7,
        fault_model=FaultModel(
            kind="crash-stop",
            robot="other",
            crash_time=2.0,
            trials=trials,
            mc_seed=11,
            jitter=0.25,
        ),
    )


class _GatedMonteCarlo(SolverBackend):
    """The real montecarlo backend behind a gate, to pin requests in flight."""

    name = "montecarlo-gated"
    fidelity = "envelope"

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()
        self.release = threading.Event()
        self.release.set()
        self._inner = MonteCarloBackend()

    def _solve(self, spec):
        with self._lock:
            self.calls += 1
        assert self.release.wait(timeout=30.0), "test never released the backend"
        return self._inner._solve(spec)


@pytest.fixture
def gated_backend():
    backend = _GatedMonteCarlo()
    register_backend(_GatedMonteCarlo.name, lambda: backend)
    yield backend
    _REGISTRY.pop(_GatedMonteCarlo.name, None)


class TestServedDeterminism:
    def test_served_twice_and_direct_agree_bitwise(self):
        spec = _spec()
        direct = MonteCarloBackend().solve(spec)
        service = SolverService(backend="montecarlo")
        first = service.solve(spec)
        second = service.solve(spec)
        service.drain()
        for result in (first, second):
            assert result.details["envelope"] == direct.details["envelope"]
            assert result.details["statuses"] == direct.details["statuses"]
            assert result.fingerprint() == direct.fingerprint()
        # The repeat was answered without re-solving.
        assert service.metrics.snapshot()["totals"]["cache_hits"] >= 1

    def test_warm_store_replay_agrees_bitwise(self, tmp_path):
        spec = _spec(trials=4)
        store_dir = tmp_path / "store"
        cold_service = SolverService(backend="montecarlo", store=ResultStore(store_dir))
        cold = cold_service.solve(spec)
        cold_service.drain()
        assert cold.provenance.from_store is False
        # Fresh service, same store: the envelope replays from disk.
        warm_service = SolverService(backend="montecarlo", store=ResultStore(store_dir))
        warm = warm_service.solve(spec)
        warm_service.drain()
        assert warm.provenance.from_store is True
        assert warm.details["envelope"] == cold.details["envelope"]
        assert warm.fingerprint() == cold.fingerprint()

    def test_duplicate_request_coalesces_onto_one_trial_ensemble(self, gated_backend):
        spec = _spec(trials=3)
        gated_backend.release.clear()
        service = SolverService(backend=_GatedMonteCarlo.name)
        results: list = [None, None]

        def request(slot: int) -> None:
            results[slot] = service.solve(spec)

        threads = [threading.Thread(target=request, args=(i,)) for i in range(2)]
        threads[0].start()
        # Wait until the leader's solve is registered, then pile on.
        deadline = threading.Event()
        for _ in range(200):
            if service.inflight:
                break
            deadline.wait(0.01)
        threads[1].start()
        for _ in range(200):
            if service.waiting_for(spec, _GatedMonteCarlo.name):
                break
            deadline.wait(0.01)
        gated_backend.release.set()
        for thread in threads:
            thread.join(timeout=30.0)
        service.drain()
        assert gated_backend.calls == 1, "duplicate request must not re-run the trials"
        assert results[0].details["envelope"] == results[1].details["envelope"]
        assert service.metrics.coalesced_total() >= 1
