"""Unit tests for the asymmetric-clock round bounds (Lemmas 11-13, Theorem 3)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    decompose_tau,
    guaranteed_discovery_round,
    inactive_phase_start,
    lemma11_round_bound,
    lemma12_round_bound,
    lemma12_round_bound_exact,
    lemma13_round_bound,
    normalize_clock_ratio,
    theorem3_time_bound,
)
from repro.errors import InvalidParameterError


class TestTauDecomposition:
    def test_reconstruction(self):
        for tau in (0.9, 0.7, 0.51, 0.3, 0.13, 0.06):
            decomposition = decompose_tau(tau)
            assert decomposition.tau == pytest.approx(tau)

    def test_t_range(self):
        for tau in (0.9, 0.6, 0.4, 0.2, 0.05):
            decomposition = decompose_tau(tau)
            assert 0.5 <= decomposition.t < 1.0

    def test_powers_of_two_use_t_equals_one_half(self):
        decomposition = decompose_tau(0.25)
        assert decomposition.t == pytest.approx(0.5)
        assert decomposition.a == 1

    def test_one_half_decomposition(self):
        decomposition = decompose_tau(0.5)
        assert decomposition.t == pytest.approx(0.5)
        assert decomposition.a == 0

    def test_out_of_range_rejected(self):
        for tau in (0.0, 1.0, 1.5, -0.3):
            with pytest.raises(InvalidParameterError):
                decompose_tau(tau)

    def test_every_exact_power_of_two_decomposes_with_t_one_half(self):
        # Lemma 13's edge case: tau = 2^-k must pick t = 1/2, a = k - 1
        # (not t -> 1, a = k, which would violate the t < 1 constraint).
        for k in range(1, 40):
            tau = 2.0**-k
            decomposition = decompose_tau(tau)
            assert decomposition.t == 0.5, (tau, decomposition)
            assert decomposition.a == k - 1, (tau, decomposition)
            # The reconstruction is exact for powers of two, not approximate.
            assert decomposition.tau == tau

    def test_values_just_off_a_power_of_two_do_not_take_the_special_case(self):
        for k in (1, 3, 10):
            tau = 2.0**-k
            below = math.nextafter(tau, 0.0)
            above = math.nextafter(tau, 1.0)
            for neighbour in (below, above):
                decomposition = decompose_tau(neighbour)
                assert 0.5 <= decomposition.t < 1.0
                assert decomposition.tau == pytest.approx(neighbour, rel=1e-12)


class TestRoundBounds:
    def test_lemma11_formula(self):
        assert lemma11_round_bound(8, 0) == 8 + math.ceil(math.log2(8))

    def test_lemma11_small_n_does_not_go_below_n(self):
        assert lemma11_round_bound(1, 3) == 1

    def test_lemma12_formula(self):
        n, a, k0 = 8, 0, 6
        expected = n + math.ceil(math.log2(n) + math.log2(1 + k0 / (a + 1)))
        assert lemma12_round_bound(n, a, k0) == expected

    def test_lemma12_exact_version_is_finite_and_close(self):
        exact = lemma12_round_bound_exact(8, 0, 6)
        assert exact < 40

    def test_lemma13_small_t_branch(self):
        # tau = 0.5 -> t = 1/2, a = 0 -> k* = max(8, n + ceil(log2 n)).
        assert lemma13_round_bound(0.5, 2) == 8
        assert lemma13_round_bound(0.5, 12) == 12 + math.ceil(math.log2(12))

    def test_lemma13_large_t_branch(self):
        # tau = 0.9 -> t = 0.9, a = 0 -> first term ceil(0.9/0.1) = 9.
        assert lemma13_round_bound(0.9, 1) >= 9

    def test_round_bound_grows_as_tau_approaches_one(self):
        assert lemma13_round_bound(0.99, 2) > lemma13_round_bound(0.6, 2)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(InvalidParameterError):
            lemma13_round_bound(1.2, 3)
        with pytest.raises(InvalidParameterError):
            lemma11_round_bound(0, 0)


class TestTheorem3Bound:
    def test_bound_is_finite_for_any_tau_below_one(self):
        for tau in (0.9, 0.5, 0.1):
            assert math.isfinite(theorem3_time_bound(1.0, 0.4, tau))

    def test_bound_is_the_completion_time_of_round_k_star(self):
        distance, visibility, tau = 1.0, 0.4, 0.5
        n = guaranteed_discovery_round(distance, visibility)
        k_star = lemma13_round_bound(tau, n)
        assert theorem3_time_bound(distance, visibility, tau) == pytest.approx(
            inactive_phase_start(k_star + 1)
        )

    def test_bound_grows_with_difficulty(self):
        assert theorem3_time_bound(3.0, 0.05, 0.5) > theorem3_time_bound(1.0, 0.4, 0.5)

    def test_tau_of_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            theorem3_time_bound(1.0, 0.4, 1.0)


class TestClockNormalisation:
    def test_slow_partner_is_already_normal(self):
        tau, scale = normalize_clock_ratio(0.5)
        assert tau == pytest.approx(0.5)
        assert scale == pytest.approx(1.0)

    def test_fast_partner_swaps_roles(self):
        tau, scale = normalize_clock_ratio(2.0)
        assert tau == pytest.approx(0.5)
        assert scale == pytest.approx(2.0)

    def test_equal_clocks_rejected(self):
        with pytest.raises(InvalidParameterError):
            normalize_clock_ratio(1.0)
