"""Unit tests for the Lambert W implementation."""

from __future__ import annotations

import math

import pytest
from scipy.special import lambertw as scipy_lambertw

from repro.core import lambert_w, lambert_w_upper_bound
from repro.errors import InvalidParameterError


class TestLambertW:
    def test_known_values(self):
        assert lambert_w(0.0) == 0.0
        assert lambert_w(math.e) == pytest.approx(1.0)

    def test_defining_identity(self):
        for value in (0.1, 1.0, 5.0, 100.0, 1e6):
            w = lambert_w(value)
            assert w * math.exp(w) == pytest.approx(value, rel=1e-9)

    @pytest.mark.parametrize("value", [0.01, 0.5, 2.0, 10.0, 1e3, 1e8, 1e12])
    def test_matches_scipy(self, value):
        assert lambert_w(value) == pytest.approx(float(scipy_lambertw(value).real), rel=1e-9)

    def test_negative_argument_rejected(self):
        with pytest.raises(InvalidParameterError):
            lambert_w(-1.0)

    def test_monotonicity(self):
        values = [lambert_w(x) for x in (1.0, 10.0, 100.0, 1000.0)]
        assert values == sorted(values)


class TestAsymptoticEstimate:
    def test_estimate_close_to_w_for_large_arguments(self):
        for value in (1e3, 1e6, 1e9):
            estimate = lambert_w_upper_bound(value)
            assert estimate == pytest.approx(lambert_w(value), rel=0.15)

    def test_small_argument_rejected(self):
        with pytest.raises(InvalidParameterError):
            lambert_w_upper_bound(1.0)
