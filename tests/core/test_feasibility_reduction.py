"""Unit tests for the Theorem 4 feasibility test and the Section 3 reduction."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    RendezvousReduction,
    adversarial_separation_direction,
    classify_feasibility,
    is_feasible,
)
from repro.errors import InvalidParameterError
from repro.geometry import Vec2, mu_factor
from repro.robots import RobotAttributes


class TestFeasibility:
    def test_identical_robots_are_infeasible(self):
        assert not is_feasible(RobotAttributes())

    def test_different_speeds_are_feasible(self):
        assert is_feasible(RobotAttributes(speed=0.5))

    def test_different_clocks_are_feasible(self):
        assert is_feasible(RobotAttributes(time_unit=2.0))

    def test_rotation_with_equal_chirality_is_feasible(self):
        assert is_feasible(RobotAttributes(orientation=1.0))

    def test_mirrored_only_is_infeasible(self):
        assert not is_feasible(RobotAttributes(chirality=-1))

    def test_mirrored_with_rotation_is_still_infeasible(self):
        assert not is_feasible(RobotAttributes(orientation=2.0, chirality=-1))

    def test_mirrored_with_different_speed_is_feasible(self):
        assert is_feasible(RobotAttributes(speed=0.7, chirality=-1))

    def test_mirrored_with_different_clock_is_feasible(self):
        assert is_feasible(RobotAttributes(time_unit=0.5, orientation=1.0, chirality=-1))

    def test_full_turn_orientation_counts_as_equal(self):
        assert not is_feasible(RobotAttributes(orientation=2 * math.pi))

    def test_reasons_mention_the_differing_attribute(self):
        verdict = classify_feasibility(RobotAttributes(speed=0.5, time_unit=2.0))
        text = " ".join(verdict.reasons)
        assert "clocks differ" in text and "speeds differ" in text

    def test_infeasible_verdict_explains_why(self):
        verdict = classify_feasibility(RobotAttributes(chirality=-1))
        assert not verdict.feasible
        assert "reflection" in verdict.reasons[0]


class TestAdversarialDirection:
    def test_direction_is_a_unit_vector(self):
        for attributes in (
            RobotAttributes(),
            RobotAttributes(chirality=-1),
            RobotAttributes(orientation=1.3, chirality=-1),
        ):
            assert adversarial_separation_direction(attributes).norm() == pytest.approx(1.0)

    def test_mirrored_direction_is_invariant_under_the_relative_map(self):
        """The adversarial separation has no component in the relative motion's range."""
        from repro.geometry import relative_matrix

        attributes = RobotAttributes(orientation=1.3, chirality=-1)
        direction = adversarial_separation_direction(attributes)
        matrix = relative_matrix(1.0, 1.3, -1)
        for probe in (Vec2(1.0, 0.0), Vec2(0.3, -0.8), Vec2(-2.0, 1.0)):
            image = matrix.apply(probe)
            assert abs(image.dot(direction)) <= 1e-9


class TestReduction:
    def test_rejects_asymmetric_clocks(self):
        with pytest.raises(InvalidParameterError):
            RendezvousReduction(RobotAttributes(time_unit=0.5))

    def test_mu_property(self):
        reduction = RendezvousReduction(RobotAttributes(speed=0.5, orientation=1.0))
        assert reduction.mu == pytest.approx(mu_factor(0.5, 1.0))

    def test_equal_chirality_bearing_scale_is_mu_for_every_bearing(self):
        reduction = RendezvousReduction(RobotAttributes(speed=0.5, orientation=1.0))
        for bearing in (0.0, 0.7, 2.0, 4.5):
            assert reduction.bearing_scale(Vec2.polar(1.0, bearing)) == pytest.approx(reduction.mu)

    def test_effective_parameters_scale_d_and_r_together(self):
        reduction = RendezvousReduction(RobotAttributes(speed=0.5, orientation=2.0))
        separation = Vec2(1.4, 0.3)
        d_eff, r_eff = reduction.effective_parameters(separation, 0.2)
        assert d_eff / r_eff == pytest.approx(separation.norm() / 0.2)

    def test_adversarial_bearing_of_an_infeasible_mirror_has_zero_scale(self):
        attributes = RobotAttributes(orientation=1.0, chirality=-1)
        reduction = RendezvousReduction(attributes)
        direction = adversarial_separation_direction(attributes)
        assert reduction.bearing_scale(direction) == pytest.approx(0.0, abs=1e-12)
        with pytest.raises(InvalidParameterError):
            reduction.effective_parameters(direction, 0.2)

    def test_worst_case_scale_for_mirrored_slow_robot_is_positive(self):
        reduction = RendezvousReduction(RobotAttributes(speed=0.5, chirality=-1))
        assert reduction.worst_case_scale() > 0.0

    def test_equivalent_trajectory_matches_matrix_action(self):
        from repro.motion import TrajectoryBuilder

        attributes = RobotAttributes(speed=0.6, orientation=0.8, chirality=-1)
        reduction = RendezvousReduction(attributes)
        builder = TrajectoryBuilder()
        builder.move_to(Vec2(1.0, 0.0))
        builder.move_to(Vec2(1.0, 1.0))
        walk = builder.build()
        equivalent = reduction.equivalent_trajectory(walk)
        for t in (0.0, 0.5, 1.7, 2.0):
            expected = reduction.relative_map.apply(walk.position(t))
            assert equivalent.position(t).is_close(expected, 1e-12)

    def test_qr_factors_reconstruct_the_relative_map(self):
        reduction = RendezvousReduction(RobotAttributes(speed=0.7, orientation=2.2, chirality=-1))
        phi_matrix, upper = reduction.qr_factors()
        assert (phi_matrix @ upper).is_close(reduction.relative_map, 1e-9)
