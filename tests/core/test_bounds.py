"""Unit tests for the closed-form bounds (Lemmas 2-3, Theorems 1-2)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    guaranteed_discovery_round,
    lemma3_difficulty_lower_bound,
    search_annulus_duration,
    search_circle_duration,
    search_round_duration,
    theorem1_search_bound,
    theorem2_effective_parameters,
    theorem2_rendezvous_bound,
    universal_search_prefix_duration,
)
from repro.errors import InvalidParameterError


class TestLemma2Formulas:
    def test_search_circle_duration(self):
        assert search_circle_duration(2.0) == pytest.approx(4 * (math.pi + 1))

    def test_search_annulus_duration_matches_the_manual_sum(self):
        delta1, delta2, rho = 0.5, 1.0, 0.125
        m = math.ceil((delta2 - delta1) / (2 * rho))
        manual = sum(2 * (math.pi + 1) * (delta1 + 2 * i * rho) for i in range(m + 1))
        assert search_annulus_duration(delta1, delta2, rho) == pytest.approx(manual)

    def test_search_round_duration(self):
        assert search_round_duration(3) == pytest.approx(3 * (math.pi + 1) * 4 * 16)

    def test_prefix_duration_is_the_sum_of_round_durations(self):
        for k in (1, 2, 4):
            total = sum(search_round_duration(i) for i in range(1, k + 1))
            assert universal_search_prefix_duration(k) == pytest.approx(total)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(InvalidParameterError):
            search_circle_duration(0.0)
        with pytest.raises(InvalidParameterError):
            search_annulus_duration(1.0, 0.5, 0.1)
        with pytest.raises(InvalidParameterError):
            search_round_duration(0)


class TestDiscoveryRound:
    def test_easy_instance_is_round_one(self):
        assert guaranteed_discovery_round(1.0, 0.25) == 1

    def test_round_grows_with_difficulty(self):
        easy = guaranteed_discovery_round(1.0, 0.25)
        hard = guaranteed_discovery_round(3.0, 0.01)
        assert hard > easy

    def test_round_k_guarantee_holds_by_construction(self):
        """The returned round contains a sub-round covering (d, r)."""
        for distance, visibility in ((0.7, 0.3), (2.5, 0.05), (5.0, 0.01)):
            k = guaranteed_discovery_round(distance, visibility)
            found = False
            for j in range(2 * k):
                outer = 2.0 ** (-k + j + 1)
                granularity = 2.0 ** (-3 * k + 2 * j - 1)
                if outer >= distance and granularity <= visibility:
                    found = True
            assert found

    def test_paper_recipe_is_an_upper_bound(self):
        """Lemma 1's explicit k = floor(log2(d^2/r)) is never smaller than the minimal round."""
        for distance, visibility in ((1.5, 0.1), (2.0, 0.03), (4.0, 0.2)):
            minimal = guaranteed_discovery_round(distance, visibility)
            recipe = math.floor(math.log2(distance**2 / visibility))
            assert minimal <= max(recipe, 1)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(InvalidParameterError):
            guaranteed_discovery_round(-1.0, 0.1)


class TestTheorem1Bound:
    def test_bound_is_positive_and_finite(self):
        assert 0.0 < theorem1_search_bound(2.0, 0.1) < float("inf")

    def test_easy_instances_fall_back_to_the_first_round_time(self):
        bound = theorem1_search_bound(0.8, 0.5)
        assert bound == pytest.approx(universal_search_prefix_duration(
            guaranteed_discovery_round(0.8, 0.5)))

    def test_literal_formula_for_hard_instances(self):
        distance, visibility = 2.0, 0.02
        difficulty = distance**2 / visibility
        literal = 6 * (math.pi + 1) * math.log2(difficulty) * difficulty
        assert theorem1_search_bound(distance, visibility) >= literal - 1e-9

    def test_bound_dominates_the_guaranteed_round_prefix(self):
        """The bound is always at least the time to finish the guaranteed round."""
        for distance, visibility in ((1.0, 0.3), (2.0, 0.05), (3.0, 0.01)):
            k = guaranteed_discovery_round(distance, visibility)
            assert theorem1_search_bound(distance, visibility) >= universal_search_prefix_duration(k) - 1e-6

    def test_monotone_in_difficulty(self):
        assert theorem1_search_bound(2.0, 0.05) > theorem1_search_bound(2.0, 0.1)


class TestLemma3:
    def test_lower_bound_value(self):
        assert lemma3_difficulty_lower_bound(3) == pytest.approx(16.0)

    def test_invalid_round_rejected(self):
        with pytest.raises(InvalidParameterError):
            lemma3_difficulty_lower_bound(0)


class TestTheorem2:
    def test_equal_chirality_scales_by_mu(self):
        distance, visibility, speed, orientation = 2.0, 0.1, 0.5, 1.0
        mu = math.sqrt(speed**2 - 2 * speed * math.cos(orientation) + 1)
        d_eff, r_eff = theorem2_effective_parameters(distance, visibility, speed, orientation, 1)
        assert d_eff == pytest.approx(distance / mu)
        assert r_eff == pytest.approx(visibility / mu)

    def test_opposite_chirality_scales_by_one_minus_v(self):
        d_eff, r_eff = theorem2_effective_parameters(2.0, 0.1, 0.4, 2.0, -1)
        assert d_eff == pytest.approx(2.0 / 0.6)
        assert r_eff == pytest.approx(0.1 / 0.6)

    def test_bound_reduces_to_theorem1_of_the_effective_instance(self):
        distance, visibility, speed, orientation = 1.5, 0.2, 0.5, 2.0
        d_eff, r_eff = theorem2_effective_parameters(distance, visibility, speed, orientation, 1)
        assert theorem2_rendezvous_bound(distance, visibility, speed, orientation, 1) == pytest.approx(
            theorem1_search_bound(d_eff, r_eff)
        )

    def test_bound_blows_up_as_the_advantage_vanishes(self):
        slow = theorem2_rendezvous_bound(1.5, 0.2, 0.99, 0.0, 1)
        fast = theorem2_rendezvous_bound(1.5, 0.2, 0.5, 0.0, 1)
        assert slow > fast

    def test_infeasible_configuration_has_no_bound(self):
        with pytest.raises(InvalidParameterError):
            theorem2_rendezvous_bound(1.0, 0.1, 1.0, 0.0, 1)

    def test_mirrored_fast_robot_needs_normalisation(self):
        with pytest.raises(InvalidParameterError):
            theorem2_rendezvous_bound(1.0, 0.1, 1.5, 0.0, -1)
