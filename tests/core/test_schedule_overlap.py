"""Unit tests for the Algorithm 7 schedule and the overlap lemmas."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    RoundSchedule,
    active_phase_start,
    inactive_phase_start,
    lemma9_applies,
    lemma9_overlap_amount,
    lemma9_tau_window,
    lemma10_applies,
    lemma10_overlap_amount,
    lemma10_tau_window,
    measured_overlap,
    round_duration,
    search_all_time,
    universal_search_prefix_duration,
)
from repro.errors import InvalidParameterError


class TestClosedForms:
    def test_search_all_time_formula(self):
        assert search_all_time(3) == pytest.approx(12 * (math.pi + 1) * 3 * 8)

    def test_prefix_duration_equals_search_all_time(self):
        for k in (1, 2, 5):
            assert universal_search_prefix_duration(k) == pytest.approx(search_all_time(k))

    def test_inactive_phase_start_formula(self):
        assert inactive_phase_start(1) == pytest.approx(0.0)
        assert inactive_phase_start(2) == pytest.approx(24 * (math.pi + 1) * 4)

    def test_active_phase_start_is_inactive_plus_wait(self):
        for n in (1, 2, 4):
            assert active_phase_start(n) == pytest.approx(
                inactive_phase_start(n) + 2 * search_all_time(n)
            )

    def test_round_duration_is_four_search_alls(self):
        for n in (1, 3):
            assert round_duration(n) == pytest.approx(4 * search_all_time(n))

    def test_rounds_are_contiguous(self):
        for n in (1, 2, 3, 6):
            assert inactive_phase_start(n + 1) == pytest.approx(
                inactive_phase_start(n) + round_duration(n)
            )

    def test_invalid_round_rejected(self):
        with pytest.raises(InvalidParameterError):
            inactive_phase_start(0)


class TestRoundSchedule:
    def test_time_unit_dilates_every_boundary(self):
        reference = RoundSchedule(1.0)
        slow = RoundSchedule(2.0)
        for n in (1, 2, 3):
            assert slow.inactive_start(n) == pytest.approx(2.0 * reference.inactive_start(n))
            assert slow.active_start(n) == pytest.approx(2.0 * reference.active_start(n))

    def test_phases_alternate_and_cover_time(self):
        schedule = RoundSchedule(1.0)
        phases = list(schedule.phases(4))
        assert [p.kind for p in phases[:4]] == ["inactive", "active", "inactive", "active"]
        for earlier, later in zip(phases, phases[1:]):
            assert later.start == pytest.approx(earlier.end)

    def test_active_phase_breakdown_structure(self):
        schedule = RoundSchedule(1.0)
        breakdown = schedule.active_phase_breakdown(3)
        labels = [label for label, _, _ in breakdown]
        assert labels == ["Search(1)", "Search(2)", "Search(3)", "Search(3)", "Search(2)", "Search(1)"]

    def test_phase_interval_overlap_helper(self):
        schedule = RoundSchedule(1.0)
        phase = schedule.inactive_phase(2)
        assert phase.overlap_with(schedule.active_phase(2)) == pytest.approx(0.0)
        assert phase.overlap_with(phase) == pytest.approx(phase.duration)

    def test_describe_contains_each_round(self):
        text = RoundSchedule(0.5).describe(3)
        assert "round  3" in text

    def test_invalid_time_unit_rejected(self):
        with pytest.raises(InvalidParameterError):
            RoundSchedule(0.0)


class TestOverlapLemmas:
    def test_lemma9_window_shape(self):
        low, high = lemma9_tau_window(6, 0)
        assert high == pytest.approx(1.5 * low)
        assert 0.0 < low < 1.0

    def test_lemma10_window_is_above_lemma9s(self):
        low9, high9 = lemma9_tau_window(8, 0)
        low10, high10 = lemma10_tau_window(8, 0)
        assert low10 > low9

    def test_applicability_requires_large_enough_round(self):
        assert not lemma9_applies(1, 0, 0.5)
        assert not lemma10_applies(1, 0, 0.9)

    def test_lemma9_applies_for_tau_one_half(self):
        assert lemma9_applies(4, 0, 0.5)

    def test_measured_overlap_is_non_negative_and_bounded_by_the_phases(self):
        window = measured_overlap(4, 5, 0.5)
        schedule = RoundSchedule(1.0)
        assert 0.0 <= window.amount <= schedule.active_phase(4).duration + 1e-9

    def test_overlap_amount_formulas(self):
        tau, k, a = 0.5, 4, 0
        assert lemma9_overlap_amount(k, a, tau) == pytest.approx(
            tau * active_phase_start(k + 1 + a) - active_phase_start(k)
        )
        assert lemma10_overlap_amount(k, a, tau) == pytest.approx(
            inactive_phase_start(k) - tau * inactive_phase_start(k + a)
        )

    def test_overlap_grows_without_bound(self):
        """The crux of Theorem 3: overlaps keep growing with the round index."""
        tau = 0.5
        amounts = [measured_overlap(k, k + 1, tau).amount for k in range(4, 14)]
        assert all(later >= earlier for earlier, later in zip(amounts, amounts[1:]))
        assert amounts[-1] > 100 * amounts[0]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(InvalidParameterError):
            measured_overlap(1, 1, 0.0)
        with pytest.raises(InvalidParameterError):
            lemma9_tau_window(0, 0)
