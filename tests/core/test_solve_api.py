"""Unit tests for the high-level solve_search / solve_rendezvous API."""

from __future__ import annotations

import json
import math

import pytest

from repro.algorithms import ConcentricCoverageSearch, WaitAndSearchRendezvous
from repro.core import rendezvous_time_bound, solve_rendezvous, solve_search
from repro.errors import HorizonExceededError, InfeasibleConfigurationError
from repro.geometry import Vec2
from repro.robots import RobotAttributes
from repro.simulation import RendezvousInstance, SearchInstance, fixed_horizon


class TestSolveSearch:
    def test_report_fields(self, simple_search_instance):
        report = solve_search(simple_search_instance)
        assert report.outcome.solved
        assert report.time < report.bound
        assert 0.0 < report.bound_ratio < 1.0
        assert report.guaranteed_round >= 1
        assert "Theorem 1" in report.summary()

    def test_custom_algorithm(self, simple_search_instance):
        report = solve_search(
            simple_search_instance,
            algorithm=ConcentricCoverageSearch(simple_search_instance.visibility),
        )
        assert report.outcome.solved
        assert "concentric" in report.algorithm_name.lower() or "Concentric" in report.algorithm_name

    def test_too_small_horizon_raises(self, simple_search_instance):
        with pytest.raises(HorizonExceededError):
            solve_search(simple_search_instance, horizon=fixed_horizon(0.1))


class TestRendezvousBound:
    def test_equal_clock_bound_uses_theorem2(self, speed_rendezvous_instance):
        bound = rendezvous_time_bound(speed_rendezvous_instance)
        assert bound is not None and math.isfinite(bound)

    def test_asymmetric_clock_bound_uses_theorem3(self, clock_rendezvous_instance):
        bound = rendezvous_time_bound(clock_rendezvous_instance)
        assert bound is not None and math.isfinite(bound)

    def test_infeasible_instance_has_no_bound(self, infeasible_instance):
        assert rendezvous_time_bound(infeasible_instance) is None

    def test_fast_mirrored_robot_bound_via_role_swap(self):
        instance = RendezvousInstance(
            separation=Vec2(1.0, 0.5),
            visibility=0.3,
            attributes=RobotAttributes(speed=2.0, chirality=-1),
        )
        bound = rendezvous_time_bound(instance)
        assert bound is not None and bound > 0.0

    def test_fast_clock_bound_via_role_swap(self):
        instance = RendezvousInstance(
            separation=Vec2(1.0, 0.5), visibility=0.4, attributes=RobotAttributes(time_unit=2.0)
        )
        bound = rendezvous_time_bound(instance)
        assert bound is not None and math.isfinite(bound)

    def test_unrepresentable_theorem3_bound_clamps_to_none(self):
        # tau = 0.2494... decomposes with t -> 1, so k* ~ 1400 and the
        # Theorem 3 time saturates past float64 range; the bound API
        # reports "no finite bound" instead of leaking inf into
        # envelopes (JSON would serialise it as the non-standard
        # Infinity token).
        instance = RendezvousInstance(
            separation=Vec2(1.0, 0.0),
            visibility=0.5,
            attributes=RobotAttributes(time_unit=0.24946286322965355),
        )
        assert rendezvous_time_bound(instance) is None
        from repro.api import RendezvousProblem, solve

        result = solve(
            RendezvousProblem.from_instance(instance), backend="analytic"
        )
        assert result.bound is None and result.feasible is True
        json.loads(result.to_json())  # strict round trip, no Infinity token
        assert "Infinity" not in result.to_json()


class TestSolveRendezvous:
    def test_speed_difference_solves_within_bound(self, speed_rendezvous_instance):
        report = solve_rendezvous(speed_rendezvous_instance)
        assert report.solved
        assert report.bound_ratio is not None and report.bound_ratio < 1.0

    def test_clock_difference_solves(self, clock_rendezvous_instance):
        report = solve_rendezvous(clock_rendezvous_instance)
        assert report.solved
        assert "wait-and-search" in report.algorithm_name.lower() or "WaitAndSearch" in report.algorithm_name

    def test_orientation_difference_solves(self):
        instance = RendezvousInstance(
            separation=Vec2(1.1, -0.3), visibility=0.35, attributes=RobotAttributes(orientation=2.5)
        )
        report = solve_rendezvous(instance)
        assert report.solved

    def test_infeasible_instance_raises_by_default(self, infeasible_instance):
        with pytest.raises(InfeasibleConfigurationError):
            solve_rendezvous(infeasible_instance)

    def test_infeasible_instance_needs_an_explicit_horizon(self, infeasible_instance):
        with pytest.raises(InfeasibleConfigurationError):
            solve_rendezvous(infeasible_instance, allow_infeasible=True)

    def test_infeasible_instance_can_be_simulated_to_a_horizon(self, infeasible_instance):
        report = solve_rendezvous(
            infeasible_instance, allow_infeasible=True, horizon=fixed_horizon(300.0)
        )
        assert not report.solved
        assert report.bound is None
        assert "infeasible" in report.summary()

    def test_explicit_algorithm_is_respected(self, speed_rendezvous_instance):
        report = solve_rendezvous(speed_rendezvous_instance, algorithm=WaitAndSearchRendezvous())
        assert report.solved
        assert "wait" in report.algorithm_name.lower()

    def test_summary_reports_measured_time_and_bound(self, speed_rendezvous_instance):
        text = solve_rendezvous(speed_rendezvous_instance).summary()
        assert "measured time" in text and "bound" in text
